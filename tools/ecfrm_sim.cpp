// ecfrm_sim: run the paper's experiment protocol for ANY code / layout /
// parameters from the command line — the research harness without a
// recompile.
//
//   ecfrm_sim <code_spec> [options]
//     code_spec            rs:<k>,<m> | lrc:<k>,<l>,<m>
//     --layout L           standard | rotated | ecfrm | all   (default all)
//     --trials N           trials per experiment               (default 2000)
//     --elem BYTES         element size in bytes               (default 1 MiB)
//     --max-size E         max request size in elements        (default 20)
//     --degraded           run the degraded protocol (speed + cost)
//     --policy P           local | balance (degraded repair)   (default local)
//     --seed S             PRNG seed                           (default 2015)
//     --faults F           fault-injection mode: run a real store under the
//                          ecfrm.faultplan.v1 plan in F and verify the bytes
//     --metrics-out F      write metrics as NDJSON to F
//     --metrics-prom F     write metrics in Prometheus text format to F
//     --trace-out F        write a chrome://tracing JSON trace to F
//
// Examples:
//   ecfrm_sim lrc:12,3,3 --degraded
//   ecfrm_sim rs:20,10 --max-size 40 --elem 4194304
//   ecfrm_sim rs:6,3 --metrics-out metrics.json --trace-out trace.json
//   ecfrm_sim rs:6,3 --faults plan.json --elem 4096
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codes/factory.h"
#include "common/rng.h"
#include "core/read_planner.h"
#include "gf/kernels.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/array_sim.h"
#include "store/fault_device.h"
#include "store/stripe_store.h"
#include "workload/workload.h"

namespace {

using namespace ecfrm;

struct Options {
    std::string spec;
    std::vector<layout::LayoutKind> kinds{layout::LayoutKind::standard, layout::LayoutKind::rotated,
                                          layout::LayoutKind::ecfrm};
    int trials = 2000;
    std::int64_t elem_bytes = 1 << 20;
    int max_size = 20;
    bool degraded = false;
    core::DegradedPolicy policy = core::DegradedPolicy::local_first;
    std::uint64_t seed = 2015;
    std::string faults_path;
    std::string metrics_out;
    std::string metrics_prom;
    std::string trace_out;
    int serve_port = -1;      // >= 0: serve live metrics while running
    double serve_hold = 0.0;  // seconds to keep serving after the run
};

int usage() {
    std::fprintf(stderr,
                 "usage: ecfrm_sim <code_spec> [--layout standard|rotated|ecfrm|all] [--trials N]\n"
                 "                 [--elem BYTES] [--max-size E] [--degraded] [--policy local|balance]\n"
                 "                 [--seed S] [--faults plan.json] [--metrics-out F]\n"
                 "                 [--metrics-prom F] [--trace-out F] [--serve PORT]\n"
                 "                 [--serve-hold SECS]\n");
    return 2;
}

/// --faults mode: instead of the analytic disk model, build a REAL
/// StripeStore per layout on FaultDevice-wrapped memory disks, write a
/// deterministic payload, read it all back through the self-healing read
/// path, and verify every byte. Typed read errors (e.g. beyond_tolerance
/// when the plan kills too many disks) are reported per error code; the
/// exit status flags silent corruption — bytes that came back wrong.
int run_fault_mode(const Options& opt, const std::shared_ptr<codes::ErasureCode>& code,
                   const store::FaultPlan& plan) {
    std::printf("fault-injection protocol: plan seed %llu, %zu rules, %lld B elements\n",
                static_cast<unsigned long long>(plan.seed), plan.rules.size(),
                static_cast<long long>(opt.elem_bytes));
    std::printf("fault plan: %s\n", plan.to_json().c_str());
    std::printf("%-20s %6s %6s %6s %6s %7s %6s %10s  %s\n", "scheme", "reads", "retry", "tmout",
                "replan", "degr", "errs", "mismatch", "errors_by_code");

    bool clean = true;
    for (auto kind : opt.kinds) {
        auto st = store::StripeStore::open(core::Scheme(code, kind), opt.elem_bytes,
                                           store::faulty_memory_factory(opt.elem_bytes, plan));
        if (!st.ok()) {
            std::fprintf(stderr, "error: %s\n", st.error().message.c_str());
            return 1;
        }
        store::RecoveryOptions recovery;
        recovery.max_retries = 3;
        recovery.max_replans = 4;
        st.value()->set_recovery(recovery);
        obs::MetricRegistry metrics("ecfrm_sim_faults");
        st.value()->attach_observability(&metrics);

        const std::int64_t data_elems = 4 * st.value()->scheme().layout().data_per_stripe();
        std::vector<std::uint8_t> payload(static_cast<std::size_t>(data_elems * opt.elem_bytes));
        Rng rng(opt.seed);
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
        auto written = st.value()->append(ConstByteSpan(payload.data(), payload.size()));
        if (written.ok()) written = st.value()->flush();
        if (!written.ok()) {
            std::fprintf(stderr, "error: write phase: %s\n", written.error().message.c_str());
            return 1;
        }

        int reads = 0, read_errors = 0;
        std::int64_t mismatched = 0;
        std::map<std::string, int> errors_by_code;
        const std::int64_t chunk = std::max<std::int64_t>(1, data_elems / 4);
        for (std::int64_t start = 0; start < data_elems; start += chunk) {
            const std::int64_t count = std::min(chunk, data_elems - start);
            std::vector<std::uint8_t> got(static_cast<std::size_t>(count * opt.elem_bytes));
            ++reads;
            auto status = st.value()->read_elements(start, count, ByteSpan(got.data(), got.size()));
            if (!status.ok()) {
                ++read_errors;
                ++errors_by_code[Error::code_name(status.error().code)];
                continue;
            }
            const std::uint8_t* want = payload.data() + start * opt.elem_bytes;
            for (std::size_t i = 0; i < got.size(); ++i) {
                if (got[i] != want[i]) ++mismatched;
            }
        }
        clean = clean && mismatched == 0;

        std::string codes_text;
        for (const auto& [name, count] : errors_by_code) {
            if (!codes_text.empty()) codes_text += " ";
            codes_text += std::string(name) + "=" + std::to_string(count);
        }
        std::printf("%-20s %6d %6lld %6lld %6lld %7lld %6d %10lld  %s\n",
                    st.value()->scheme().name().c_str(), reads,
                    static_cast<long long>(metrics.counter("ecfrm_store_retries_total").value()),
                    static_cast<long long>(metrics.counter("ecfrm_store_timeouts_total").value()),
                    static_cast<long long>(metrics.counter("ecfrm_store_replans_total").value()),
                    static_cast<long long>(
                        metrics.counter("ecfrm_store_degraded_reads_total").value()),
                    read_errors, static_cast<long long>(mismatched),
                    codes_text.empty() ? "-" : codes_text.c_str());
        st.value()->attach_observability(nullptr);
    }
    std::printf("fault-injection protocol: %s\n",
                clean ? "no silent corruption" : "SILENT CORRUPTION DETECTED");
    return clean ? 0 : 1;
}

bool write_file(const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        return false;
    }
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    if (argc < 2) return usage();
    opt.spec = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--layout") {
            const char* v = value();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "all") == 0) {
                // keep default
            } else if (std::strcmp(v, "standard") == 0) {
                opt.kinds = {layout::LayoutKind::standard};
            } else if (std::strcmp(v, "rotated") == 0) {
                opt.kinds = {layout::LayoutKind::rotated};
            } else if (std::strcmp(v, "ecfrm") == 0) {
                opt.kinds = {layout::LayoutKind::ecfrm};
            } else {
                return usage();
            }
        } else if (arg == "--trials") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.trials = std::atoi(v);
        } else if (arg == "--elem") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.elem_bytes = std::atoll(v);
        } else if (arg == "--max-size") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.max_size = std::atoi(v);
        } else if (arg == "--degraded") {
            opt.degraded = true;
        } else if (arg == "--policy") {
            const char* v = value();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "balance") == 0) {
                opt.policy = core::DegradedPolicy::balance;
            } else if (std::strcmp(v, "local") != 0) {
                return usage();
            }
        } else if (arg == "--seed") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--faults") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.faults_path = v;
        } else if (arg == "--metrics-out") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.metrics_out = v;
        } else if (arg == "--metrics-prom") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.metrics_prom = v;
        } else if (arg == "--trace-out") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.trace_out = v;
        } else if (arg == "--serve") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.serve_port = std::atoi(v);
        } else if (arg == "--serve-hold") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.serve_hold = std::atof(v);
        } else {
            return usage();
        }
    }
    if (opt.trials <= 0 || opt.elem_bytes <= 0 || opt.max_size <= 0) return usage();

    std::unique_ptr<obs::MetricRegistry> metrics;
    std::unique_ptr<obs::Tracer> tracer;
    if (!opt.metrics_out.empty() || !opt.metrics_prom.empty() || opt.serve_port >= 0) {
        metrics = std::make_unique<obs::MetricRegistry>("ecfrm_sim");
        core::attach_planner_metrics(metrics.get());
        gf::attach_kernel_metrics(metrics.get());
    }
    if (!opt.trace_out.empty()) tracer = std::make_unique<obs::Tracer>(std::size_t{1} << 14);
    if (tracer != nullptr && metrics != nullptr) tracer->attach_metrics(metrics.get());

    // The server starts before the protocol so the run is scrapable live;
    // the snapshotter's captures turn the counters into rates.
    std::unique_ptr<obs::Snapshotter> snapshotter;
    std::unique_ptr<obs::ExpositionServer> server;
    if (opt.serve_port >= 0) {
        snapshotter = std::make_unique<obs::Snapshotter>(metrics.get(), 0.5);
        snapshotter->start();
        server = std::make_unique<obs::ExpositionServer>(metrics.get(), snapshotter.get());
        auto status = server->start(opt.serve_port);
        if (!status.ok()) {
            std::fprintf(stderr, "error: %s\n", status.error().message.c_str());
            return 1;
        }
        // Flushed immediately: test drivers read the port from a pipe.
        std::printf("serving metrics on http://127.0.0.1:%d/metrics\n", server->port());
        std::fflush(stdout);
    }

    auto code = codes::make_code(opt.spec);
    if (!code.ok()) {
        std::fprintf(stderr, "error: %s\n", code.error().message.c_str());
        return 1;
    }

    if (!opt.faults_path.empty()) {
        std::FILE* f = std::fopen(opt.faults_path.c_str(), "rb");
        if (f == nullptr) {
            std::fprintf(stderr, "error: cannot open %s\n", opt.faults_path.c_str());
            return 1;
        }
        std::string text;
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
        std::fclose(f);
        auto plan = store::FaultPlan::from_json(text);
        if (!plan.ok()) {
            std::fprintf(stderr, "error: %s: %s\n", opt.faults_path.c_str(),
                         plan.error().message.c_str());
            return 1;
        }
        return run_fault_mode(opt, code.value(), plan.value());
    }

    std::printf("%s protocol: %d trials, %lld B elements, sizes 1..%d%s\n",
                opt.degraded ? "degraded-read" : "normal-read", opt.trials,
                static_cast<long long>(opt.elem_bytes), opt.max_size,
                opt.degraded ? (opt.policy == core::DegradedPolicy::balance ? ", balance policy"
                                                                            : ", local-first policy")
                             : "");
    if (opt.degraded) {
        std::printf("%-20s %12s %12s %12s\n", "scheme", "MB/s", "cost", "E[max load]");
    } else {
        std::printf("%-20s %12s %12s\n", "scheme", "MB/s", "E[max load]");
    }

    for (auto kind : opt.kinds) {
        core::Scheme scheme(code.value(), kind);
        const std::int64_t elements = 40 * scheme.layout().data_per_stripe();
        sim::DiskModel model(sim::DiskProfile::savvio_10k3(), opt.elem_bytes);
        Rng rng(opt.seed);

        // Per-layout, per-disk accounting: how many elements (and bytes)
        // each disk serves across the whole protocol. The max/min ratio of
        // these counters is the balance story the paper tells.
        std::vector<obs::Counter*> disk_elems, disk_bytes;
        if (metrics != nullptr) {
            for (int d = 0; d < scheme.disks(); ++d) {
                const obs::Labels labels{{"disk", std::to_string(d)},
                                         {"layout", layout::to_string(kind)}};
                disk_elems.push_back(&metrics->counter("ecfrm_sim_disk_elements_total", labels));
                disk_bytes.push_back(&metrics->counter("ecfrm_sim_disk_bytes_total", labels));
            }
        }
        auto account = [&](const core::AccessPlan& plan) {
            if (metrics == nullptr) return;
            const auto& loads = plan.per_disk_loads();
            for (std::size_t d = 0; d < loads.size() && d < disk_elems.size(); ++d) {
                if (loads[d] == 0) continue;
                disk_elems[d]->add(loads[d]);
                disk_bytes[d]->add(loads[d] * opt.elem_bytes);
            }
        };

        double sim_clock_us = 0.0;  // virtual timeline for the trace
        double speed = 0.0, cost = 0.0, max_load = 0.0;
        for (int t = 0; t < opt.trials; ++t) {
            sim::ReadTiming timing;
            std::int64_t trial_max_load = 0;
            if (opt.degraded) {
                const auto req = workload::random_degraded_read(rng, elements, scheme.disks(), opt.max_size);
                auto plan = core::plan_degraded_read(scheme, req.read.start, req.read.count,
                                                     std::vector<DiskId>{req.failed_disk}, opt.policy);
                if (!plan.ok()) {
                    std::fprintf(stderr, "error: %s\n", plan.error().message.c_str());
                    return 1;
                }
                account(plan.value());
                timing = sim::simulate_read(plan.value(), model, rng, metrics.get());
                speed += timing.mb_per_s();
                cost += plan->cost();
                trial_max_load = plan->max_load();
            } else {
                const auto req = workload::random_read(rng, elements, opt.max_size);
                const auto plan = core::plan_normal_read(scheme, req.start, req.count);
                account(plan);
                timing = sim::simulate_read(plan, model, rng, metrics.get());
                speed += timing.mb_per_s();
                trial_max_load = plan.max_load();
            }
            max_load += static_cast<double>(trial_max_load);
            if (tracer != nullptr) {
                tracer->complete("trial", layout::to_string(kind), sim_clock_us,
                                 timing.seconds * 1e6,
                                 {{"trial", std::to_string(t)},
                                  {"max_load", std::to_string(trial_max_load)},
                                  {"requested_bytes", std::to_string(timing.requested_bytes)}});
                sim_clock_us += timing.seconds * 1e6;
            }
        }
        if (opt.degraded) {
            std::printf("%-20s %12.2f %12.3f %12.3f\n", scheme.name().c_str(), speed / opt.trials,
                        cost / opt.trials, max_load / opt.trials);
        } else {
            std::printf("%-20s %12.2f %12.3f\n", scheme.name().c_str(), speed / opt.trials,
                        max_load / opt.trials);
        }
    }

    if (server != nullptr && opt.serve_hold > 0.0) {
        std::printf("holding for %.1fs (GET /quitquitquit to release)\n", opt.serve_hold);
        std::fflush(stdout);
        server->wait_for_quit(opt.serve_hold);
    }

    bool io_ok = true;
    if (!opt.metrics_out.empty()) io_ok &= write_file(opt.metrics_out, metrics->to_json());
    if (!opt.metrics_prom.empty()) io_ok &= write_file(opt.metrics_prom, metrics->to_prometheus());
    if (!opt.trace_out.empty()) io_ok &= write_file(opt.trace_out, tracer->to_chrome_json());
    core::attach_planner_metrics(nullptr);
    gf::attach_kernel_metrics(nullptr);
    return io_ok ? 0 : 1;
}
