// ecfrm_sim: run the paper's experiment protocol for ANY code / layout /
// parameters from the command line — the research harness without a
// recompile.
//
//   ecfrm_sim <code_spec> [options]
//     code_spec            rs:<k>,<m> | lrc:<k>,<l>,<m>
//     --layout L           standard | rotated | ecfrm | all   (default all)
//     --trials N           trials per experiment               (default 2000)
//     --elem BYTES         element size in bytes               (default 1 MiB)
//     --max-size E         max request size in elements        (default 20)
//     --degraded           run the degraded protocol (speed + cost)
//     --policy P           local | balance (degraded repair)   (default local)
//     --seed S             PRNG seed                           (default 2015)
//
// Examples:
//   ecfrm_sim lrc:12,3,3 --degraded
//   ecfrm_sim rs:20,10 --max-size 40 --elem 4194304
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "codes/factory.h"
#include "common/rng.h"
#include "core/read_planner.h"
#include "sim/array_sim.h"
#include "workload/workload.h"

namespace {

using namespace ecfrm;

struct Options {
    std::string spec;
    std::vector<layout::LayoutKind> kinds{layout::LayoutKind::standard, layout::LayoutKind::rotated,
                                          layout::LayoutKind::ecfrm};
    int trials = 2000;
    std::int64_t elem_bytes = 1 << 20;
    int max_size = 20;
    bool degraded = false;
    core::DegradedPolicy policy = core::DegradedPolicy::local_first;
    std::uint64_t seed = 2015;
};

int usage() {
    std::fprintf(stderr,
                 "usage: ecfrm_sim <code_spec> [--layout standard|rotated|ecfrm|all] [--trials N]\n"
                 "                 [--elem BYTES] [--max-size E] [--degraded] [--policy local|balance]\n"
                 "                 [--seed S]\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    if (argc < 2) return usage();
    opt.spec = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--layout") {
            const char* v = value();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "all") == 0) {
                // keep default
            } else if (std::strcmp(v, "standard") == 0) {
                opt.kinds = {layout::LayoutKind::standard};
            } else if (std::strcmp(v, "rotated") == 0) {
                opt.kinds = {layout::LayoutKind::rotated};
            } else if (std::strcmp(v, "ecfrm") == 0) {
                opt.kinds = {layout::LayoutKind::ecfrm};
            } else {
                return usage();
            }
        } else if (arg == "--trials") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.trials = std::atoi(v);
        } else if (arg == "--elem") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.elem_bytes = std::atoll(v);
        } else if (arg == "--max-size") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.max_size = std::atoi(v);
        } else if (arg == "--degraded") {
            opt.degraded = true;
        } else if (arg == "--policy") {
            const char* v = value();
            if (v == nullptr) return usage();
            if (std::strcmp(v, "balance") == 0) {
                opt.policy = core::DegradedPolicy::balance;
            } else if (std::strcmp(v, "local") != 0) {
                return usage();
            }
        } else if (arg == "--seed") {
            const char* v = value();
            if (v == nullptr) return usage();
            opt.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else {
            return usage();
        }
    }
    if (opt.trials <= 0 || opt.elem_bytes <= 0 || opt.max_size <= 0) return usage();

    auto code = codes::make_code(opt.spec);
    if (!code.ok()) {
        std::fprintf(stderr, "error: %s\n", code.error().message.c_str());
        return 1;
    }

    std::printf("%s protocol: %d trials, %lld B elements, sizes 1..%d%s\n",
                opt.degraded ? "degraded-read" : "normal-read", opt.trials,
                static_cast<long long>(opt.elem_bytes), opt.max_size,
                opt.degraded ? (opt.policy == core::DegradedPolicy::balance ? ", balance policy"
                                                                            : ", local-first policy")
                             : "");
    if (opt.degraded) {
        std::printf("%-20s %12s %12s %12s\n", "scheme", "MB/s", "cost", "E[max load]");
    } else {
        std::printf("%-20s %12s %12s\n", "scheme", "MB/s", "E[max load]");
    }

    for (auto kind : opt.kinds) {
        core::Scheme scheme(code.value(), kind);
        const std::int64_t elements = 40 * scheme.layout().data_per_stripe();
        sim::DiskModel model(sim::DiskProfile::savvio_10k3(), opt.elem_bytes);
        Rng rng(opt.seed);

        double speed = 0.0, cost = 0.0, max_load = 0.0;
        for (int t = 0; t < opt.trials; ++t) {
            if (opt.degraded) {
                const auto req = workload::random_degraded_read(rng, elements, scheme.disks(), opt.max_size);
                auto plan = core::plan_degraded_read(scheme, req.read.start, req.read.count,
                                                     std::vector<DiskId>{req.failed_disk}, opt.policy);
                if (!plan.ok()) {
                    std::fprintf(stderr, "error: %s\n", plan.error().message.c_str());
                    return 1;
                }
                speed += sim::simulate_read(plan.value(), model, rng).mb_per_s();
                cost += plan->cost();
                max_load += plan->max_load();
            } else {
                const auto req = workload::random_read(rng, elements, opt.max_size);
                const auto plan = core::plan_normal_read(scheme, req.start, req.count);
                speed += sim::simulate_read(plan, model, rng).mb_per_s();
                max_load += plan.max_load();
            }
        }
        if (opt.degraded) {
            std::printf("%-20s %12.2f %12.3f %12.3f\n", scheme.name().c_str(), speed / opt.trials,
                        cost / opt.trials, max_load / opt.trials);
        } else {
            std::printf("%-20s %12.2f %12.3f\n", scheme.name().c_str(), speed / opt.trials,
                        max_load / opt.trials);
        }
    }
    return 0;
}
