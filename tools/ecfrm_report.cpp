// ecfrm_report: perf regression gate over canonical bench artifacts.
//
//   ecfrm_report <baseline> <candidate> [--threshold PCT] [--markdown FILE]
//                [--fail-on-missing]
//
// Inputs are either "ecfrm.bench.v1" artifacts (written by any bench under
// ECFRM_BENCH_OUT) or NDJSON metric snapshots (ECFRM_METRICS_OUT /
// MetricRegistry::to_json). Every series present in both files is compared
// on its median; a series whose direction is known (higher_is_better /
// lower_is_better) and whose delta is worse than the noise threshold
// (default 5%) is a regression. Exit status: 0 clean, 1 regression(s),
// 2 usage or input error — so CI can gate directly on the process result.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using ecfrm::obs::json::Value;

struct Series {
    std::string name;
    std::string unit;
    std::string direction;  // "higher_is_better" | "lower_is_better" | "none"
    double value = 0.0;     // comparison statistic (median / counter value / p50)
    std::int64_t count = 0;
};

struct Input {
    std::string path;
    std::string kind;  // "artifact" | "ndjson"
    std::string bench;
    std::string build_flags;
    std::vector<Series> series;
};

std::string labels_suffix(const Value& labels) {
    if (!labels.is_object() || labels.members().empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels.members()) {
        if (!first) out += ",";
        first = false;
        out += k + "=" + (v.is_string() ? v.as_string() : "?");
    }
    out += "}";
    return out;
}

bool load_input(const std::string& path, Input& out, std::string& error) {
    out.path = path;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    auto doc = ecfrm::obs::json::parse(text);
    if (doc.ok() && doc->is_object() &&
        doc->string_or("schema", "") == "ecfrm.bench.v1") {
        out.kind = "artifact";
        out.bench = doc->string_or("bench", "");
        if (const Value* params = doc->find("params"); params != nullptr) {
            out.build_flags = params->string_or("build_flags", "");
        }
        const Value* series = doc->find("series");
        if (series != nullptr && series->is_array()) {
            for (const Value& s : series->items()) {
                // Baselines from other versions of the tools may carry
                // entries or fields this build does not know; skip what is
                // not a series object, ignore unknown fields below.
                if (!s.is_object()) continue;
                Series row;
                row.name = s.string_or("name", "?");
                row.unit = s.string_or("unit", "");
                row.direction = s.string_or("direction", "none");
                row.value = s.number_or("median", 0.0);
                row.count = static_cast<std::int64_t>(s.number_or("count", 0.0));
                out.series.push_back(std::move(row));
            }
        }
        return true;
    }

    // Fall back to an NDJSON metric snapshot: one registry entry per line.
    auto lines = ecfrm::obs::json::parse_ndjson(text);
    if (!lines.ok()) {
        error = path + ": neither an ecfrm.bench.v1 artifact nor NDJSON metrics (" +
                lines.error().message + ")";
        return false;
    }
    out.kind = "ndjson";
    for (const Value& m : lines.value()) {
        if (!m.is_object()) continue;
        Series row;
        const Value* labels = m.find("labels");
        row.name = m.string_or("name", "?") + (labels != nullptr ? labels_suffix(*labels) : "");
        row.direction = "none";  // raw metrics carry no better/worse semantics
        const std::string type = m.string_or("type", "");
        if (type == "histogram") {
            row.unit = "p50";
            row.value = m.number_or("p50", 0.0);
            row.count = static_cast<std::int64_t>(m.number_or("count", 0.0));
        } else {
            row.value = m.number_or("value", 0.0);
            row.count = 1;
        }
        out.series.push_back(std::move(row));
    }
    return true;
}

const Series* find_series(const Input& input, const std::string& name) {
    for (const Series& s : input.series) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

struct Row {
    std::string name;
    std::string unit;
    double base = 0.0;
    double cand = 0.0;
    double delta_pct = 0.0;
    std::string verdict;  // ok | REGRESSION | improved | info | new | MISSING
};

}  // namespace

int main(int argc, char** argv) {
    double threshold_pct = 5.0;
    bool fail_on_missing = false;
    std::string markdown_path;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threshold" && i + 1 < argc) {
            threshold_pct = std::atof(argv[++i]);
        } else if (arg == "--markdown" && i + 1 < argc) {
            markdown_path = argv[++i];
        } else if (arg == "--fail-on-missing") {
            fail_on_missing = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: ecfrm_report <baseline> <candidate> [--threshold PCT]"
                        " [--markdown FILE] [--fail-on-missing]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "ecfrm_report: unknown flag %s\n", arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() < 2) {
        std::fprintf(stderr, "ecfrm_report: need a baseline and a candidate file\n");
        return 2;
    }

    Input baseline;
    Input candidate;
    std::string error;
    if (!load_input(files.front(), baseline, error) ||
        !load_input(files.back(), candidate, error)) {
        std::fprintf(stderr, "ecfrm_report: %s\n", error.c_str());
        return 2;
    }
    if (!baseline.build_flags.empty() && !candidate.build_flags.empty() &&
        baseline.build_flags != candidate.build_flags) {
        std::fprintf(stderr,
                     "ecfrm_report: warning: build flags differ (baseline '%s', candidate '%s')\n",
                     baseline.build_flags.c_str(), candidate.build_flags.c_str());
    }

    std::vector<Row> rows;
    int regressions = 0;
    for (const Series& base : baseline.series) {
        Row row;
        row.name = base.name;
        row.unit = base.unit;
        row.base = base.value;
        const Series* cand = find_series(candidate, base.name);
        if (cand == nullptr) {
            row.verdict = "MISSING";
            if (fail_on_missing) ++regressions;
            rows.push_back(std::move(row));
            continue;
        }
        row.cand = cand->value;
        row.delta_pct = base.value != 0.0 ? (cand->value / base.value - 1.0) * 100.0
                                          : (cand->value == 0.0 ? 0.0 : 100.0);
        if (base.direction == "none") {
            row.verdict = "info";
        } else {
            // "Worse" depends on the series direction; |delta| inside the
            // noise threshold is never actionable either way.
            const bool higher = base.direction == "higher_is_better";
            const double worse_pct = higher ? -row.delta_pct : row.delta_pct;
            if (worse_pct > threshold_pct) {
                row.verdict = "REGRESSION";
                ++regressions;
            } else if (-worse_pct > threshold_pct) {
                row.verdict = "improved";
            } else {
                row.verdict = "ok";
            }
        }
        rows.push_back(std::move(row));
    }
    for (const Series& cand : candidate.series) {
        if (find_series(baseline, cand.name) == nullptr) {
            Row row;
            row.name = cand.name;
            row.unit = cand.unit;
            row.cand = cand.value;
            row.verdict = "new";
            rows.push_back(std::move(row));
        }
    }

    std::printf("ecfrm_report: %s (%s) vs %s (%s), threshold %.1f%%\n", baseline.path.c_str(),
                baseline.kind.c_str(), candidate.path.c_str(), candidate.kind.c_str(),
                threshold_pct);
    std::size_t width = 4;
    for (const Row& r : rows) width = std::max(width, r.name.size());
    std::printf("%-*s %14s %14s %9s  %s\n", static_cast<int>(width), "series", "baseline",
                "candidate", "delta", "verdict");
    for (const Row& r : rows) {
        std::printf("%-*s %14.4g %14.4g %+8.2f%%  %s%s%s\n", static_cast<int>(width),
                    r.name.c_str(), r.base, r.cand, r.delta_pct, r.verdict.c_str(),
                    r.unit.empty() ? "" : "  [", r.unit.empty() ? "" : (r.unit + "]").c_str());
    }
    std::printf("ecfrm_report: %d regression(s) across %zu series\n", regressions, rows.size());

    if (!markdown_path.empty()) {
        std::ofstream md(markdown_path);
        if (!md) {
            std::fprintf(stderr, "ecfrm_report: cannot write %s\n", markdown_path.c_str());
            return 2;
        }
        md << "# Perf report\n\n"
           << "Baseline `" << baseline.path << "` vs candidate `" << candidate.path
           << "` (threshold " << threshold_pct << "%)\n\n"
           << "| series | unit | baseline | candidate | delta | verdict |\n"
           << "|---|---|---:|---:|---:|---|\n";
        for (const Row& r : rows) {
            char delta[32];
            std::snprintf(delta, sizeof(delta), "%+.2f%%", r.delta_pct);
            md << "| " << r.name << " | " << r.unit << " | " << r.base << " | " << r.cand
               << " | " << delta << " | " << r.verdict << " |\n";
        }
        md << "\n**" << regressions << " regression(s)** across " << rows.size()
           << " series.\n";
    }

    return regressions > 0 ? 1 : 0;
}
