// ecfrm_cli: a small archival store on a directory of file-backed disks.
//
//   ecfrm_cli create <dir> <code_spec> <layout> <element_bytes>
//   ecfrm_cli put <dir> <input_file>
//   ecfrm_cli get <dir> <offset> <length> <output_file>
//   ecfrm_cli cat <dir> <output_file>
//   ecfrm_cli fail <dir> <disk>
//   ecfrm_cli reconstruct <dir> <disk>
//   ecfrm_cli scrub <dir>
//   ecfrm_cli corrupt <dir> <disk> <row> <byte>
//   ecfrm_cli status <dir>
//
//   code_spec: rs:<k>,<m> or lrc:<k>,<l>,<m>; layout: standard|rotated|ecfrm
//
// The archive survives process restarts: geometry and committed size live
// in <dir>/MANIFEST, payloads in <dir>/disk_<i>.dat.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codes/factory.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/explain.h"
#include "core/read_planner.h"
#include "gf/kernels.h"
#include "core/scheme.h"
#include "layout/layout.h"
#include "obs/exposition.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "store/disk.h"
#include "store/ec_pipeline.h"
#include "store/fault_device.h"
#include "store/file_disk.h"
#include "store/io_backend.h"
#include "store/manifest.h"
#include "store/stripe_store.h"

namespace {

using namespace ecfrm;
namespace fs = std::filesystem;

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  ecfrm_cli create <dir> <code_spec> <layout> <element_bytes>\n"
                 "  ecfrm_cli put <dir> <input_file> [object_name]\n"
                 "  ecfrm_cli get <dir> <offset> <length> <output_file>\n"
                 "  ecfrm_cli get-object <dir> <object_name> <output_file>\n"
                 "  ecfrm_cli list <dir>\n"
                 "  ecfrm_cli cat <dir> <output_file>\n"
                 "  ecfrm_cli overwrite <dir> <offset> <input_file>\n"
                 "  ecfrm_cli fail <dir> <disk>\n"
                 "  ecfrm_cli reconstruct <dir> <disk>\n"
                 "  ecfrm_cli scrub <dir>\n"
                 "  ecfrm_cli corrupt <dir> <disk> <row> <byte>\n"
                 "  ecfrm_cli status <dir>\n"
                 "  ecfrm_cli explain <code_spec> <layout> <start> <count>"
                 " [--failed d0,d1] [--policy local|balance]\n"
                 "  ecfrm_cli slowlog <dir> [--requests N] [--read-elems N] [--threshold-us T]\n"
                 "      [--seed S] [--out slow.ndjson] [--chrome-out trace.json]\n"
                 "  ecfrm_cli heat <dir> [--requests N] [--read-elems N] [--seed S]\n"
                 "      [--out heat.json] [--ndjson disks.ndjson]\n"
                 "  ecfrm_cli faultcamp [--seed S] [--elem BYTES] [--out artifact.json]\n"
                 "  ecfrm_cli pipeline [--spec S] [--layout L] [--elem BYTES] [--stripes N]\n"
                 "      [--policy immediate|delayed|threshold] [--max-pending N] [--rate ROWS_S]\n"
                 "      [--burst ROWS] [--chunk ROWS] [--repair-disk D] [--out state.json]\n"
                 "  ecfrm_cli simd [--out artifact.json]\n"
                 "  ecfrm_cli serve-bench <code_spec> <layout> [--threads N] [--requests N]"
                 " [--elem BYTES] [--read-elems N] [--stripes N] [--degraded] [--seed S]"
                 " [--out artifact.json]\n"
                 "global options (any command):\n"
                 "  --metrics-out <file>   dump metrics as newline-delimited JSON\n"
                 "  --metrics-prom <file>  dump metrics in Prometheus text format\n"
                 "  --trace-out <file>     dump spans as chrome://tracing JSON\n"
                 "  --serve <port>         serve /metrics, /metrics.json, /slo, /slow,\n"
                 "                         /requests/<id>, /disks, /heat and /healthz on\n"
                 "                         127.0.0.1 (GET / lists every route)\n"
                 "  --serve-hold <secs>    keep serving after the command (GET /quitquitquit ends)\n");
    return 2;
}

/// Process-wide observability sinks, enabled by the global flags.
struct ObsOutputs {
    std::string metrics_path;
    std::string prometheus_path;
    std::string trace_path;
    int serve_port = -1;       // >= 0: expose live metrics over HTTP
    double serve_hold = 0.0;   // seconds to keep serving after the command
    std::unique_ptr<obs::MetricRegistry> metrics;
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::RequestForensics> forensics;
    std::unique_ptr<obs::DiskHeatModel> heat;  // sized lazily at archive open
    std::unique_ptr<obs::Snapshotter> snapshotter;
    std::unique_ptr<obs::ExpositionServer> server;

    /// The heat model needs the device count, which is only known once an
    /// archive's manifest is read — after enable() has already started the
    /// server. Store commands call this as they open, and the server picks
    /// the model up mid-flight.
    void attach_heat_for(int disks) {
        if (metrics == nullptr && tracer == nullptr) return;
        if (heat != nullptr && heat->disks() == disks) return;
        heat = std::make_unique<obs::DiskHeatModel>(disks);
        if (server != nullptr) server->attach_heat(heat.get());
    }

    void enable() {
        if (!metrics_path.empty() || !prometheus_path.empty() || serve_port >= 0) {
            metrics = std::make_unique<obs::MetricRegistry>("ecfrm_cli");
            core::attach_planner_metrics(metrics.get());
            gf::attach_kernel_metrics(metrics.get());
        }
        if (!trace_path.empty()) tracer = std::make_unique<obs::Tracer>(1 << 14);
        if (tracer != nullptr && metrics != nullptr) tracer->attach_metrics(metrics.get());
        // Request forensics ride along with any observability sink: store
        // commands feed /slo and /slow whenever --serve (or a metrics
        // dump) is active.
        if (metrics != nullptr || tracer != nullptr) {
            forensics = std::make_unique<obs::RequestForensics>();
        }
        if (serve_port >= 0) {
            snapshotter = std::make_unique<obs::Snapshotter>(metrics.get(), 1.0);
            snapshotter->start();
            server = std::make_unique<obs::ExpositionServer>(metrics.get(), snapshotter.get(),
                                                             forensics.get());
            auto status = server->start(serve_port);
            if (!status.ok()) {
                std::fprintf(stderr, "error: %s\n", status.error().message.c_str());
                server.reset();
                return;
            }
            std::printf("serving metrics on http://127.0.0.1:%d/metrics\n", server->port());
            std::fflush(stdout);
        }
    }

    /// Honour --serve-hold: keep the command's final metrics scrapable
    /// until the hold expires or a client GETs /quitquitquit.
    void hold() {
        if (server == nullptr || serve_hold <= 0.0) return;
        std::printf("holding for %.1fs (GET /quitquitquit to release)\n", serve_hold);
        std::fflush(stdout);
        server->wait_for_quit(serve_hold);
    }

    static bool write_file(const std::string& path, const std::string& body) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(body.data(), static_cast<std::streamsize>(body.size()));
        if (!out.good()) {
            std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
            return false;
        }
        return true;
    }

    /// Dump whatever was requested; returns false on write failure.
    bool flush() const {
        bool ok = true;
        if (metrics != nullptr && !metrics_path.empty()) {
            ok = write_file(metrics_path, metrics->to_json()) && ok;
        }
        if (metrics != nullptr && !prometheus_path.empty()) {
            ok = write_file(prometheus_path, metrics->to_prometheus()) && ok;
        }
        if (tracer != nullptr) ok = write_file(trace_path, tracer->to_chrome_json()) && ok;
        return ok;
    }
};

ObsOutputs g_obs;

int fail_with(const Error& error) {
    std::fprintf(stderr, "error: %s\n", error.message.c_str());
    return 1;
}

struct Archive {
    store::Manifest manifest;
    std::unique_ptr<store::StripeStore> store;
};

Result<Archive> open_archive(const std::string& dir) {
    auto manifest = store::Manifest::load(dir);
    if (!manifest.ok()) return manifest.error();

    auto code = codes::make_code(manifest->code_spec);
    if (!code.ok()) return code.error();
    core::Scheme scheme(code.value(), manifest->kind);

    const std::int64_t element_bytes = manifest->element_bytes;
    auto st = store::StripeStore::open(
        std::move(scheme), element_bytes,
        [&dir, element_bytes](int index) -> Result<std::unique_ptr<store::BlockDevice>> {
            // Backend per ECFRM_IO_BACKEND (default: uring when the
            // kernel has it, else pread); all backends share the
            // archive's on-disk format.
            return store::open_file_device(dir, index, element_bytes);
        });
    if (!st.ok()) return st.error();
    auto restored = st.value()->restore(manifest->extents, manifest->stripes);
    if (!restored.ok()) return restored.error();
    g_obs.attach_heat_for(st.value()->scheme().disks());
    st.value()->attach_observability(g_obs.metrics.get(), g_obs.tracer.get(),
                                     g_obs.forensics.get(), g_obs.heat.get());
    return Archive{std::move(manifest).take(), std::move(st).take()};
}

Status save_manifest(const std::string& dir, Archive& archive) {
    archive.manifest.logical_bytes = archive.store->logical_bytes();
    archive.manifest.stripes =
        archive.store->stored_data_elements() / archive.store->scheme().layout().data_per_stripe();
    archive.manifest.extents = archive.store->extents();
    return archive.manifest.save(dir);
}

int cmd_create(const std::string& dir, const std::string& spec, const std::string& layout_name,
               const std::string& elem) {
    auto code = codes::make_code(spec);
    if (!code.ok()) return fail_with(code.error());
    auto kind = store::parse_layout_kind(layout_name);
    if (!kind.ok()) return fail_with(kind.error());
    const long long element_bytes = std::atoll(elem.c_str());
    if (element_bytes <= 0 || element_bytes % 8 != 0) {
        std::fprintf(stderr, "error: element_bytes must be a positive multiple of 8\n");
        return 1;
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (fs::exists(dir + "/MANIFEST")) {
        std::fprintf(stderr, "error: archive already exists at %s\n", dir.c_str());
        return 1;
    }
    store::Manifest manifest;
    manifest.code_spec = spec;
    manifest.kind = kind.value();
    manifest.element_bytes = element_bytes;
    auto status = manifest.save(dir);
    if (!status.ok()) return fail_with(status.error());

    core::Scheme scheme(code.value(), kind.value());
    std::printf("created %s archive on %d disks (element %lld B, stripe %d rows)\n",
                scheme.name().c_str(), scheme.disks(), element_bytes, scheme.layout().rows_per_stripe());
    return 0;
}

int write_range(Archive& archive, std::int64_t offset, std::int64_t length, const std::string& output);

int cmd_put(const std::string& dir, const std::string& input, const std::string& object_name) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    if (!object_name.empty() && archive->manifest.find_object(object_name) != nullptr) {
        std::fprintf(stderr, "error: object '%s' already exists\n", object_name.c_str());
        return 1;
    }

    std::ifstream in(input, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", input.c_str());
        return 1;
    }
    const std::int64_t object_offset = archive->store->logical_bytes();
    std::vector<char> buffer(1 << 20);
    std::int64_t total = 0;
    while (in) {
        in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
        const std::streamsize got = in.gcount();
        if (got <= 0) break;
        auto status = archive->store->append(
            ConstByteSpan(reinterpret_cast<const std::uint8_t*>(buffer.data()), static_cast<std::size_t>(got)));
        if (!status.ok()) return fail_with(status.error());
        total += got;
    }
    auto status = archive->store->flush();
    if (!status.ok()) return fail_with(status.error());
    if (!object_name.empty()) {
        archive->manifest.objects.push_back({object_name, object_offset, total});
    }
    status = save_manifest(dir, archive.value());
    if (!status.ok()) return fail_with(status.error());
    std::printf("stored %lld bytes%s%s (archive now %lld bytes)\n", static_cast<long long>(total),
                object_name.empty() ? "" : " as object ", object_name.c_str(),
                static_cast<long long>(archive->store->logical_bytes()));
    return 0;
}

int cmd_get_object(const std::string& dir, const std::string& name, const std::string& output) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const store::ObjectRecord* object = archive->manifest.find_object(name);
    if (object == nullptr) {
        std::fprintf(stderr, "error: no such object '%s'\n", name.c_str());
        return 1;
    }
    return write_range(archive.value(), object->offset, object->bytes, output);
}

int cmd_list(const std::string& dir) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    std::printf("%-32s %14s %14s\n", "object", "offset", "bytes");
    for (const auto& o : archive->manifest.objects) {
        std::printf("%-32s %14lld %14lld\n", o.name.c_str(), static_cast<long long>(o.offset),
                    static_cast<long long>(o.bytes));
    }
    std::printf("(%zu objects, %lld logical bytes)\n", archive->manifest.objects.size(),
                static_cast<long long>(archive->store->logical_bytes()));
    return 0;
}

int write_range(Archive& archive, std::int64_t offset, std::int64_t length, const std::string& output) {
    auto bytes = archive.store->read_bytes(offset, length);
    if (!bytes.ok()) return fail_with(bytes.error());
    std::ofstream out(output, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", output.c_str());
        return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes->data()), static_cast<std::streamsize>(bytes->size()));
    if (!out.good()) {
        std::fprintf(stderr, "error: short write to %s\n", output.c_str());
        return 1;
    }
    std::printf("read %zu bytes -> %s\n", bytes->size(), output.c_str());
    return 0;
}

int cmd_get(const std::string& dir, const std::string& off, const std::string& len, const std::string& output) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    return write_range(archive.value(), std::atoll(off.c_str()), std::atoll(len.c_str()), output);
}

int cmd_cat(const std::string& dir, const std::string& output) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const std::int64_t length = archive->store->logical_bytes();
    return write_range(archive.value(), 0, length, output);
}

int cmd_overwrite(const std::string& dir, const std::string& off, const std::string& input) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    std::ifstream in(input, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", input.c_str());
        return 1;
    }
    std::vector<char> body((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    auto status = archive->store->overwrite(
        std::atoll(off.c_str()),
        ConstByteSpan(reinterpret_cast<const std::uint8_t*>(body.data()), body.size()));
    if (!status.ok()) return fail_with(status.error());
    std::printf("overwrote %zu bytes at offset %s (parity delta-updated)\n", body.size(), off.c_str());
    return 0;
}

int cmd_fail(const std::string& dir, const std::string& disk) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto status = archive->store->fail_disk(std::atoi(disk.c_str()));
    if (!status.ok()) return fail_with(status.error());
    std::printf("disk %s marked failed (content dropped)\n", disk.c_str());
    return 0;
}

int cmd_reconstruct(const std::string& dir, const std::string& disk) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto stats = archive->store->reconstruct_disk(std::atoi(disk.c_str()));
    if (!stats.ok()) return fail_with(stats.error());
    std::printf("rebuilt %lld elements from %lld reads\n", static_cast<long long>(stats->elements_rebuilt),
                static_cast<long long>(stats->elements_read));
    return 0;
}

int cmd_scrub(const std::string& dir) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto report = archive->store->scrub();
    if (!report.ok()) return fail_with(report.error());
    std::printf("scanned %lld groups: %lld inconsistent, %lld elements repaired, %lld unrecoverable\n",
                static_cast<long long>(report->groups_scanned),
                static_cast<long long>(report->groups_inconsistent),
                static_cast<long long>(report->elements_repaired),
                static_cast<long long>(report->unrecoverable_groups));
    return report->unrecoverable_groups == 0 ? 0 : 1;
}

int cmd_corrupt(const std::string& dir, const std::string& disk, const std::string& row,
                const std::string& byte) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto status = archive->store->corrupt_element(std::atoi(disk.c_str()), std::atoll(row.c_str()),
                                                  static_cast<std::size_t>(std::atoll(byte.c_str())));
    if (!status.ok()) return fail_with(status.error());
    std::printf("flipped one byte on disk %s row %s (silently)\n", disk.c_str(), row.c_str());
    return 0;
}

int cmd_status(const std::string& dir) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const auto& scheme = archive->store->scheme();
    std::printf("scheme:         %s\n", scheme.name().c_str());
    std::printf("disks:          %d\n", scheme.disks());
    std::printf("element size:   %lld B\n", static_cast<long long>(archive->manifest.element_bytes));
    std::printf("logical size:   %lld B\n", static_cast<long long>(archive->store->logical_bytes()));
    std::printf("data elements:  %lld\n", static_cast<long long>(archive->store->stored_data_elements()));
    const auto failed = archive->store->failed_disks();
    std::printf("failed disks:   ");
    if (failed.empty()) {
        std::printf("none\n");
    } else {
        for (DiskId d : failed) std::printf("%d ", d);
        std::printf("\n");
    }
    auto parity = archive->store->verify_parity();
    std::printf("parity audit:   %s\n", parity.ok() ? "clean"
                                                    : (failed.empty() ? parity.error().message.c_str()
                                                                      : "skipped (failed disks)"));
    return 0;
}

/// `explain` plans a read against a synthetic scheme (no archive needed)
/// and prints the planner's decision as ecfrm.explain.v1 JSON.
int cmd_explain(const std::vector<std::string>& args) {
    std::vector<DiskId> failed;
    auto policy = core::DegradedPolicy::local_first;
    std::vector<std::string> positional;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--failed" && i + 1 < args.size()) {
            const std::string& list = args[++i];
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos) comma = list.size();
                failed.push_back(std::atoi(list.substr(pos, comma - pos).c_str()));
                pos = comma + 1;
            }
        } else if (args[i] == "--policy" && i + 1 < args.size()) {
            const std::string& name = args[++i];
            if (name == "balance") {
                policy = core::DegradedPolicy::balance;
            } else if (name != "local") {
                std::fprintf(stderr, "error: unknown policy '%s'\n", name.c_str());
                return 2;
            }
        } else {
            positional.push_back(args[i]);
        }
    }
    if (positional.size() != 4) return usage();
    auto code = codes::make_code(positional[0]);
    if (!code.ok()) return fail_with(code.error());
    auto kind = store::parse_layout_kind(positional[1]);
    if (!kind.ok()) return fail_with(kind.error());
    core::Scheme scheme(code.value(), kind.value());
    auto out = core::explain_read_json(scheme, std::atoll(positional[2].c_str()),
                                       std::atoll(positional[3].c_str()), failed, policy);
    if (!out.ok()) return fail_with(out.error());
    std::fputs(out->c_str(), stdout);
    return 0;
}

// ---------------------------------------------------------------------------
// slowlog: replay a seeded read workload against an archive with request
// forensics attached, then dump the captured exemplars as NDJSON (one
// request per line, full span tree). --threshold-us 0 captures every
// request, which makes this double as a per-phase latency profiler for an
// archive on real file-backed disks; --chrome-out exports the slowest
// captured request as a standalone chrome://tracing document.

int cmd_slowlog(const std::vector<std::string>& args) {
    if (args.size() < 3) return usage();
    const std::string& dir = args[2];
    int requests = 64;
    long long read_elems = 8;
    double threshold_us = 0.0;
    unsigned long long seed = 1;
    std::string out_path;
    std::string chrome_path;
    for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--requests" && i + 1 < args.size()) {
            requests = std::atoi(args[++i].c_str());
        } else if (args[i] == "--read-elems" && i + 1 < args.size()) {
            read_elems = std::atoll(args[++i].c_str());
        } else if (args[i] == "--threshold-us" && i + 1 < args.size()) {
            threshold_us = std::atof(args[++i].c_str());
        } else if (args[i] == "--seed" && i + 1 < args.size()) {
            seed = std::strtoull(args[++i].c_str(), nullptr, 10);
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (args[i] == "--chrome-out" && i + 1 < args.size()) {
            chrome_path = args[++i];
        } else {
            return usage();
        }
    }
    if (requests <= 0 || read_elems <= 0) {
        std::fprintf(stderr, "error: --requests and --read-elems must be positive\n");
        return 1;
    }

    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const std::int64_t committed = archive->store->committed_bytes();
    if (committed <= 0) {
        std::fprintf(stderr, "error: archive holds no committed bytes\n");
        return 1;
    }

    obs::ForensicsOptions opts;
    opts.slow_threshold_us = threshold_us;
    opts.max_exemplars = static_cast<std::size_t>(requests);
    obs::RequestForensics forensics(opts);
    archive->store->attach_observability(g_obs.metrics.get(), g_obs.tracer.get(), &forensics,
                                         g_obs.heat.get());

    const std::int64_t element_bytes = archive->manifest.element_bytes;
    const std::int64_t max_len = std::min<std::int64_t>(read_elems * element_bytes, committed);
    Rng rng(seed);
    int failures = 0;
    for (int r = 0; r < requests; ++r) {
        const std::int64_t length =
            1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_len)));
        const std::int64_t offset = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(committed - length + 1)));
        auto read = archive->store->read_bytes(offset, length);
        if (!read.ok()) ++failures;
    }
    archive->store->attach_observability(g_obs.metrics.get(), g_obs.tracer.get(),
                                         g_obs.forensics.get(), g_obs.heat.get());

    const auto exemplars = forensics.exemplars();
    std::printf("slowlog: %d requests, %zu captured (threshold %.1f us), %d failed\n", requests,
                exemplars.size(), threshold_us, failures);
    std::printf("%-6s %-9s %12s %6s %6s %7s %6s  %s\n", "id", "class", "dur_us", "retry",
                "hedge", "replan", "spans", "phases");
    for (const auto& trace : exemplars) {
        std::string phases;
        for (const auto& [name, us] : trace->phase_totals()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%s%s=%.0f", phases.empty() ? "" : " ", name.c_str(),
                          us);
            phases += buf;
        }
        std::printf("%-6llu %-9s %12.1f %6d %6d %7d %6zu  %s\n",
                    static_cast<unsigned long long>(trace->id()),
                    obs::request_class_name(trace->cls()), trace->dur_us(), trace->retries(),
                    trace->hedges(), trace->replans(), trace->node_count(), phases.c_str());
    }

    const std::string ndjson = forensics.slowlog_ndjson();
    if (!out_path.empty()) {
        if (!ObsOutputs::write_file(out_path, ndjson)) return 1;
    } else {
        std::fputs(ndjson.c_str(), stdout);
    }
    if (!chrome_path.empty()) {
        std::shared_ptr<const obs::RequestTrace> slowest;
        for (const auto& trace : exemplars) {
            if (slowest == nullptr || trace->dur_us() > slowest->dur_us()) slowest = trace;
        }
        if (slowest == nullptr) {
            std::fprintf(stderr, "error: no captured request to export\n");
            return 1;
        }
        if (!ObsOutputs::write_file(chrome_path, slowest->chrome_json())) return 1;
        std::printf("chrome trace of request %llu -> %s\n",
                    static_cast<unsigned long long>(slowest->id()), chrome_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// heat: replay a seeded read workload against an archive with the live
// disk-heat scoreboard attached, then print the per-device health table and
// the cluster balance summary. --out dumps the full ecfrm.heat.v1 snapshot
// (the same document the /heat route serves); --ndjson dumps one JSON
// object per disk per line for log-pipeline ingestion. Without --out the
// snapshot goes to stdout after the table.

int cmd_heat(const std::vector<std::string>& args) {
    if (args.size() < 3) return usage();
    const std::string& dir = args[2];
    int requests = 64;
    long long read_elems = 8;
    unsigned long long seed = 1;
    std::string out_path;
    std::string ndjson_path;
    for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--requests" && i + 1 < args.size()) {
            requests = std::atoi(args[++i].c_str());
        } else if (args[i] == "--read-elems" && i + 1 < args.size()) {
            read_elems = std::atoll(args[++i].c_str());
        } else if (args[i] == "--seed" && i + 1 < args.size()) {
            seed = std::strtoull(args[++i].c_str(), nullptr, 10);
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (args[i] == "--ndjson" && i + 1 < args.size()) {
            ndjson_path = args[++i];
        } else {
            return usage();
        }
    }
    if (requests <= 0 || read_elems <= 0) {
        std::fprintf(stderr, "error: --requests and --read-elems must be positive\n");
        return 1;
    }

    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const std::int64_t committed = archive->store->committed_bytes();
    if (committed <= 0) {
        std::fprintf(stderr, "error: archive holds no committed bytes\n");
        return 1;
    }

    obs::DiskHeatModel heat(archive->store->scheme().disks());
    archive->store->attach_observability(g_obs.metrics.get(), g_obs.tracer.get(),
                                         g_obs.forensics.get(), &heat);

    const std::int64_t element_bytes = archive->manifest.element_bytes;
    const std::int64_t max_len = std::min<std::int64_t>(read_elems * element_bytes, committed);
    Rng rng(seed);
    int failures = 0;
    for (int r = 0; r < requests; ++r) {
        const std::int64_t length =
            1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_len)));
        const std::int64_t offset = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(committed - length + 1)));
        auto read = archive->store->read_bytes(offset, length);
        if (!read.ok()) ++failures;
    }
    archive->store->attach_observability(g_obs.metrics.get(), g_obs.tracer.get(),
                                         g_obs.forensics.get(), g_obs.heat.get());

    const double now = obs::DiskHeatModel::now_seconds();
    const obs::ClusterHeatSnapshot cluster = heat.snapshot(now);
    std::printf("heat: %d requests (%d failed), %ds window\n", requests, failures,
                static_cast<int>(cluster.window_seconds));
    std::printf("%-5s %6s %8s %10s %9s %9s %9s %4s %4s %4s %7s\n", "disk", "infl", "ops",
                "bytes", "ewma_us", "mean_us", "p99_us", "err", "tmo", "rty", "score");
    for (int d = 0; d < heat.disks(); ++d) {
        const obs::DiskHeatSnapshot s = heat.disk_snapshot(d, now);
        std::printf("%-5d %6lld %8lld %10lld %9.1f %9.1f %9.1f %4lld %4lld %4lld %6.2f%s\n",
                    s.disk, static_cast<long long>(s.in_flight), static_cast<long long>(s.ops),
                    static_cast<long long>(s.bytes), s.ewma_latency_us, s.mean_latency_us,
                    s.p99_latency_us, static_cast<long long>(s.errors),
                    static_cast<long long>(s.timeouts), static_cast<long long>(s.retries),
                    s.straggler_score, s.straggler ? " STRAGGLER" : "");
    }
    std::string stragglers;
    for (int d : cluster.stragglers) {
        if (!stragglers.empty()) stragglers += ",";
        stragglers += std::to_string(d);
    }
    std::printf(
        "cluster: requests=%lld measured_max_load=%.3f load_factor=%.3f skew_cov=%.3f "
        "hottest=%d stragglers=[%s]\n",
        static_cast<long long>(cluster.requests), cluster.measured_max_load,
        cluster.load_factor, cluster.skew_cov, cluster.hottest_disk, stragglers.c_str());

    const std::string snapshot_json = heat.heat_json(now);
    if (!out_path.empty()) {
        if (!ObsOutputs::write_file(out_path, snapshot_json)) return 1;
    } else {
        std::fputs(snapshot_json.c_str(), stdout);
    }
    if (!ndjson_path.empty() && !ObsOutputs::write_file(ndjson_path, heat.disks_ndjson(now))) {
        return 1;
    }
    return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// faultcamp: a seeded fault-injection campaign over the scheme x layout x
// fault-mix matrix. Each cell writes a deterministic payload through an array
// of FaultDevices, reads it back through the self-healing read path, and
// verifies every byte (or, for the beyond-tolerance mix, that every read
// surfaces the typed error). The ecfrm.faultcamp.v1 artifact embeds each
// cell's FaultPlan, so any failing cell replays from the artifact alone.

/// How one fault mix is injected and what the store is allowed to do back.
struct MixConfig {
    store::FaultPlan plan;
    store::RecoveryOptions recovery;
    bool use_pool = false;              // straggler_hedge needs concurrency
    bool expect_beyond_tolerance = false;
    bool audit_parity = false;          // only safe when reads are fault-free
};

constexpr std::int64_t kAllOps = 1'000'000'000;

MixConfig make_mix(const std::string& mix, std::uint64_t seed, int n, int k) {
    MixConfig cfg;
    cfg.plan.seed = seed;
    if (mix == "transient") {
        cfg.plan.max_burst = 2;
        store::FaultRule rule;
        rule.kind = store::FaultKind::transient;
        rule.op = store::FaultOp::read;
        rule.count = kAllOps;
        rule.probability = 0.08;
        cfg.plan.rules.push_back(rule);
        cfg.recovery.max_retries = 3;
    } else if (mix == "torn_write") {
        cfg.plan.max_burst = 2;
        store::FaultRule rule;
        rule.kind = store::FaultKind::torn_write;
        rule.op = store::FaultOp::write;
        rule.count = kAllOps;
        rule.probability = 0.2;
        rule.torn_fraction = 0.5;
        cfg.plan.rules.push_back(rule);
        cfg.recovery.max_retries = 3;
        cfg.audit_parity = true;  // write retries must have healed parity too
    } else if (mix == "latency_timeout") {
        store::FaultRule rule;
        rule.kind = store::FaultKind::latency;
        rule.disk = 0;
        rule.op = store::FaultOp::read;
        rule.count = 4;
        rule.latency_ms = 25.0;
        cfg.plan.rules.push_back(rule);
        cfg.recovery.op_timeout_ms = 5.0;
    } else if (mix == "bitflip_detected") {
        store::FaultRule rule;
        rule.kind = store::FaultKind::bit_flip;
        rule.disk = 1;
        rule.op = store::FaultOp::read;
        rule.count = 2;
        rule.flip_offset = 3;
        rule.detected = true;
        cfg.plan.rules.push_back(rule);
    } else if (mix == "fail_stop") {
        store::FaultRule rule;
        rule.kind = store::FaultKind::fail_stop;
        rule.disk = 2;
        rule.op = store::FaultOp::read;
        cfg.plan.rules.push_back(rule);
    } else if (mix == "straggler_hedge") {
        store::FaultRule rule;
        rule.kind = store::FaultKind::latency;
        rule.disk = 0;
        rule.op = store::FaultOp::read;
        rule.count = 2;
        rule.latency_ms = 50.0;
        cfg.plan.rules.push_back(rule);
        cfg.recovery.hedge_ms = 8.0;
        cfg.use_pool = true;
    } else if (mix == "beyond_tolerance") {
        // More fail-stops than the code has parity NODES (n and k here are
        // disk counts, so sub-packetized codes fail whole nodes, not
        // elements); every device trips on its first (write) op, so reads
        // find n-k+1 dead disks and must surface the typed error — never
        // wrong bytes, never a hang.
        for (DiskId d = 0; d <= static_cast<DiskId>(n - k); ++d) {
            store::FaultRule rule;
            rule.kind = store::FaultKind::fail_stop;
            rule.disk = d;
            cfg.plan.rules.push_back(rule);
        }
        cfg.expect_beyond_tolerance = true;
        cfg.recovery.max_replans = 8;
    }
    return cfg;
}

/// One campaign cell's evidence, as it lands in the artifact.
struct FaultCell {
    std::string spec;
    std::string layout;
    std::string mix;
    std::uint64_t seed = 0;
    std::string fault_plan_json = "{}";
    int reads = 0;
    int read_errors = 0;
    std::int64_t mismatched_bytes = 0;
    std::map<std::string, int> errors_by_code;
    std::int64_t retries = 0, timeouts = 0, replans = 0, hedged = 0;
    std::int64_t degraded = 0, decodes = 0;
    std::int64_t injected_faults = 0;
    /// Per-phase latency attribution (microseconds, summed over every
    /// request of the cell, all classes merged).
    std::vector<std::pair<std::string, double>> phase_us;
    /// Requests captured by the forensics layer (recovery-active or
    /// failed ones; the latency trigger is disabled for the campaign).
    std::int64_t captured = 0;
    /// False when a captured recovery-active request's phase durations do
    /// not tile its end-to-end latency.
    bool phase_ok = true;
    bool pass = false;
    std::string detail;
};

FaultCell run_fault_cell(const std::string& spec, layout::LayoutKind kind, const std::string& mix,
                         std::uint64_t cell_seed, std::int64_t elem_bytes) {
    FaultCell cell;
    cell.spec = spec;
    cell.layout = layout::to_string(kind);
    cell.mix = mix;
    cell.seed = cell_seed;

    auto code = codes::make_code(spec);
    if (!code.ok()) {
        cell.detail = code.error().message;
        return cell;
    }
    const MixConfig cfg =
        make_mix(mix, cell_seed, code.value()->nodes(), code.value()->data_nodes());
    cell.fault_plan_json = cfg.plan.to_json();

    std::vector<store::FaultDevice*> devices;
    auto factory = [&](int index) -> Result<std::unique_ptr<store::BlockDevice>> {
        auto device = std::make_unique<store::FaultDevice>(std::make_unique<store::Disk>(elem_bytes),
                                                           cfg.plan, static_cast<DiskId>(index));
        devices.push_back(device.get());
        return std::unique_ptr<store::BlockDevice>(std::move(device));
    };

    std::unique_ptr<ThreadPool> pool;
    if (cfg.use_pool) pool = std::make_unique<ThreadPool>(4);
    obs::MetricRegistry metrics("ecfrm_faultcamp");
    auto st = store::StripeStore::open(core::Scheme(code.value(), kind), elem_bytes, factory,
                                       pool.get());
    if (!st.ok()) {
        cell.detail = st.error().message;
        return cell;
    }
    st.value()->set_recovery(cfg.recovery);
    // Capture every recovery-active request's span tree (latency trigger
    // off: within-tolerance cells finish in microseconds and would all
    // trip a wall-clock threshold on a loaded machine).
    obs::ForensicsOptions fopts;
    fopts.slow_threshold_us = -1.0;
    obs::RequestForensics forensics(fopts);
    st.value()->attach_observability(&metrics, nullptr, &forensics);

    const std::int64_t data_elems = 4 * st.value()->scheme().layout().data_per_stripe();
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(data_elems * elem_bytes));
    for (std::size_t i = 0; i < payload.size(); ++i) {
        const std::int64_t elem = static_cast<std::int64_t>(i) / elem_bytes;
        const std::int64_t byte = static_cast<std::int64_t>(i) % elem_bytes;
        payload[i] = static_cast<std::uint8_t>((elem * 131 + byte * 7 + 1) & 0xff);
    }
    auto written = st.value()->append(ConstByteSpan(payload.data(), payload.size()));
    if (written.ok()) written = st.value()->flush();
    if (!written.ok()) {
        cell.detail = "write phase: " + written.error().message;
        return cell;
    }

    const std::int64_t half = data_elems / 2;
    const std::int64_t chunks[][2] = {{0, half}, {half, data_elems - half}};
    for (const auto& chunk : chunks) {
        const std::int64_t start = chunk[0];
        const std::int64_t count = chunk[1];
        std::vector<std::uint8_t> got(static_cast<std::size_t>(count * elem_bytes));
        ++cell.reads;
        auto status = st.value()->read_elements(start, count, ByteSpan(got.data(), got.size()));
        if (!status.ok()) {
            ++cell.read_errors;
            ++cell.errors_by_code[Error::code_name(status.error().code)];
            continue;
        }
        const std::uint8_t* want = payload.data() + start * elem_bytes;
        for (std::size_t i = 0; i < got.size(); ++i) {
            if (got[i] != want[i]) ++cell.mismatched_bytes;
        }
    }
    if (cfg.audit_parity) {
        auto parity = st.value()->verify_parity();
        if (!parity.ok()) cell.detail = "parity audit: " + parity.error().message;
    }

    cell.retries = metrics.counter("ecfrm_store_retries_total").value();
    cell.timeouts = metrics.counter("ecfrm_store_timeouts_total").value();
    cell.replans = metrics.counter("ecfrm_store_replans_total").value();
    cell.hedged = metrics.counter("ecfrm_store_hedged_reads_total").value();
    cell.degraded = metrics.counter("ecfrm_store_degraded_reads_total").value();
    cell.decodes = metrics.counter("ecfrm_store_decodes_total").value();
    for (const store::FaultDevice* device : devices) {
        cell.injected_faults += static_cast<std::int64_t>(device->events().size());
    }

    // Per-phase latency attribution, all request classes merged so every
    // cell reports where its (degraded-)read time went.
    for (int c = 0; c < obs::kRequestClasses; ++c) {
        for (const auto& [name, us] : forensics.phase_totals(static_cast<obs::RequestClass>(c))) {
            auto it = std::find_if(cell.phase_us.begin(), cell.phase_us.end(),
                                   [&](const auto& p) { return p.first == name; });
            if (it == cell.phase_us.end()) {
                cell.phase_us.emplace_back(name, us);
            } else {
                it->second += us;
            }
        }
    }
    cell.captured = static_cast<std::int64_t>(forensics.captured());
    // Audit the captured trees: a recovery-active request's phase spans
    // are recorded contiguously, so their durations must tile the
    // request's end-to-end latency (5% tolerance, plus a 10 us floor for
    // clock granularity on microsecond-scale requests).
    for (const auto& trace : forensics.exemplars()) {
        if (!trace->ok() || !trace->recovery_active()) continue;
        double phase_sum = 0.0;
        for (const auto& [name, us] : trace->phase_totals()) phase_sum += us;
        const double dur = trace->dur_us();
        if (std::fabs(dur - phase_sum) > std::max(0.05 * dur, 10.0)) {
            cell.phase_ok = false;
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "request %llu: phases sum to %.1f us of %.1f us end-to-end",
                          static_cast<unsigned long long>(trace->id()), phase_sum, dur);
            if (cell.detail.empty()) cell.detail = buf;
        }
    }
    // Every cell whose counters show read-path recovery engaged must have
    // captured at least one exemplar for it. Retries are excluded from
    // the predicate: they also count write-path retries (torn writes),
    // which run outside any traced read request.
    const bool recovered = cell.timeouts + cell.replans + cell.hedged > 0;
    if (recovered && cell.captured == 0) {
        cell.phase_ok = false;
        if (cell.detail.empty()) cell.detail = "recovery engaged but no request was captured";
    }
    st.value()->attach_observability(nullptr);

    if (cfg.expect_beyond_tolerance) {
        cell.pass = cell.read_errors == cell.reads && cell.mismatched_bytes == 0 &&
                    cell.errors_by_code.size() == 1 &&
                    cell.errors_by_code.count("beyond_tolerance") == 1 && cell.phase_ok;
        if (!cell.pass && cell.detail.empty()) {
            cell.detail = "expected every read to fail with beyond_tolerance";
        }
        return cell;
    }
    cell.pass = cell.read_errors == 0 && cell.mismatched_bytes == 0 && cell.phase_ok &&
                cell.detail.empty();
    if (!cell.pass && cell.detail.empty()) {
        cell.detail = "read errors or byte mismatches under a within-tolerance mix";
    }
    // Scripted (probability-1) mixes are deterministic regardless of seed,
    // so the recovery mechanism they target must actually have engaged.
    if (cell.pass && mix == "latency_timeout" && (cell.timeouts < 1 || cell.replans < 1)) {
        cell.pass = false;
        cell.detail = "expected timeouts and a mid-flight replan";
    }
    if (cell.pass && mix == "bitflip_detected" && (cell.replans < 1 || cell.degraded < 1)) {
        cell.pass = false;
        cell.detail = "expected detected corruption to force a degraded replan";
    }
    if (cell.pass && mix == "fail_stop" && cell.degraded < 1) {
        cell.pass = false;
        cell.detail = "expected degraded reads around the tripped disk";
    }
    if (cell.pass && mix == "straggler_hedge" && cell.hedged < 1) {
        cell.pass = false;
        cell.detail = "expected hedged reads around the straggler";
    }
    return cell;
}

// ---------------------------------------------------------------------------
// Write-path cells: the matrix above aims faults at reads; these three aim
// them at the write pipeline itself — a scripted torn write inside a stripe
// commit, a device dying during a parity flush (repaired by the EcPipeline
// scheduler), and a crash that a manifest replay must make invisible. One
// scheme each, fully deterministic, same FaultCell evidence format.

std::vector<std::uint8_t> write_cell_payload(std::int64_t bytes, std::int64_t elem_bytes) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(bytes));
    for (std::size_t i = 0; i < payload.size(); ++i) {
        const std::int64_t elem = static_cast<std::int64_t>(i) / elem_bytes;
        const std::int64_t byte = static_cast<std::int64_t>(i) % elem_bytes;
        payload[i] = static_cast<std::uint8_t>((elem * 131 + byte * 7 + 1) & 0xff);
    }
    return payload;
}

/// Read the whole payload back and count mismatches into the cell.
void write_cell_verify(FaultCell& cell, store::StripeStore& st,
                       const std::vector<std::uint8_t>& payload) {
    ++cell.reads;
    auto got = st.read_bytes(0, static_cast<std::int64_t>(payload.size()));
    if (!got.ok()) {
        ++cell.read_errors;
        ++cell.errors_by_code[Error::code_name(got.error().code)];
        return;
    }
    for (std::size_t i = 0; i < payload.size(); ++i) {
        if (got.value()[i] != payload[i]) ++cell.mismatched_bytes;
    }
}

FaultCell run_torn_midstripe_cell(std::uint64_t seed, std::int64_t elem_bytes) {
    FaultCell cell;
    cell.spec = "rs:6,3";
    cell.layout = "ecfrm";
    cell.mix = "torn_write_midstripe";
    cell.seed = seed;

    // Scripted, not probabilistic: write ops 1 and 2 of disk 2 tear —
    // mid-way through the first stripe commit's batch to that device. The
    // executor's retry rewrites the full payload, healing the torn rows.
    store::FaultPlan plan;
    plan.seed = seed;
    store::FaultRule torn;
    torn.kind = store::FaultKind::torn_write;
    torn.op = store::FaultOp::write;
    torn.disk = 2;
    torn.first_op = 1;
    torn.count = 2;
    torn.torn_fraction = 0.5;
    plan.rules = {torn};
    cell.fault_plan_json = plan.to_json();

    auto code = codes::make_code(cell.spec);
    if (!code.ok()) {
        cell.detail = code.error().message;
        return cell;
    }
    std::vector<store::FaultDevice*> devices;
    auto factory = [&](int index) -> Result<std::unique_ptr<store::BlockDevice>> {
        auto device = std::make_unique<store::FaultDevice>(
            std::make_unique<store::Disk>(elem_bytes), plan, static_cast<DiskId>(index));
        devices.push_back(device.get());
        return std::unique_ptr<store::BlockDevice>(std::move(device));
    };
    obs::MetricRegistry metrics("ecfrm_faultcamp");
    auto st = store::StripeStore::open(core::Scheme(code.value(), layout::LayoutKind::ecfrm),
                                       elem_bytes, factory);
    if (!st.ok()) {
        cell.detail = st.error().message;
        return cell;
    }
    store::RecoveryOptions recovery;
    recovery.max_retries = 4;
    st.value()->set_recovery(recovery);
    st.value()->attach_observability(&metrics);

    const auto payload = write_cell_payload(4 * st.value()->stripe_data_bytes(), elem_bytes);
    store::EcPipeline pipeline(*st.value(), nullptr);
    auto wrote = pipeline.append(ConstByteSpan(payload.data(), payload.size()));
    if (wrote.ok()) wrote = pipeline.flush();
    if (!wrote.ok()) {
        cell.detail = "write phase: " + wrote.error().message;
        return cell;
    }
    write_cell_verify(cell, *st.value(), payload);
    auto parity = st.value()->verify_parity();
    if (!parity.ok()) cell.detail = "parity audit: " + parity.error().message;

    cell.retries = metrics.counter("ecfrm_store_retries_total").value();
    for (const store::FaultDevice* device : devices) {
        cell.injected_faults += static_cast<std::int64_t>(device->events().size());
    }
    st.value()->attach_observability(nullptr);
    cell.pass = cell.read_errors == 0 && cell.mismatched_bytes == 0 && cell.retries >= 1 &&
                cell.injected_faults >= 1 && cell.detail.empty();
    if (!cell.pass && cell.detail.empty()) {
        cell.detail = "torn mid-stripe write was not healed by the retry layer";
    }
    return cell;
}

FaultCell run_parity_flush_failstop_cell(std::uint64_t seed, std::int64_t elem_bytes) {
    FaultCell cell;
    cell.spec = "rs:6,3";
    cell.layout = "ecfrm";
    cell.mix = "parity_flush_failstop";
    cell.seed = seed;

    auto code = codes::make_code(cell.spec);
    if (!code.ok()) {
        cell.detail = code.error().message;
        return cell;
    }
    const DiskId victim = 4;
    const int kStripes = 4;

    // Dry run on clean devices: count the data-phase write ops the victim
    // absorbs, so the scripted fail_stop fires on its FIRST parity-flush
    // write — the disk dies exactly between data commit and parity flush.
    std::int64_t data_ops = 0;
    {
        obs::MetricRegistry probe("ecfrm_faultcamp");
        store::StripeStore twin(core::Scheme(code.value(), layout::LayoutKind::ecfrm), elem_bytes);
        twin.attach_observability(&probe);
        const auto payload = write_cell_payload(kStripes * twin.stripe_data_bytes(), elem_bytes);
        const std::int64_t stripe_bytes = twin.stripe_data_bytes();
        for (int s = 0; s < kStripes; ++s) {
            auto committed = twin.commit_data_stripe(
                ConstByteSpan(payload.data() + s * stripe_bytes, stripe_bytes), stripe_bytes);
            if (!committed.ok()) {
                cell.detail = "probe phase: " + committed.error().message;
                return cell;
            }
        }
        data_ops = probe.counter("ecfrm_disk_write_ops_total",
                                 {{"disk", std::to_string(victim)}})
                       .value();
        twin.attach_observability(nullptr);
    }

    store::FaultPlan plan;
    plan.seed = seed;
    store::FaultRule dead;
    dead.kind = store::FaultKind::fail_stop;
    dead.op = store::FaultOp::write;
    dead.disk = victim;
    dead.first_op = data_ops;
    plan.rules = {dead};
    cell.fault_plan_json = plan.to_json();

    std::vector<store::FaultDevice*> devices;
    auto factory = [&](int index) -> Result<std::unique_ptr<store::BlockDevice>> {
        auto device = std::make_unique<store::FaultDevice>(
            std::make_unique<store::Disk>(elem_bytes), plan, static_cast<DiskId>(index));
        devices.push_back(device.get());
        return std::unique_ptr<store::BlockDevice>(std::move(device));
    };
    obs::MetricRegistry metrics("ecfrm_faultcamp");
    auto st = store::StripeStore::open(core::Scheme(code.value(), layout::LayoutKind::ecfrm),
                                       elem_bytes, factory);
    if (!st.ok()) {
        cell.detail = st.error().message;
        return cell;
    }
    st.value()->attach_observability(&metrics);

    const auto payload = write_cell_payload(kStripes * st.value()->stripe_data_bytes(), elem_bytes);
    const std::int64_t stripe_bytes = st.value()->stripe_data_bytes();
    std::vector<StripeId> stripes;
    for (int s = 0; s < kStripes; ++s) {
        auto committed = st.value()->commit_data_stripe(
            ConstByteSpan(payload.data() + s * stripe_bytes, stripe_bytes), stripe_bytes);
        if (!committed.ok()) {
            cell.detail = "data phase: " + committed.error().message;
            return cell;
        }
        stripes.push_back(committed.value());
    }
    // Parity flush: the victim trips on its first parity write; degraded
    // writes skip its placements and every other parity lands.
    for (int s = 0; s < kStripes; ++s) {
        auto encoded = st.value()->encode_stripe_parity(
            stripes[static_cast<std::size_t>(s)],
            ConstByteSpan(payload.data() + s * stripe_bytes, stripe_bytes));
        if (!encoded.ok()) {
            cell.detail = "parity flush: " + encoded.error().message;
            return cell;
        }
    }
    if (st.value()->failed_disks() != std::vector<DiskId>{victim}) {
        cell.detail = "fail_stop did not trip during the parity flush";
        return cell;
    }

    // Foreground reads decode around the dead disk, byte-exact.
    write_cell_verify(cell, *st.value(), payload);

    // The pipeline's repair scheduler restores full redundancy.
    store::EcPipeline pipeline(*st.value(), nullptr);
    auto requested = pipeline.request_repair(victim);
    if (requested.ok()) requested = pipeline.wait_repairs();
    if (!requested.ok()) {
        cell.detail = "repair phase: " + requested.error().message;
    } else {
        auto parity = st.value()->verify_parity();
        if (!parity.ok()) cell.detail = "post-repair parity audit: " + parity.error().message;
        write_cell_verify(cell, *st.value(), payload);
    }

    cell.degraded = metrics.counter("ecfrm_store_degraded_reads_total").value();
    cell.decodes = metrics.counter("ecfrm_store_decodes_total").value();
    for (const store::FaultDevice* device : devices) {
        cell.injected_faults += static_cast<std::int64_t>(device->events().size());
    }
    st.value()->attach_observability(nullptr);
    cell.pass = cell.read_errors == 0 && cell.mismatched_bytes == 0 && cell.degraded >= 1 &&
                cell.injected_faults >= 1 && cell.detail.empty();
    if (!cell.pass && cell.detail.empty()) {
        cell.detail = "expected degraded reads around the mid-flush failure, then clean repair";
    }
    return cell;
}

FaultCell run_manifest_replay_cell(std::uint64_t seed, std::int64_t elem_bytes) {
    FaultCell cell;
    cell.spec = "rs:6,3";
    cell.layout = "ecfrm";
    cell.mix = "manifest_replay";
    cell.seed = seed;

    auto code = codes::make_code(cell.spec);
    if (!code.ok()) {
        cell.detail = code.error().message;
        return cell;
    }
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / ("ecfrm_faultcamp_replay_" + std::to_string(::getpid())))
            .string();
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);
    auto factory = [&](int index) -> Result<std::unique_ptr<store::BlockDevice>> {
        return store::open_file_device(dir, index, elem_bytes);
    };

    store::Manifest manifest;
    manifest.code_spec = cell.spec;
    manifest.kind = layout::LayoutKind::ecfrm;
    manifest.element_bytes = elem_bytes;

    std::vector<std::uint8_t> durable;
    {
        auto st = store::StripeStore::open(core::Scheme(code.value(), layout::LayoutKind::ecfrm),
                                           elem_bytes, factory);
        if (!st.ok()) {
            cell.detail = st.error().message;
            fs::remove_all(dir, ec);
            return cell;
        }
        store::EcPipeline pipeline(*st.value(), nullptr);
        durable = write_cell_payload(3 * st.value()->stripe_data_bytes(), elem_bytes);
        auto wrote = pipeline.append(ConstByteSpan(durable.data(), durable.size()));
        if (wrote.ok()) wrote = pipeline.flush();
        if (!wrote.ok()) {
            cell.detail = "durable phase: " + wrote.error().message;
            fs::remove_all(dir, ec);
            return cell;
        }
        // The manifest save is the durability point: everything it covers
        // has data AND parity on the devices (flush drained the encodes).
        manifest.logical_bytes = st.value()->committed_bytes();
        manifest.stripes = st.value()->stored_data_elements() /
                           st.value()->scheme().layout().data_per_stripe();
        manifest.extents = st.value()->extents();
        auto saved = manifest.save(dir);
        if (!saved.ok()) {
            cell.detail = "manifest save: " + saved.error().message;
            fs::remove_all(dir, ec);
            return cell;
        }
        // Crash mid-ingest: two more stripes land on the devices and a
        // tail is buffered, none of it recorded in the manifest. The
        // store object is simply dropped — no save, no flush.
        const auto torn =
            write_cell_payload(2 * st.value()->stripe_data_bytes() + elem_bytes / 2, elem_bytes);
        (void)pipeline.append(ConstByteSpan(torn.data(), torn.size()));
        (void)pipeline.quiesce();
    }

    // Replay: reopen from the manifest alone. The covered prefix must be
    // byte-exact and parity-consistent; the torn ingest is invisible.
    auto loaded = store::Manifest::load(dir);
    if (!loaded.ok()) {
        cell.detail = "manifest load: " + loaded.error().message;
        fs::remove_all(dir, ec);
        return cell;
    }
    auto reopened = store::StripeStore::open(core::Scheme(code.value(), loaded->kind),
                                             loaded->element_bytes, factory);
    if (!reopened.ok()) {
        cell.detail = reopened.error().message;
        fs::remove_all(dir, ec);
        return cell;
    }
    auto restored = reopened.value()->restore(loaded->extents, loaded->stripes);
    if (!restored.ok()) {
        cell.detail = "restore: " + restored.error().message;
        fs::remove_all(dir, ec);
        return cell;
    }
    if (reopened.value()->committed_bytes() != static_cast<std::int64_t>(durable.size())) {
        cell.detail = "replay exposed bytes beyond the manifest's durability point";
        fs::remove_all(dir, ec);
        return cell;
    }
    write_cell_verify(cell, *reopened.value(), durable);
    auto parity = reopened.value()->verify_parity();
    if (!parity.ok()) cell.detail = "replayed parity audit: " + parity.error().message;
    fs::remove_all(dir, ec);

    cell.pass = cell.read_errors == 0 && cell.mismatched_bytes == 0 && cell.detail.empty();
    if (!cell.pass && cell.detail.empty()) {
        cell.detail = "manifest replay did not reproduce the durable prefix";
    }
    return cell;
}

// ---------------------------------------------------------------------------
// The straggler lab: one persistently slow device, three hedge policies.
// A static hedge deadline is only useful if someone tuned it to the
// straggler's stall; the lab runs the same workload with no hedging, with
// a mistuned static deadline (longer than the stall, so it never fires),
// and with auto_hedge deriving its deadline from the fleet's live windowed
// p99 — and requires the adaptive run to win on p99 with the straggler
// flagged on the heat scoreboard.

struct StragglerRun {
    std::string policy;
    double p99_us = 0.0;
    std::int64_t hedged = 0;
    int read_errors = 0;
    std::int64_t mismatched_bytes = 0;
    bool straggler_flagged = false;  // disk 0 flagged in the final snapshot
};

struct StragglerLab {
    double stall_ms = 0.0;
    double static_hedge_ms = 0.0;
    std::vector<StragglerRun> runs;
    bool pass = false;
    std::string detail;
};

StragglerRun run_straggler_config(const char* policy, double hedge_ms, bool auto_hedge,
                                  double stall_ms, std::uint64_t seed, std::int64_t elem_bytes) {
    StragglerRun run;
    run.policy = policy;

    store::FaultPlan plan;
    plan.seed = seed;
    store::FaultRule rule;
    rule.kind = store::FaultKind::latency;
    rule.disk = 0;
    rule.op = store::FaultOp::read;
    rule.count = kAllOps;
    rule.latency_ms = stall_ms;
    plan.rules.push_back(rule);

    auto code = codes::make_code("rs:6,3");
    if (!code.ok()) {
        run.read_errors = 1;
        return run;
    }
    // Enough threads that the straggler's sleeping fetches cannot starve
    // the fast disks' queues while hedges overlap in-flight stalls.
    ThreadPool pool(8);
    auto st = store::StripeStore::open(core::Scheme(code.value(), layout::LayoutKind::ecfrm),
                                       elem_bytes, store::faulty_memory_factory(elem_bytes, plan),
                                       &pool);
    if (!st.ok()) {
        run.read_errors = 1;
        return run;
    }
    store::RecoveryOptions recovery;
    recovery.hedge_ms = hedge_ms;
    recovery.auto_hedge = auto_hedge;
    recovery.auto_hedge_min_ms = 0.5;
    st.value()->set_recovery(recovery);

    obs::DiskHeatModel heat(st.value()->scheme().disks());
    obs::MetricRegistry metrics("ecfrm_straggler");
    st.value()->attach_observability(&metrics, nullptr, nullptr, &heat);

    const std::int64_t data_elems = 4 * st.value()->scheme().layout().data_per_stripe();
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(data_elems * elem_bytes));
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>((i * 167 + 5) & 0xff);
    }
    auto written = st.value()->append(ConstByteSpan(payload.data(), payload.size()));
    if (written.ok()) written = st.value()->flush();
    if (!written.ok()) {
        run.read_errors = 1;
        return run;
    }

    // Full-payload reads touch every disk, so each request feeds one
    // completion per device. The warmup gives the heat window its
    // min_ops samples per disk (the adaptive deadline refuses to fire
    // before that); warmup reads are not timed.
    const int warmup = static_cast<int>(heat.options().min_ops) + 2;
    const int measured = 24;
    std::vector<std::uint8_t> got(payload.size());
    std::vector<double> lat_us;
    lat_us.reserve(static_cast<std::size_t>(measured));
    for (int r = 0; r < warmup + measured; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        auto status = st.value()->read_elements(0, data_elems, ByteSpan(got.data(), got.size()));
        const auto t1 = std::chrono::steady_clock::now();
        if (!status.ok()) {
            ++run.read_errors;
            continue;
        }
        for (std::size_t i = 0; i < got.size(); ++i) {
            if (got[i] != payload[i]) ++run.mismatched_bytes;
        }
        if (r >= warmup) {
            lat_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
            // Pace the closed loop: a hedged request returns while the
            // straggler's abandoned queue is still burning a pool thread
            // for the rest of its stall. The gap must roughly cover one
            // orphaned stall, or back-to-back issue piles those sleeps
            // onto the pool and turns thread starvation into the measured
            // latency.
            std::this_thread::sleep_for(std::chrono::milliseconds(36));
        }
    }
    run.p99_us = percentile(std::move(lat_us), 0.99);
    run.hedged = metrics.counter("ecfrm_store_hedged_reads_total").value();
    const auto cluster = heat.snapshot(obs::DiskHeatModel::now_seconds());
    for (int d : cluster.stragglers) {
        if (d == 0) run.straggler_flagged = true;
    }
    st.value()->attach_observability(nullptr);
    return run;
}

StragglerLab run_straggler_lab(std::uint64_t seed, std::int64_t elem_bytes) {
    StragglerLab lab;
    // The latency fault fires per element op, so a full-payload read pays
    // roughly (rows on disk 0) * stall_ms before the slow queue drains —
    // tens of milliseconds end to end. The static deadline sits above
    // that whole accumulated stall: mistuned for this fleet, it never
    // fires, while the adaptive deadline tracks the healthy disks' live
    // p99 and triggers within a few milliseconds.
    lab.stall_ms = 8.0;
    lab.static_hedge_ms = 100.0;
    lab.runs.push_back(
        run_straggler_config("none", 0.0, false, lab.stall_ms, seed, elem_bytes));
    lab.runs.push_back(run_straggler_config("static_mistuned", lab.static_hedge_ms, false,
                                            lab.stall_ms, seed ^ 0x9e37, elem_bytes));
    lab.runs.push_back(
        run_straggler_config("auto", 0.0, true, lab.stall_ms, seed ^ 0x79b9, elem_bytes));

    const StragglerRun& none = lab.runs[0];
    const StragglerRun& fixed = lab.runs[1];
    const StragglerRun& adaptive = lab.runs[2];
    for (const StragglerRun& run : lab.runs) {
        if (run.read_errors != 0 || run.mismatched_bytes != 0) {
            lab.detail = "policy " + run.policy + ": read errors or byte mismatches";
            return lab;
        }
    }
    // The adaptive run must beat BOTH baselines decisively (well outside
    // the noise of the accumulated stall), must actually have hedged, and
    // must have the slow device flagged on its scoreboard.
    const double bar = 0.8 * std::min(none.p99_us, fixed.p99_us);
    if (adaptive.p99_us >= bar) {
        lab.detail = "auto_hedge p99 did not beat the baselines";
    } else if (adaptive.hedged < 1) {
        lab.detail = "auto_hedge never triggered a hedge";
    } else if (!adaptive.straggler_flagged) {
        lab.detail = "slow disk 0 was not flagged as a straggler";
    } else {
        lab.pass = true;
    }
    return lab;
}

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\') out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

std::string straggler_lab_json(const StragglerLab& lab) {
    std::string out = "{\"scheme\":\"rs:6,3\",\"layout\":\"ecfrm\"";
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"stall_ms\":%.1f,\"static_hedge_ms\":%.1f", lab.stall_ms,
                  lab.static_hedge_ms);
    out += buf;
    out += ",\"runs\":[";
    for (std::size_t i = 0; i < lab.runs.size(); ++i) {
        const StragglerRun& run = lab.runs[i];
        if (i > 0) out += ",";
        out += "{\"policy\":\"" + run.policy + "\"";
        std::snprintf(buf, sizeof(buf), ",\"p99_us\":%.1f", run.p99_us);
        out += buf;
        out += ",\"hedged\":" + std::to_string(run.hedged);
        out += ",\"read_errors\":" + std::to_string(run.read_errors);
        out += ",\"mismatched_bytes\":" + std::to_string(run.mismatched_bytes);
        out += std::string(",\"straggler_flagged\":") +
               (run.straggler_flagged ? "true" : "false") + "}";
    }
    out += "]";
    out += std::string(",\"pass\":") + (lab.pass ? "true" : "false");
    out += ",\"detail\":\"" + json_escape(lab.detail) + "\"}";
    return out;
}

std::string faultcamp_json(std::uint64_t seed, std::int64_t elem_bytes,
                           const std::vector<FaultCell>& cells, const StragglerLab& lab,
                           bool all_pass) {
    std::string out = "{\"schema\":\"ecfrm.faultcamp.v1\",";
    out += "\"seed\":\"" + std::to_string(seed) + "\",";
    out += "\"element_bytes\":" + std::to_string(elem_bytes) + ",";
    out += std::string("\"pass\":") + (all_pass ? "true" : "false") + ",";
    out += "\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const FaultCell& cell = cells[i];
        if (i > 0) out += ",";
        out += "{\"scheme\":\"" + cell.spec + "\"";
        out += ",\"layout\":\"" + cell.layout + "\"";
        out += ",\"mix\":\"" + cell.mix + "\"";
        out += ",\"cell_seed\":\"" + std::to_string(cell.seed) + "\"";
        out += ",\"reads\":" + std::to_string(cell.reads);
        out += ",\"read_errors\":" + std::to_string(cell.read_errors);
        out += ",\"mismatched_bytes\":" + std::to_string(cell.mismatched_bytes);
        out += ",\"injected_faults\":" + std::to_string(cell.injected_faults);
        out += ",\"errors_by_code\":{";
        bool first = true;
        for (const auto& [code, count] : cell.errors_by_code) {
            if (!first) out += ",";
            first = false;
            out += "\"" + std::string(code) + "\":" + std::to_string(count);
        }
        out += "},\"counters\":{";
        out += "\"retries\":" + std::to_string(cell.retries);
        out += ",\"timeouts\":" + std::to_string(cell.timeouts);
        out += ",\"replans\":" + std::to_string(cell.replans);
        out += ",\"hedged_reads\":" + std::to_string(cell.hedged);
        out += ",\"degraded_reads\":" + std::to_string(cell.degraded);
        out += ",\"decodes\":" + std::to_string(cell.decodes);
        out += "},\"phase_us\":{";
        first = true;
        for (const auto& [phase, us] : cell.phase_us) {
            if (!first) out += ",";
            first = false;
            char buf[96];
            std::snprintf(buf, sizeof(buf), "\"%s\":%.1f", phase.c_str(), us);
            out += buf;
        }
        out += "}";
        out += ",\"captured\":" + std::to_string(cell.captured);
        out += std::string(",\"pass\":") + (cell.pass ? "true" : "false");
        out += ",\"detail\":\"" + json_escape(cell.detail) + "\"";
        out += ",\"fault_plan\":" + cell.fault_plan_json;
        out += "}";
    }
    out += "],\"straggler_lab\":" + straggler_lab_json(lab) + "}\n";
    return out;
}

int cmd_faultcamp(const std::vector<std::string>& args) {
    std::uint64_t seed = 20260805;
    std::string out_path;
    std::int64_t elem_bytes = 1024;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--seed" && i + 1 < args.size()) {
            seed = std::strtoull(args[++i].c_str(), nullptr, 10);
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (args[i] == "--elem" && i + 1 < args.size()) {
            elem_bytes = std::atoll(args[++i].c_str());
        } else {
            return usage();
        }
    }
    if (elem_bytes <= 0 || elem_bytes % 8 != 0) {
        std::fprintf(stderr, "error: --elem must be a positive multiple of 8\n");
        return 1;
    }

    const std::vector<std::string> specs{"rs:6,3", "lrc:6,2,2", "hhxor:6,4", "htec:9,6,3"};
    const std::vector<layout::LayoutKind> kinds{
        layout::LayoutKind::standard, layout::LayoutKind::rotated, layout::LayoutKind::ecfrm};
    const std::vector<std::string> mixes{"transient",        "torn_write", "latency_timeout",
                                         "bitflip_detected", "fail_stop",  "straggler_hedge",
                                         "beyond_tolerance"};
    std::printf("faultcamp: seed=%llu, %zu cells (replay any cell with --seed %llu)\n",
                static_cast<unsigned long long>(seed), specs.size() * kinds.size() * mixes.size(),
                static_cast<unsigned long long>(seed));
    std::printf("%-10s %-9s %-17s %6s %5s %5s %5s %5s %5s %6s  %s\n", "scheme", "layout", "mix",
                "faults", "retry", "tmout", "replan", "hedge", "degr", "errors", "verdict");

    std::vector<FaultCell> cells;
    bool all_pass = true;
    std::uint64_t index = 0;
    for (const auto& spec : specs) {
        for (const auto kind : kinds) {
            for (const auto& mix : mixes) {
                ++index;
                const std::uint64_t cell_seed = seed ^ (0x9e3779b97f4a7c15ULL * index);
                cells.push_back(run_fault_cell(spec, kind, mix, cell_seed, elem_bytes));
                const FaultCell& cell = cells.back();
                all_pass = all_pass && cell.pass;
                std::printf("%-10s %-9s %-17s %6lld %5lld %5lld %6lld %5lld %5lld %6d  %s%s%s\n",
                            cell.spec.c_str(), cell.layout.c_str(), cell.mix.c_str(),
                            static_cast<long long>(cell.injected_faults),
                            static_cast<long long>(cell.retries),
                            static_cast<long long>(cell.timeouts),
                            static_cast<long long>(cell.replans),
                            static_cast<long long>(cell.hedged),
                            static_cast<long long>(cell.degraded), cell.read_errors,
                            cell.pass ? "ok" : "FAIL", cell.detail.empty() ? "" : ": ",
                            cell.detail.c_str());
            }
        }
    }

    // Write-path cells after the read matrix: one deterministic scenario
    // each, aimed at the commit/flush/replay machinery instead of reads.
    using WriteCellFn = FaultCell (*)(std::uint64_t, std::int64_t);
    const WriteCellFn write_cells[] = {run_torn_midstripe_cell, run_parity_flush_failstop_cell,
                                       run_manifest_replay_cell};
    for (WriteCellFn fn : write_cells) {
        ++index;
        cells.push_back(fn(seed ^ (0x9e3779b97f4a7c15ULL * index), elem_bytes));
        const FaultCell& cell = cells.back();
        all_pass = all_pass && cell.pass;
        std::printf("%-10s %-9s %-17s %6lld %5lld %5lld %6lld %5lld %5lld %6d  %s%s%s\n",
                    cell.spec.c_str(), cell.layout.c_str(), cell.mix.c_str(),
                    static_cast<long long>(cell.injected_faults),
                    static_cast<long long>(cell.retries), static_cast<long long>(cell.timeouts),
                    static_cast<long long>(cell.replans), static_cast<long long>(cell.hedged),
                    static_cast<long long>(cell.degraded), cell.read_errors,
                    cell.pass ? "ok" : "FAIL", cell.detail.empty() ? "" : ": ",
                    cell.detail.c_str());
    }

    // The straggler lab runs after the matrix: same artifact, its own
    // pass/fail line per hedge policy.
    const StragglerLab lab = run_straggler_lab(seed, elem_bytes);
    std::printf("straggler lab: rs:6,3/ecfrm, disk 0 stalls %.0fms per element read\n",
                lab.stall_ms);
    for (const StragglerRun& run : lab.runs) {
        std::printf("  %-16s p99=%9.1fus hedged=%-4lld straggler_flagged=%s\n",
                    run.policy.c_str(), run.p99_us, static_cast<long long>(run.hedged),
                    run.straggler_flagged ? "yes" : "no");
    }
    std::printf("  verdict: %s%s%s\n", lab.pass ? "ok" : "FAIL", lab.detail.empty() ? "" : ": ",
                lab.detail.c_str());
    all_pass = all_pass && lab.pass;

    const std::string artifact = faultcamp_json(seed, elem_bytes, cells, lab, all_pass);
    if (!out_path.empty() && !ObsOutputs::write_file(out_path, artifact)) return 1;
    std::printf("faultcamp: %s (%zu cells + straggler lab%s%s)\n", all_pass ? "PASS" : "FAIL",
                cells.size(), out_path.empty() ? "" : ", artifact: ", out_path.c_str());
    return all_pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// simd: report the GF kernel dispatch state — CPU features, active tier
// (after any ECFRM_SIMD override), and a short per-tier microbench — as
// ecfrm.simd.v1 JSON on stdout.

/// Median-of-3 throughput of `fn`, which moves `bytes` per call. Warm-up
/// plus ~8ms per repetition keeps the whole command under a second while
/// staying well above timer noise.
double simd_bench_gbps(const std::function<void()>& fn, double bytes) {
    using clock = std::chrono::steady_clock;
    fn();  // warm up caches, fault in tables, settle turbo
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        int iters = 0;
        const auto start = clock::now();
        auto now = start;
        do {
            fn();
            ++iters;
            now = clock::now();
        } while (now - start < std::chrono::milliseconds(8));
        const double secs = std::chrono::duration<double>(now - start).count();
        best = std::max(best, bytes * iters / secs / 1e9);
    }
    return best;
}

int cmd_simd(const std::vector<std::string>& args) {
    std::string out_path;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            return usage();
        }
    }

    // tier_supported() already folds in the CPUID probes, so it doubles as
    // the feature report (and is honest on non-x86: everything false).
    const bool has_ssse3 = gf::tier_supported(gf::SimdTier::ssse3);
    const bool has_avx2 = gf::tier_supported(gf::SimdTier::avx2);
    const bool has_gfni = gf::tier_supported(gf::SimdTier::gfni);
    const char* env = std::getenv("ECFRM_SIMD");

    constexpr std::size_t kN = 1 << 20;  // 1 MiB regions, matching bench_gf
    constexpr std::size_t kK = 6, kM = 3;
    std::vector<std::uint8_t> src(kN, 0xa5), dst(kN, 0x5a);
    std::vector<std::vector<std::uint8_t>> srcs(kK, src), dsts(kM, dst);
    std::vector<const std::uint8_t*> sptr(kK);
    std::vector<std::uint8_t*> dptr(kM);
    for (std::size_t j = 0; j < kK; ++j) sptr[j] = srcs[j].data();
    for (std::size_t p = 0; p < kM; ++p) dptr[p] = dsts[p].data();
    std::uint8_t coeffs[kM * kK];
    for (std::size_t i = 0; i < kM * kK; ++i) coeffs[i] = static_cast<std::uint8_t>(2 + i);

    std::string json = "{\"schema\":\"ecfrm.simd.v1\",";
    json += "\"features\":{";
    json += std::string("\"ssse3\":") + (has_ssse3 ? "true" : "false");
    json += std::string(",\"avx2\":") + (has_avx2 ? "true" : "false");
    json += std::string(",\"gfni\":") + (has_gfni ? "true" : "false");
    json += "},";
    json += std::string("\"env_override\":") +
            (env != nullptr ? "\"" + json_escape(env) + "\"" : "null") + ",";
    json += std::string("\"active_tier\":\"") + gf::to_string(gf::active_tier()) + "\",";
    json += "\"tiers\":[";

    std::printf("%-8s %-10s %14s %14s %14s\n", "tier", "supported", "addmul GB/s",
                "encode GB/s", "addmul16 GB/s");
    for (int t = 0; t < gf::kSimdTierCount; ++t) {
        const auto tier = static_cast<gf::SimdTier>(t);
        const gf::KernelTable* kt = gf::kernels_for(tier);
        if (t > 0) json += ",";
        json += std::string("{\"tier\":\"") + gf::to_string(tier) + "\"";
        json += std::string(",\"supported\":") + (kt != nullptr ? "true" : "false");
        if (kt == nullptr) {
            json += "}";
            std::printf("%-8s %-10s %14s %14s %14s\n", gf::to_string(tier), "no", "-", "-", "-");
            continue;
        }
        const double addmul = simd_bench_gbps(
            [&] { kt->addmul_region(dst.data(), src.data(), 0x57, kN); }, kN);
        // Fused encode moves m*k source-bytes of GF work per call.
        const double encode = simd_bench_gbps(
            [&] { kt->encode_blocks(dptr.data(), kM, sptr.data(), kK, coeffs, kN); },
            static_cast<double>(kM) * kK * kN);
        const double addmul16 = simd_bench_gbps(
            [&] { kt->addmul16_region(dst.data(), src.data(), 0x1234, kN); }, kN);
        char buf[160];
        std::snprintf(buf, sizeof(buf), ",\"addmul_gbps\":%.2f,\"encode_gbps\":%.2f,\"addmul16_gbps\":%.2f}",
                      addmul, encode, addmul16);
        json += buf;
        std::printf("%-8s %-10s %14.2f %14.2f %14.2f\n", gf::to_string(tier), "yes", addmul,
                    encode, addmul16);
    }
    json += "]}\n";

    if (!out_path.empty()) {
        if (!ObsOutputs::write_file(out_path, json)) return 1;
    } else {
        std::fputs(json.c_str(), stdout);
    }
    return 0;
}

/// Deterministic payload byte for logical offset `i`, so any reader thread
/// can verify any range byte-exactly without sharing the written buffer.
std::uint8_t serve_bench_byte(std::int64_t i) {
    return static_cast<std::uint8_t>((i * 131) ^ (i >> 9) ^ 0x3d);
}

/// Multi-reader throughput probe: an in-memory store filled with a known
/// pattern, hammered by N threads issuing verified random-range reads
/// (optionally degraded). The store runs with no internal pool — the reader
/// threads are the concurrency, the shape a request-serving node has.
int cmd_serve_bench(const std::vector<std::string>& args) {
    if (args.size() < 4) return usage();
    const std::string& spec = args[2];
    const std::string& layout_name = args[3];
    int threads = 8;
    int requests = 64;
    long long element_bytes = 512;
    long long read_elems = 8;
    long long stripes = 6;
    bool degraded = false;
    unsigned long long seed = 1;
    std::string out_path;
    for (std::size_t i = 4; i < args.size(); ++i) {
        if (args[i] == "--threads" && i + 1 < args.size()) {
            threads = std::atoi(args[++i].c_str());
        } else if (args[i] == "--requests" && i + 1 < args.size()) {
            requests = std::atoi(args[++i].c_str());
        } else if (args[i] == "--elem" && i + 1 < args.size()) {
            element_bytes = std::atoll(args[++i].c_str());
        } else if (args[i] == "--read-elems" && i + 1 < args.size()) {
            read_elems = std::atoll(args[++i].c_str());
        } else if (args[i] == "--stripes" && i + 1 < args.size()) {
            stripes = std::atoll(args[++i].c_str());
        } else if (args[i] == "--degraded") {
            degraded = true;
        } else if (args[i] == "--seed" && i + 1 < args.size()) {
            seed = std::strtoull(args[++i].c_str(), nullptr, 10);
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            return usage();
        }
    }
    if (threads <= 0 || requests <= 0 || read_elems <= 0 || stripes <= 0 ||
        element_bytes <= 0 || element_bytes % 8 != 0) {
        std::fprintf(stderr,
                     "error: serve-bench parameters must be positive"
                     " (element_bytes a multiple of 8)\n");
        return 1;
    }

    auto code = codes::make_code(spec);
    if (!code.ok()) return fail_with(code.error());
    auto kind = store::parse_layout_kind(layout_name);
    if (!kind.ok()) return fail_with(kind.error());
    core::Scheme scheme(code.value(), kind.value());

    store::StripeStore st(std::move(scheme), element_bytes, nullptr);
    const std::int64_t total_bytes =
        stripes * st.scheme().layout().data_per_stripe() * element_bytes;
    {
        std::vector<std::uint8_t> chunk(1 << 20);
        std::int64_t written = 0;
        while (written < total_bytes) {
            const std::int64_t n =
                std::min<std::int64_t>(static_cast<std::int64_t>(chunk.size()), total_bytes - written);
            for (std::int64_t i = 0; i < n; ++i) {
                chunk[static_cast<std::size_t>(i)] = serve_bench_byte(written + i);
            }
            auto status = st.append(ConstByteSpan(chunk.data(), static_cast<std::size_t>(n)));
            if (!status.ok()) return fail_with(status.error());
            written += n;
        }
        auto status = st.flush();
        if (!status.ok()) return fail_with(status.error());
    }
    if (degraded) {
        auto status = st.fail_disk(0);
        if (!status.ok()) return fail_with(status.error());
    }
    st.attach_observability(g_obs.metrics.get(), g_obs.tracer.get(), g_obs.forensics.get());

    const std::int64_t committed = st.committed_bytes();
    const std::int64_t max_len = std::min<std::int64_t>(read_elems * element_bytes, committed);

    std::vector<std::vector<double>> latencies(static_cast<std::size_t>(threads));
    std::atomic<std::int64_t> bytes_read{0};
    std::atomic<std::int64_t> requests_ok{0};
    std::atomic<int> io_failures{0};
    std::atomic<bool> mismatch{false};
    auto worker = [&](int tid) {
        // Per-thread stream: seed mixed with the thread id keeps runs
        // reproducible for a fixed --seed and --threads.
        Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(tid + 1)));
        auto& samples = latencies[static_cast<std::size_t>(tid)];
        samples.reserve(static_cast<std::size_t>(requests));
        for (int r = 0; r < requests; ++r) {
            const std::int64_t length =
                1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_len)));
            const std::int64_t offset = static_cast<std::int64_t>(
                rng.next_below(static_cast<std::uint64_t>(committed - length + 1)));
            const auto t0 = std::chrono::steady_clock::now();
            auto read = st.read_bytes(offset, length);
            const auto t1 = std::chrono::steady_clock::now();
            if (!read.ok()) {
                io_failures.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            samples.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
            bytes_read.fetch_add(length, std::memory_order_relaxed);
            requests_ok.fetch_add(1, std::memory_order_relaxed);
            for (std::int64_t i = 0; i < length; ++i) {
                if (read.value()[static_cast<std::size_t>(i)] != serve_bench_byte(offset + i)) {
                    mismatch.store(true, std::memory_order_relaxed);
                    break;
                }
            }
        }
    };

    const auto wall0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

    std::vector<double> all;
    for (const auto& samples : latencies) all.insert(all.end(), samples.begin(), samples.end());
    const double p50 = percentile(all, 0.50);
    const double p99 = percentile(std::move(all), 0.99);
    const double throughput =
        wall_seconds > 0.0 ? static_cast<double>(bytes_read.load()) / 1e6 / wall_seconds : 0.0;

    std::printf("serve-bench %s %s: %d threads x %d requests%s\n", st.scheme().name().c_str(),
                layout::to_string(st.scheme().kind()), threads, requests,
                degraded ? " (degraded: disk 0 down)" : "");
    std::printf("%-16s %12s %12s %12s %12s\n", "requests_ok", "MB/s", "p50 us", "p99 us",
                "verify");
    std::printf("%-16lld %12.2f %12.1f %12.1f %12s\n",
                static_cast<long long>(requests_ok.load()), throughput, p50, p99,
                mismatch.load() ? "FAIL" : "ok");

    char num[512];
    std::string json = "{\"schema\":\"ecfrm.servebench.v1\"";
    json += ",\"scheme\":\"" + json_escape(st.scheme().name()) + "\"";
    json += ",\"layout\":\"" + std::string(layout::to_string(st.scheme().kind())) + "\"";
    std::snprintf(num, sizeof(num),
                  ",\"threads\":%d,\"requests_per_thread\":%d,\"element_bytes\":%lld"
                  ",\"stripes\":%lld,\"degraded\":%s,\"seed\":%llu",
                  threads, requests, element_bytes, stripes, degraded ? "true" : "false", seed);
    json += num;
    std::snprintf(num, sizeof(num),
                  ",\"requests_ok\":%lld,\"io_failures\":%d,\"bytes_read\":%lld"
                  ",\"wall_seconds\":%.6f,\"throughput_mb_s\":%.3f,\"p50_us\":%.1f"
                  ",\"p99_us\":%.1f,\"verified\":%s}\n",
                  static_cast<long long>(requests_ok.load()), io_failures.load(),
                  static_cast<long long>(bytes_read.load()), wall_seconds, throughput, p50, p99,
                  mismatch.load() ? "false" : "true");
    json += num;

    if (!out_path.empty()) {
        if (!ObsOutputs::write_file(out_path, json)) return 1;
    } else {
        std::fputs(json.c_str(), stdout);
    }
    if (mismatch.load()) {
        std::fprintf(stderr, "error: read verification mismatch against the written pattern\n");
        return 1;
    }
    if (io_failures.load() != 0) {
        std::fprintf(stderr, "error: %d reads failed\n", io_failures.load());
        return 1;
    }
    return 0;
}

// ---------------------------------------------------------------------------
// pipeline: run the online write/repair pipeline end to end on an in-memory
// store and emit its ecfrm.pipeline.v1 state — queue depth, repair policy,
// token bucket, encode backlog. With --repair-disk the named disk is failed
// after ingest and repaired by the scheduler before the state is emitted,
// so the repair counters carry real evidence.

int cmd_pipeline(const std::vector<std::string>& args) {
    std::string spec = "rs:4,2";
    std::string layout_name = "ecfrm";
    std::int64_t elem_bytes = 1024;
    std::int64_t stripes = 8;
    std::string out_path;
    int repair_disk = -1;
    store::PipelineOptions opts;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--spec" && i + 1 < args.size()) {
            spec = args[++i];
        } else if (args[i] == "--layout" && i + 1 < args.size()) {
            layout_name = args[++i];
        } else if (args[i] == "--elem" && i + 1 < args.size()) {
            elem_bytes = std::atoll(args[++i].c_str());
        } else if (args[i] == "--stripes" && i + 1 < args.size()) {
            stripes = std::atoll(args[++i].c_str());
        } else if (args[i] == "--policy" && i + 1 < args.size()) {
            auto policy = store::parse_repair_policy(args[++i]);
            if (!policy.ok()) return fail_with(policy.error());
            opts.repair_policy = policy.value();
        } else if (args[i] == "--max-pending" && i + 1 < args.size()) {
            opts.max_pending_stripes = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
        } else if (args[i] == "--rate" && i + 1 < args.size()) {
            opts.repair_rows_per_second = std::atof(args[++i].c_str());
        } else if (args[i] == "--burst" && i + 1 < args.size()) {
            opts.repair_burst_rows = std::atof(args[++i].c_str());
        } else if (args[i] == "--chunk" && i + 1 < args.size()) {
            opts.repair_chunk_rows = std::atoll(args[++i].c_str());
        } else if (args[i] == "--repair-disk" && i + 1 < args.size()) {
            repair_disk = std::atoi(args[++i].c_str());
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            return usage();
        }
    }
    if (elem_bytes <= 0 || elem_bytes % 8 != 0) {
        std::fprintf(stderr, "error: --elem must be a positive multiple of 8\n");
        return 1;
    }
    if (stripes <= 0) {
        std::fprintf(stderr, "error: --stripes must be positive\n");
        return 1;
    }
    auto code = codes::make_code(spec);
    if (!code.ok()) return fail_with(code.error());
    auto kind = store::parse_layout_kind(layout_name);
    if (!kind.ok()) return fail_with(kind.error());

    ThreadPool pool(4);
    store::StripeStore st(core::Scheme(code.value(), kind.value()), elem_bytes, &pool);
    if (repair_disk >= 0 && repair_disk >= st.scheme().disks()) {
        std::fprintf(stderr, "error: --repair-disk %d out of range (%d disks)\n", repair_disk,
                     st.scheme().disks());
        return 1;
    }
    st.attach_observability(g_obs.metrics.get(), g_obs.tracer.get(), g_obs.forensics.get());
    store::EcPipeline pipeline(st, &pool, opts);
    pipeline.attach_observability(g_obs.metrics.get(), g_obs.forensics.get());

    // Deterministic ingest through the online-encode stage.
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(stripes * st.stripe_data_bytes()));
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>((i * 131 + 7) & 0xff);
    }
    auto wrote = pipeline.append(ConstByteSpan(payload.data(), payload.size()));
    if (wrote.ok()) wrote = pipeline.flush();
    if (!wrote.ok()) return fail_with(wrote.error());

    if (repair_disk >= 0) {
        auto failed = st.fail_disk(repair_disk);
        if (!failed.ok()) return fail_with(failed.error());
        auto requested = pipeline.request_repair(repair_disk);
        if (requested.ok()) requested = pipeline.wait_repairs();
        if (!requested.ok()) return fail_with(requested.error());
    }

    // Byte-verify the whole stream before reporting anything.
    auto got = st.read_bytes(0, static_cast<std::int64_t>(payload.size()));
    if (!got.ok()) return fail_with(got.error());
    if (got.value() != payload) {
        std::fprintf(stderr, "error: read-back mismatch after pipeline ingest\n");
        return 1;
    }

    const auto s = pipeline.snapshot();
    std::printf("pipeline %s %s: %lld stripes ingested, policy=%s, %lld async + %lld sync encodes",
                st.scheme().name().c_str(), layout::to_string(st.scheme().kind()),
                static_cast<long long>(stripes), store::repair_policy_name(s.policy),
                static_cast<long long>(s.encoded_stripes), static_cast<long long>(s.sync_encodes));
    if (repair_disk >= 0) {
        std::printf(", disk %d repaired (%lld rows)", repair_disk,
                    static_cast<long long>(s.repair_rows_done));
    }
    std::printf("\n");
    const std::string json = pipeline.to_json() + "\n";
    if (!out_path.empty()) {
        if (!ObsOutputs::write_file(out_path, json)) return 1;
    } else {
        std::fputs(json.c_str(), stdout);
    }
    return 0;
}

int dispatch(const std::vector<std::string>& args) {
    const int argc = static_cast<int>(args.size());
    if (argc >= 2 && args[1] == "faultcamp") return cmd_faultcamp(args);
    if (argc >= 2 && args[1] == "pipeline") return cmd_pipeline(args);
    if (argc >= 2 && args[1] == "simd") return cmd_simd(args);
    if (argc >= 2 && args[1] == "serve-bench") return cmd_serve_bench(args);
    if (argc < 3) return usage();
    const std::string& cmd = args[1];
    if (cmd == "explain") return cmd_explain(args);
    if (cmd == "slowlog") return cmd_slowlog(args);
    if (cmd == "heat") return cmd_heat(args);
    const std::string& dir = args[2];
    if (cmd == "create" && argc == 6) return cmd_create(dir, args[3], args[4], args[5]);
    if (cmd == "put" && argc == 4) return cmd_put(dir, args[3], "");
    if (cmd == "put" && argc == 5) return cmd_put(dir, args[3], args[4]);
    if (cmd == "get-object" && argc == 5) return cmd_get_object(dir, args[3], args[4]);
    if (cmd == "list" && argc == 3) return cmd_list(dir);
    if (cmd == "get" && argc == 6) return cmd_get(dir, args[3], args[4], args[5]);
    if (cmd == "cat" && argc == 4) return cmd_cat(dir, args[3]);
    if (cmd == "overwrite" && argc == 5) return cmd_overwrite(dir, args[3], args[4]);
    if (cmd == "fail" && argc == 4) return cmd_fail(dir, args[3]);
    if (cmd == "reconstruct" && argc == 4) return cmd_reconstruct(dir, args[3]);
    if (cmd == "scrub" && argc == 3) return cmd_scrub(dir);
    if (cmd == "corrupt" && argc == 6) return cmd_corrupt(dir, args[3], args[4], args[5]);
    if (cmd == "status" && argc == 3) return cmd_status(dir);
    return usage();
}

}  // namespace

int main(int argc, char** argv) {
    // Strip the global observability flags wherever they appear, then
    // dispatch on the remaining positional arguments.
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string* sink = nullptr;
        if (arg == "--metrics-out") sink = &g_obs.metrics_path;
        if (arg == "--metrics-prom") sink = &g_obs.prometheus_path;
        if (arg == "--trace-out") sink = &g_obs.trace_path;
        if (sink != nullptr) {
            if (i + 1 >= argc) return usage();
            *sink = argv[++i];
            continue;
        }
        if (arg == "--serve") {
            if (i + 1 >= argc) return usage();
            g_obs.serve_port = std::atoi(argv[++i]);
            continue;
        }
        if (arg == "--serve-hold") {
            if (i + 1 >= argc) return usage();
            g_obs.serve_hold = std::atof(argv[++i]);
            continue;
        }
        args.push_back(arg);
    }
    g_obs.enable();
    const int rc = dispatch(args);
    g_obs.hold();
    if (!g_obs.flush()) return rc == 0 ? 1 : rc;
    return rc;
}
