// ecfrm_cli: a small archival store on a directory of file-backed disks.
//
//   ecfrm_cli create <dir> <code_spec> <layout> <element_bytes>
//   ecfrm_cli put <dir> <input_file>
//   ecfrm_cli get <dir> <offset> <length> <output_file>
//   ecfrm_cli cat <dir> <output_file>
//   ecfrm_cli fail <dir> <disk>
//   ecfrm_cli reconstruct <dir> <disk>
//   ecfrm_cli scrub <dir>
//   ecfrm_cli corrupt <dir> <disk> <row> <byte>
//   ecfrm_cli status <dir>
//
//   code_spec: rs:<k>,<m> or lrc:<k>,<l>,<m>; layout: standard|rotated|ecfrm
//
// The archive survives process restarts: geometry and committed size live
// in <dir>/MANIFEST, payloads in <dir>/disk_<i>.dat.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "codes/factory.h"
#include "core/explain.h"
#include "core/read_planner.h"
#include "core/scheme.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/file_disk.h"
#include "store/manifest.h"
#include "store/stripe_store.h"

namespace {

using namespace ecfrm;
namespace fs = std::filesystem;

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  ecfrm_cli create <dir> <code_spec> <layout> <element_bytes>\n"
                 "  ecfrm_cli put <dir> <input_file> [object_name]\n"
                 "  ecfrm_cli get <dir> <offset> <length> <output_file>\n"
                 "  ecfrm_cli get-object <dir> <object_name> <output_file>\n"
                 "  ecfrm_cli list <dir>\n"
                 "  ecfrm_cli cat <dir> <output_file>\n"
                 "  ecfrm_cli overwrite <dir> <offset> <input_file>\n"
                 "  ecfrm_cli fail <dir> <disk>\n"
                 "  ecfrm_cli reconstruct <dir> <disk>\n"
                 "  ecfrm_cli scrub <dir>\n"
                 "  ecfrm_cli corrupt <dir> <disk> <row> <byte>\n"
                 "  ecfrm_cli status <dir>\n"
                 "  ecfrm_cli explain <code_spec> <layout> <start> <count>"
                 " [--failed d0,d1] [--policy local|balance]\n"
                 "global options (any command):\n"
                 "  --metrics-out <file>   dump metrics as newline-delimited JSON\n"
                 "  --metrics-prom <file>  dump metrics in Prometheus text format\n"
                 "  --trace-out <file>     dump spans as chrome://tracing JSON\n"
                 "  --serve <port>         serve /metrics, /metrics.json, /healthz on 127.0.0.1\n"
                 "  --serve-hold <secs>    keep serving after the command (GET /quitquitquit ends)\n");
    return 2;
}

/// Process-wide observability sinks, enabled by the global flags.
struct ObsOutputs {
    std::string metrics_path;
    std::string prometheus_path;
    std::string trace_path;
    int serve_port = -1;       // >= 0: expose live metrics over HTTP
    double serve_hold = 0.0;   // seconds to keep serving after the command
    std::unique_ptr<obs::MetricRegistry> metrics;
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::Snapshotter> snapshotter;
    std::unique_ptr<obs::ExpositionServer> server;

    void enable() {
        if (!metrics_path.empty() || !prometheus_path.empty() || serve_port >= 0) {
            metrics = std::make_unique<obs::MetricRegistry>("ecfrm_cli");
            core::attach_planner_metrics(metrics.get());
        }
        if (!trace_path.empty()) tracer = std::make_unique<obs::Tracer>(1 << 14);
        if (tracer != nullptr && metrics != nullptr) tracer->attach_metrics(metrics.get());
        if (serve_port >= 0) {
            snapshotter = std::make_unique<obs::Snapshotter>(metrics.get(), 1.0);
            snapshotter->start();
            server = std::make_unique<obs::ExpositionServer>(metrics.get(), snapshotter.get());
            auto status = server->start(serve_port);
            if (!status.ok()) {
                std::fprintf(stderr, "error: %s\n", status.error().message.c_str());
                server.reset();
                return;
            }
            std::printf("serving metrics on http://127.0.0.1:%d/metrics\n", server->port());
            std::fflush(stdout);
        }
    }

    /// Honour --serve-hold: keep the command's final metrics scrapable
    /// until the hold expires or a client GETs /quitquitquit.
    void hold() {
        if (server == nullptr || serve_hold <= 0.0) return;
        std::printf("holding for %.1fs (GET /quitquitquit to release)\n", serve_hold);
        std::fflush(stdout);
        server->wait_for_quit(serve_hold);
    }

    static bool write_file(const std::string& path, const std::string& body) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(body.data(), static_cast<std::streamsize>(body.size()));
        if (!out.good()) {
            std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
            return false;
        }
        return true;
    }

    /// Dump whatever was requested; returns false on write failure.
    bool flush() const {
        bool ok = true;
        if (metrics != nullptr && !metrics_path.empty()) {
            ok = write_file(metrics_path, metrics->to_json()) && ok;
        }
        if (metrics != nullptr && !prometheus_path.empty()) {
            ok = write_file(prometheus_path, metrics->to_prometheus()) && ok;
        }
        if (tracer != nullptr) ok = write_file(trace_path, tracer->to_chrome_json()) && ok;
        return ok;
    }
};

ObsOutputs g_obs;

int fail_with(const Error& error) {
    std::fprintf(stderr, "error: %s\n", error.message.c_str());
    return 1;
}

struct Archive {
    store::Manifest manifest;
    std::unique_ptr<store::StripeStore> store;
};

Result<Archive> open_archive(const std::string& dir) {
    auto manifest = store::Manifest::load(dir);
    if (!manifest.ok()) return manifest.error();

    auto code = codes::make_code(manifest->code_spec);
    if (!code.ok()) return code.error();
    core::Scheme scheme(code.value(), manifest->kind);

    const std::int64_t element_bytes = manifest->element_bytes;
    auto st = store::StripeStore::open(
        std::move(scheme), element_bytes,
        [&dir, element_bytes](int index) -> Result<std::unique_ptr<store::BlockDevice>> {
            auto disk = store::FileDisk::open(dir, index, element_bytes);
            if (!disk.ok()) return disk.error();
            return std::unique_ptr<store::BlockDevice>(std::move(disk).take());
        });
    if (!st.ok()) return st.error();
    auto restored = st.value()->restore(manifest->extents, manifest->stripes);
    if (!restored.ok()) return restored.error();
    st.value()->attach_observability(g_obs.metrics.get(), g_obs.tracer.get());
    return Archive{std::move(manifest).take(), std::move(st).take()};
}

Status save_manifest(const std::string& dir, Archive& archive) {
    archive.manifest.logical_bytes = archive.store->logical_bytes();
    archive.manifest.stripes =
        archive.store->stored_data_elements() / archive.store->scheme().layout().data_per_stripe();
    archive.manifest.extents = archive.store->extents();
    return archive.manifest.save(dir);
}

int cmd_create(const std::string& dir, const std::string& spec, const std::string& layout_name,
               const std::string& elem) {
    auto code = codes::make_code(spec);
    if (!code.ok()) return fail_with(code.error());
    auto kind = store::parse_layout_kind(layout_name);
    if (!kind.ok()) return fail_with(kind.error());
    const long long element_bytes = std::atoll(elem.c_str());
    if (element_bytes <= 0 || element_bytes % 8 != 0) {
        std::fprintf(stderr, "error: element_bytes must be a positive multiple of 8\n");
        return 1;
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (fs::exists(dir + "/MANIFEST")) {
        std::fprintf(stderr, "error: archive already exists at %s\n", dir.c_str());
        return 1;
    }
    store::Manifest manifest;
    manifest.code_spec = spec;
    manifest.kind = kind.value();
    manifest.element_bytes = element_bytes;
    auto status = manifest.save(dir);
    if (!status.ok()) return fail_with(status.error());

    core::Scheme scheme(code.value(), kind.value());
    std::printf("created %s archive on %d disks (element %lld B, stripe %d rows)\n",
                scheme.name().c_str(), scheme.disks(), element_bytes, scheme.layout().rows_per_stripe());
    return 0;
}

int write_range(Archive& archive, std::int64_t offset, std::int64_t length, const std::string& output);

int cmd_put(const std::string& dir, const std::string& input, const std::string& object_name) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    if (!object_name.empty() && archive->manifest.find_object(object_name) != nullptr) {
        std::fprintf(stderr, "error: object '%s' already exists\n", object_name.c_str());
        return 1;
    }

    std::ifstream in(input, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", input.c_str());
        return 1;
    }
    const std::int64_t object_offset = archive->store->logical_bytes();
    std::vector<char> buffer(1 << 20);
    std::int64_t total = 0;
    while (in) {
        in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
        const std::streamsize got = in.gcount();
        if (got <= 0) break;
        auto status = archive->store->append(
            ConstByteSpan(reinterpret_cast<const std::uint8_t*>(buffer.data()), static_cast<std::size_t>(got)));
        if (!status.ok()) return fail_with(status.error());
        total += got;
    }
    auto status = archive->store->flush();
    if (!status.ok()) return fail_with(status.error());
    if (!object_name.empty()) {
        archive->manifest.objects.push_back({object_name, object_offset, total});
    }
    status = save_manifest(dir, archive.value());
    if (!status.ok()) return fail_with(status.error());
    std::printf("stored %lld bytes%s%s (archive now %lld bytes)\n", static_cast<long long>(total),
                object_name.empty() ? "" : " as object ", object_name.c_str(),
                static_cast<long long>(archive->store->logical_bytes()));
    return 0;
}

int cmd_get_object(const std::string& dir, const std::string& name, const std::string& output) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const store::ObjectRecord* object = archive->manifest.find_object(name);
    if (object == nullptr) {
        std::fprintf(stderr, "error: no such object '%s'\n", name.c_str());
        return 1;
    }
    return write_range(archive.value(), object->offset, object->bytes, output);
}

int cmd_list(const std::string& dir) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    std::printf("%-32s %14s %14s\n", "object", "offset", "bytes");
    for (const auto& o : archive->manifest.objects) {
        std::printf("%-32s %14lld %14lld\n", o.name.c_str(), static_cast<long long>(o.offset),
                    static_cast<long long>(o.bytes));
    }
    std::printf("(%zu objects, %lld logical bytes)\n", archive->manifest.objects.size(),
                static_cast<long long>(archive->store->logical_bytes()));
    return 0;
}

int write_range(Archive& archive, std::int64_t offset, std::int64_t length, const std::string& output) {
    auto bytes = archive.store->read_bytes(offset, length);
    if (!bytes.ok()) return fail_with(bytes.error());
    std::ofstream out(output, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", output.c_str());
        return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes->data()), static_cast<std::streamsize>(bytes->size()));
    if (!out.good()) {
        std::fprintf(stderr, "error: short write to %s\n", output.c_str());
        return 1;
    }
    std::printf("read %zu bytes -> %s\n", bytes->size(), output.c_str());
    return 0;
}

int cmd_get(const std::string& dir, const std::string& off, const std::string& len, const std::string& output) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    return write_range(archive.value(), std::atoll(off.c_str()), std::atoll(len.c_str()), output);
}

int cmd_cat(const std::string& dir, const std::string& output) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const std::int64_t length = archive->store->logical_bytes();
    return write_range(archive.value(), 0, length, output);
}

int cmd_overwrite(const std::string& dir, const std::string& off, const std::string& input) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    std::ifstream in(input, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", input.c_str());
        return 1;
    }
    std::vector<char> body((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    auto status = archive->store->overwrite(
        std::atoll(off.c_str()),
        ConstByteSpan(reinterpret_cast<const std::uint8_t*>(body.data()), body.size()));
    if (!status.ok()) return fail_with(status.error());
    std::printf("overwrote %zu bytes at offset %s (parity delta-updated)\n", body.size(), off.c_str());
    return 0;
}

int cmd_fail(const std::string& dir, const std::string& disk) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto status = archive->store->fail_disk(std::atoi(disk.c_str()));
    if (!status.ok()) return fail_with(status.error());
    std::printf("disk %s marked failed (content dropped)\n", disk.c_str());
    return 0;
}

int cmd_reconstruct(const std::string& dir, const std::string& disk) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto stats = archive->store->reconstruct_disk(std::atoi(disk.c_str()));
    if (!stats.ok()) return fail_with(stats.error());
    std::printf("rebuilt %lld elements from %lld reads\n", static_cast<long long>(stats->elements_rebuilt),
                static_cast<long long>(stats->elements_read));
    return 0;
}

int cmd_scrub(const std::string& dir) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto report = archive->store->scrub();
    if (!report.ok()) return fail_with(report.error());
    std::printf("scanned %lld groups: %lld inconsistent, %lld elements repaired, %lld unrecoverable\n",
                static_cast<long long>(report->groups_scanned),
                static_cast<long long>(report->groups_inconsistent),
                static_cast<long long>(report->elements_repaired),
                static_cast<long long>(report->unrecoverable_groups));
    return report->unrecoverable_groups == 0 ? 0 : 1;
}

int cmd_corrupt(const std::string& dir, const std::string& disk, const std::string& row,
                const std::string& byte) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    auto status = archive->store->corrupt_element(std::atoi(disk.c_str()), std::atoll(row.c_str()),
                                                  static_cast<std::size_t>(std::atoll(byte.c_str())));
    if (!status.ok()) return fail_with(status.error());
    std::printf("flipped one byte on disk %s row %s (silently)\n", disk.c_str(), row.c_str());
    return 0;
}

int cmd_status(const std::string& dir) {
    auto archive = open_archive(dir);
    if (!archive.ok()) return fail_with(archive.error());
    const auto& scheme = archive->store->scheme();
    std::printf("scheme:         %s\n", scheme.name().c_str());
    std::printf("disks:          %d\n", scheme.disks());
    std::printf("element size:   %lld B\n", static_cast<long long>(archive->manifest.element_bytes));
    std::printf("logical size:   %lld B\n", static_cast<long long>(archive->store->logical_bytes()));
    std::printf("data elements:  %lld\n", static_cast<long long>(archive->store->stored_data_elements()));
    const auto failed = archive->store->failed_disks();
    std::printf("failed disks:   ");
    if (failed.empty()) {
        std::printf("none\n");
    } else {
        for (DiskId d : failed) std::printf("%d ", d);
        std::printf("\n");
    }
    auto parity = archive->store->verify_parity();
    std::printf("parity audit:   %s\n", parity.ok() ? "clean"
                                                    : (failed.empty() ? parity.error().message.c_str()
                                                                      : "skipped (failed disks)"));
    return 0;
}

/// `explain` plans a read against a synthetic scheme (no archive needed)
/// and prints the planner's decision as ecfrm.explain.v1 JSON.
int cmd_explain(const std::vector<std::string>& args) {
    std::vector<DiskId> failed;
    auto policy = core::DegradedPolicy::local_first;
    std::vector<std::string> positional;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--failed" && i + 1 < args.size()) {
            const std::string& list = args[++i];
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos) comma = list.size();
                failed.push_back(std::atoi(list.substr(pos, comma - pos).c_str()));
                pos = comma + 1;
            }
        } else if (args[i] == "--policy" && i + 1 < args.size()) {
            const std::string& name = args[++i];
            if (name == "balance") {
                policy = core::DegradedPolicy::balance;
            } else if (name != "local") {
                std::fprintf(stderr, "error: unknown policy '%s'\n", name.c_str());
                return 2;
            }
        } else {
            positional.push_back(args[i]);
        }
    }
    if (positional.size() != 4) return usage();
    auto code = codes::make_code(positional[0]);
    if (!code.ok()) return fail_with(code.error());
    auto kind = store::parse_layout_kind(positional[1]);
    if (!kind.ok()) return fail_with(kind.error());
    core::Scheme scheme(code.value(), kind.value());
    auto out = core::explain_read_json(scheme, std::atoll(positional[2].c_str()),
                                       std::atoll(positional[3].c_str()), failed, policy);
    if (!out.ok()) return fail_with(out.error());
    std::fputs(out->c_str(), stdout);
    return 0;
}

int dispatch(const std::vector<std::string>& args) {
    const int argc = static_cast<int>(args.size());
    if (argc < 3) return usage();
    const std::string& cmd = args[1];
    if (cmd == "explain") return cmd_explain(args);
    const std::string& dir = args[2];
    if (cmd == "create" && argc == 6) return cmd_create(dir, args[3], args[4], args[5]);
    if (cmd == "put" && argc == 4) return cmd_put(dir, args[3], "");
    if (cmd == "put" && argc == 5) return cmd_put(dir, args[3], args[4]);
    if (cmd == "get-object" && argc == 5) return cmd_get_object(dir, args[3], args[4]);
    if (cmd == "list" && argc == 3) return cmd_list(dir);
    if (cmd == "get" && argc == 6) return cmd_get(dir, args[3], args[4], args[5]);
    if (cmd == "cat" && argc == 4) return cmd_cat(dir, args[3]);
    if (cmd == "overwrite" && argc == 5) return cmd_overwrite(dir, args[3], args[4]);
    if (cmd == "fail" && argc == 4) return cmd_fail(dir, args[3]);
    if (cmd == "reconstruct" && argc == 4) return cmd_reconstruct(dir, args[3]);
    if (cmd == "scrub" && argc == 3) return cmd_scrub(dir);
    if (cmd == "corrupt" && argc == 6) return cmd_corrupt(dir, args[3], args[4], args[5]);
    if (cmd == "status" && argc == 3) return cmd_status(dir);
    return usage();
}

}  // namespace

int main(int argc, char** argv) {
    // Strip the global observability flags wherever they appear, then
    // dispatch on the remaining positional arguments.
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string* sink = nullptr;
        if (arg == "--metrics-out") sink = &g_obs.metrics_path;
        if (arg == "--metrics-prom") sink = &g_obs.prometheus_path;
        if (arg == "--trace-out") sink = &g_obs.trace_path;
        if (sink != nullptr) {
            if (i + 1 >= argc) return usage();
            *sink = argv[++i];
            continue;
        }
        if (arg == "--serve") {
            if (i + 1 >= argc) return usage();
            g_obs.serve_port = std::atoi(argv[++i]);
            continue;
        }
        if (arg == "--serve-hold") {
            if (i + 1 >= argc) return usage();
            g_obs.serve_hold = std::atof(argv[++i]);
            continue;
        }
        args.push_back(arg);
    }
    g_obs.enable();
    const int rc = dispatch(args);
    g_obs.hold();
    if (!g_obs.flush()) return rc == 0 ? 1 : rc;
    return rc;
}
