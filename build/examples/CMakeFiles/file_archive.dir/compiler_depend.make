# Empty compiler generated dependencies file for file_archive.
# This may be replaced when dependencies are built.
