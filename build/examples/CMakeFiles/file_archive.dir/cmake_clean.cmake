file(REMOVE_RECURSE
  "CMakeFiles/file_archive.dir/file_archive.cpp.o"
  "CMakeFiles/file_archive.dir/file_archive.cpp.o.d"
  "file_archive"
  "file_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
