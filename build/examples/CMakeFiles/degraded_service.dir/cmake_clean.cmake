file(REMOVE_RECURSE
  "CMakeFiles/degraded_service.dir/degraded_service.cpp.o"
  "CMakeFiles/degraded_service.dir/degraded_service.cpp.o.d"
  "degraded_service"
  "degraded_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
