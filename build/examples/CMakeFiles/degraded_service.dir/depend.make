# Empty dependencies file for degraded_service.
# This may be replaced when dependencies are built.
