# Empty dependencies file for code_zoo.
# This may be replaced when dependencies are built.
