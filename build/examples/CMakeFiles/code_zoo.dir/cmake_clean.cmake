file(REMOVE_RECURSE
  "CMakeFiles/code_zoo.dir/code_zoo.cpp.o"
  "CMakeFiles/code_zoo.dir/code_zoo.cpp.o.d"
  "code_zoo"
  "code_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
