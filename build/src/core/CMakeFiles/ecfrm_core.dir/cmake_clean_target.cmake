file(REMOVE_RECURSE
  "libecfrm_core.a"
)
