
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/ecfrm_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/ecfrm_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/read_planner.cpp" "src/core/CMakeFiles/ecfrm_core.dir/read_planner.cpp.o" "gcc" "src/core/CMakeFiles/ecfrm_core.dir/read_planner.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/ecfrm_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/ecfrm_core.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codes/CMakeFiles/ecfrm_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ecfrm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/ecfrm_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecfrm_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecfrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
