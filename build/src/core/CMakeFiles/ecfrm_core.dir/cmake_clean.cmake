file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_core.dir/analysis.cpp.o"
  "CMakeFiles/ecfrm_core.dir/analysis.cpp.o.d"
  "CMakeFiles/ecfrm_core.dir/read_planner.cpp.o"
  "CMakeFiles/ecfrm_core.dir/read_planner.cpp.o.d"
  "CMakeFiles/ecfrm_core.dir/scheme.cpp.o"
  "CMakeFiles/ecfrm_core.dir/scheme.cpp.o.d"
  "libecfrm_core.a"
  "libecfrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
