# Empty compiler generated dependencies file for ecfrm_core.
# This may be replaced when dependencies are built.
