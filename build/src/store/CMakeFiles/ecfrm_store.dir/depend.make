# Empty dependencies file for ecfrm_store.
# This may be replaced when dependencies are built.
