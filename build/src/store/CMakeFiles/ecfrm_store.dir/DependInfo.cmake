
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/disk.cpp" "src/store/CMakeFiles/ecfrm_store.dir/disk.cpp.o" "gcc" "src/store/CMakeFiles/ecfrm_store.dir/disk.cpp.o.d"
  "/root/repo/src/store/file_disk.cpp" "src/store/CMakeFiles/ecfrm_store.dir/file_disk.cpp.o" "gcc" "src/store/CMakeFiles/ecfrm_store.dir/file_disk.cpp.o.d"
  "/root/repo/src/store/manifest.cpp" "src/store/CMakeFiles/ecfrm_store.dir/manifest.cpp.o" "gcc" "src/store/CMakeFiles/ecfrm_store.dir/manifest.cpp.o.d"
  "/root/repo/src/store/stripe_store.cpp" "src/store/CMakeFiles/ecfrm_store.dir/stripe_store.cpp.o" "gcc" "src/store/CMakeFiles/ecfrm_store.dir/stripe_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecfrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/ecfrm_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/ecfrm_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecfrm_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ecfrm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecfrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
