file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_store.dir/disk.cpp.o"
  "CMakeFiles/ecfrm_store.dir/disk.cpp.o.d"
  "CMakeFiles/ecfrm_store.dir/file_disk.cpp.o"
  "CMakeFiles/ecfrm_store.dir/file_disk.cpp.o.d"
  "CMakeFiles/ecfrm_store.dir/manifest.cpp.o"
  "CMakeFiles/ecfrm_store.dir/manifest.cpp.o.d"
  "CMakeFiles/ecfrm_store.dir/stripe_store.cpp.o"
  "CMakeFiles/ecfrm_store.dir/stripe_store.cpp.o.d"
  "libecfrm_store.a"
  "libecfrm_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
