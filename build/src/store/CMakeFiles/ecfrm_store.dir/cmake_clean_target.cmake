file(REMOVE_RECURSE
  "libecfrm_store.a"
)
