# Empty compiler generated dependencies file for ecfrm_layout.
# This may be replaced when dependencies are built.
