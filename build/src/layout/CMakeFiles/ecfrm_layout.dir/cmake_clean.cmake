file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_layout.dir/ecfrm_layout.cpp.o"
  "CMakeFiles/ecfrm_layout.dir/ecfrm_layout.cpp.o.d"
  "CMakeFiles/ecfrm_layout.dir/layout.cpp.o"
  "CMakeFiles/ecfrm_layout.dir/layout.cpp.o.d"
  "libecfrm_layout.a"
  "libecfrm_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
