file(REMOVE_RECURSE
  "libecfrm_layout.a"
)
