# Empty dependencies file for ecfrm_wide.
# This may be replaced when dependencies are built.
