
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wide/matrix16.cpp" "src/wide/CMakeFiles/ecfrm_wide.dir/matrix16.cpp.o" "gcc" "src/wide/CMakeFiles/ecfrm_wide.dir/matrix16.cpp.o.d"
  "/root/repo/src/wide/rs16.cpp" "src/wide/CMakeFiles/ecfrm_wide.dir/rs16.cpp.o" "gcc" "src/wide/CMakeFiles/ecfrm_wide.dir/rs16.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/ecfrm_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecfrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
