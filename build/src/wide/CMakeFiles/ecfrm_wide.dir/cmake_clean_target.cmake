file(REMOVE_RECURSE
  "libecfrm_wide.a"
)
