file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_wide.dir/matrix16.cpp.o"
  "CMakeFiles/ecfrm_wide.dir/matrix16.cpp.o.d"
  "CMakeFiles/ecfrm_wide.dir/rs16.cpp.o"
  "CMakeFiles/ecfrm_wide.dir/rs16.cpp.o.d"
  "libecfrm_wide.a"
  "libecfrm_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
