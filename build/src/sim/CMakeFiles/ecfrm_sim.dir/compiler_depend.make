# Empty compiler generated dependencies file for ecfrm_sim.
# This may be replaced when dependencies are built.
