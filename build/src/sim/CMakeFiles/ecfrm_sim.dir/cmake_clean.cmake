file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_sim.dir/array_sim.cpp.o"
  "CMakeFiles/ecfrm_sim.dir/array_sim.cpp.o.d"
  "CMakeFiles/ecfrm_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/ecfrm_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/ecfrm_sim.dir/disk_model.cpp.o"
  "CMakeFiles/ecfrm_sim.dir/disk_model.cpp.o.d"
  "libecfrm_sim.a"
  "libecfrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
