file(REMOVE_RECURSE
  "libecfrm_sim.a"
)
