
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf/bitmatrix.cpp" "src/gf/CMakeFiles/ecfrm_gf.dir/bitmatrix.cpp.o" "gcc" "src/gf/CMakeFiles/ecfrm_gf.dir/bitmatrix.cpp.o.d"
  "/root/repo/src/gf/gf256.cpp" "src/gf/CMakeFiles/ecfrm_gf.dir/gf256.cpp.o" "gcc" "src/gf/CMakeFiles/ecfrm_gf.dir/gf256.cpp.o.d"
  "/root/repo/src/gf/gf2_solver.cpp" "src/gf/CMakeFiles/ecfrm_gf.dir/gf2_solver.cpp.o" "gcc" "src/gf/CMakeFiles/ecfrm_gf.dir/gf2_solver.cpp.o.d"
  "/root/repo/src/gf/gf65536.cpp" "src/gf/CMakeFiles/ecfrm_gf.dir/gf65536.cpp.o" "gcc" "src/gf/CMakeFiles/ecfrm_gf.dir/gf65536.cpp.o.d"
  "/root/repo/src/gf/region.cpp" "src/gf/CMakeFiles/ecfrm_gf.dir/region.cpp.o" "gcc" "src/gf/CMakeFiles/ecfrm_gf.dir/region.cpp.o.d"
  "/root/repo/src/gf/region_simd.cpp" "src/gf/CMakeFiles/ecfrm_gf.dir/region_simd.cpp.o" "gcc" "src/gf/CMakeFiles/ecfrm_gf.dir/region_simd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecfrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
