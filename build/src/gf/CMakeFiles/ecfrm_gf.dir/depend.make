# Empty dependencies file for ecfrm_gf.
# This may be replaced when dependencies are built.
