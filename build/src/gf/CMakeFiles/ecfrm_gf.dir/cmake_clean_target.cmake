file(REMOVE_RECURSE
  "libecfrm_gf.a"
)
