file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_gf.dir/bitmatrix.cpp.o"
  "CMakeFiles/ecfrm_gf.dir/bitmatrix.cpp.o.d"
  "CMakeFiles/ecfrm_gf.dir/gf256.cpp.o"
  "CMakeFiles/ecfrm_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/ecfrm_gf.dir/gf2_solver.cpp.o"
  "CMakeFiles/ecfrm_gf.dir/gf2_solver.cpp.o.d"
  "CMakeFiles/ecfrm_gf.dir/gf65536.cpp.o"
  "CMakeFiles/ecfrm_gf.dir/gf65536.cpp.o.d"
  "CMakeFiles/ecfrm_gf.dir/region.cpp.o"
  "CMakeFiles/ecfrm_gf.dir/region.cpp.o.d"
  "CMakeFiles/ecfrm_gf.dir/region_simd.cpp.o"
  "CMakeFiles/ecfrm_gf.dir/region_simd.cpp.o.d"
  "libecfrm_gf.a"
  "libecfrm_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
