file(REMOVE_RECURSE
  "libecfrm_codes.a"
)
