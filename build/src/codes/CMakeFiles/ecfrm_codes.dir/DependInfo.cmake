
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/erasure_code.cpp" "src/codes/CMakeFiles/ecfrm_codes.dir/erasure_code.cpp.o" "gcc" "src/codes/CMakeFiles/ecfrm_codes.dir/erasure_code.cpp.o.d"
  "/root/repo/src/codes/factory.cpp" "src/codes/CMakeFiles/ecfrm_codes.dir/factory.cpp.o" "gcc" "src/codes/CMakeFiles/ecfrm_codes.dir/factory.cpp.o.d"
  "/root/repo/src/codes/lrc.cpp" "src/codes/CMakeFiles/ecfrm_codes.dir/lrc.cpp.o" "gcc" "src/codes/CMakeFiles/ecfrm_codes.dir/lrc.cpp.o.d"
  "/root/repo/src/codes/rs.cpp" "src/codes/CMakeFiles/ecfrm_codes.dir/rs.cpp.o" "gcc" "src/codes/CMakeFiles/ecfrm_codes.dir/rs.cpp.o.d"
  "/root/repo/src/codes/xor_codec.cpp" "src/codes/CMakeFiles/ecfrm_codes.dir/xor_codec.cpp.o" "gcc" "src/codes/CMakeFiles/ecfrm_codes.dir/xor_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/ecfrm_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecfrm_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecfrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
