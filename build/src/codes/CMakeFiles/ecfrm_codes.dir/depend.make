# Empty dependencies file for ecfrm_codes.
# This may be replaced when dependencies are built.
