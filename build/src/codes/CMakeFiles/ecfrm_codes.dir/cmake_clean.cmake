file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_codes.dir/erasure_code.cpp.o"
  "CMakeFiles/ecfrm_codes.dir/erasure_code.cpp.o.d"
  "CMakeFiles/ecfrm_codes.dir/factory.cpp.o"
  "CMakeFiles/ecfrm_codes.dir/factory.cpp.o.d"
  "CMakeFiles/ecfrm_codes.dir/lrc.cpp.o"
  "CMakeFiles/ecfrm_codes.dir/lrc.cpp.o.d"
  "CMakeFiles/ecfrm_codes.dir/rs.cpp.o"
  "CMakeFiles/ecfrm_codes.dir/rs.cpp.o.d"
  "CMakeFiles/ecfrm_codes.dir/xor_codec.cpp.o"
  "CMakeFiles/ecfrm_codes.dir/xor_codec.cpp.o.d"
  "libecfrm_codes.a"
  "libecfrm_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
