# CMake generated Testfile for 
# Source directory: /root/repo/src/raid6
# Build directory: /root/repo/build/src/raid6
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
