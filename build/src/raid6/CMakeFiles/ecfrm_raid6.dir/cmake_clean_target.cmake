file(REMOVE_RECURSE
  "libecfrm_raid6.a"
)
