file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_raid6.dir/rdp.cpp.o"
  "CMakeFiles/ecfrm_raid6.dir/rdp.cpp.o.d"
  "CMakeFiles/ecfrm_raid6.dir/star.cpp.o"
  "CMakeFiles/ecfrm_raid6.dir/star.cpp.o.d"
  "libecfrm_raid6.a"
  "libecfrm_raid6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_raid6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
