# Empty dependencies file for ecfrm_raid6.
# This may be replaced when dependencies are built.
