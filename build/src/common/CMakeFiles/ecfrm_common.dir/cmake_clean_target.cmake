file(REMOVE_RECURSE
  "libecfrm_common.a"
)
