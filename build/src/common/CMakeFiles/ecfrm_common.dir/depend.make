# Empty dependencies file for ecfrm_common.
# This may be replaced when dependencies are built.
