file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_common.dir/stats.cpp.o"
  "CMakeFiles/ecfrm_common.dir/stats.cpp.o.d"
  "CMakeFiles/ecfrm_common.dir/thread_pool.cpp.o"
  "CMakeFiles/ecfrm_common.dir/thread_pool.cpp.o.d"
  "libecfrm_common.a"
  "libecfrm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
