# Empty dependencies file for ecfrm_vertical.
# This may be replaced when dependencies are built.
