file(REMOVE_RECURSE
  "libecfrm_vertical.a"
)
