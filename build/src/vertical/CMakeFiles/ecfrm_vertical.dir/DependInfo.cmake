
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vertical/weaver.cpp" "src/vertical/CMakeFiles/ecfrm_vertical.dir/weaver.cpp.o" "gcc" "src/vertical/CMakeFiles/ecfrm_vertical.dir/weaver.cpp.o.d"
  "/root/repo/src/vertical/xcode.cpp" "src/vertical/CMakeFiles/ecfrm_vertical.dir/xcode.cpp.o" "gcc" "src/vertical/CMakeFiles/ecfrm_vertical.dir/xcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/ecfrm_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecfrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
