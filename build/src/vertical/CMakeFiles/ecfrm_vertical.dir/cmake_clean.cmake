file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_vertical.dir/weaver.cpp.o"
  "CMakeFiles/ecfrm_vertical.dir/weaver.cpp.o.d"
  "CMakeFiles/ecfrm_vertical.dir/xcode.cpp.o"
  "CMakeFiles/ecfrm_vertical.dir/xcode.cpp.o.d"
  "libecfrm_vertical.a"
  "libecfrm_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
