# Empty compiler generated dependencies file for ecfrm_matrix.
# This may be replaced when dependencies are built.
