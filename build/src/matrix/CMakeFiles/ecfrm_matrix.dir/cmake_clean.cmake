file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_matrix.dir/builders.cpp.o"
  "CMakeFiles/ecfrm_matrix.dir/builders.cpp.o.d"
  "CMakeFiles/ecfrm_matrix.dir/matrix.cpp.o"
  "CMakeFiles/ecfrm_matrix.dir/matrix.cpp.o.d"
  "libecfrm_matrix.a"
  "libecfrm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
