file(REMOVE_RECURSE
  "libecfrm_matrix.a"
)
