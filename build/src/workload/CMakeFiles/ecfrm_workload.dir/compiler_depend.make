# Empty compiler generated dependencies file for ecfrm_workload.
# This may be replaced when dependencies are built.
