file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_workload.dir/workload.cpp.o"
  "CMakeFiles/ecfrm_workload.dir/workload.cpp.o.d"
  "libecfrm_workload.a"
  "libecfrm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
