file(REMOVE_RECURSE
  "libecfrm_workload.a"
)
