file(REMOVE_RECURSE
  "CMakeFiles/bench_vertical_baseline.dir/bench_vertical_baseline.cpp.o"
  "CMakeFiles/bench_vertical_baseline.dir/bench_vertical_baseline.cpp.o.d"
  "bench_vertical_baseline"
  "bench_vertical_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vertical_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
