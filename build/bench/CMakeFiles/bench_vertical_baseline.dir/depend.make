# Empty dependencies file for bench_vertical_baseline.
# This may be replaced when dependencies are built.
