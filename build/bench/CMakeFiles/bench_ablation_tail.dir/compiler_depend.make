# Empty compiler generated dependencies file for bench_ablation_tail.
# This may be replaced when dependencies are built.
