# Empty compiler generated dependencies file for bench_fig9d_degraded_lrc.
# This may be replaced when dependencies are built.
