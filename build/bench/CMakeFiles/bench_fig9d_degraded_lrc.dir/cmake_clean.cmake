file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9d_degraded_lrc.dir/bench_fig9d_degraded_lrc.cpp.o"
  "CMakeFiles/bench_fig9d_degraded_lrc.dir/bench_fig9d_degraded_lrc.cpp.o.d"
  "bench_fig9d_degraded_lrc"
  "bench_fig9d_degraded_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9d_degraded_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
