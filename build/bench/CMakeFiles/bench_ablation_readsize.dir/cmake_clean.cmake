file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_readsize.dir/bench_ablation_readsize.cpp.o"
  "CMakeFiles/bench_ablation_readsize.dir/bench_ablation_readsize.cpp.o.d"
  "bench_ablation_readsize"
  "bench_ablation_readsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_readsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
