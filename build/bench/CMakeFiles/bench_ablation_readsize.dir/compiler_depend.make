# Empty compiler generated dependencies file for bench_ablation_readsize.
# This may be replaced when dependencies are built.
