
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_readsize.cpp" "bench/CMakeFiles/bench_ablation_readsize.dir/bench_ablation_readsize.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_readsize.dir/bench_ablation_readsize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecfrm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecfrm_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/ecfrm_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/ecfrm_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ecfrm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecfrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecfrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ecfrm_store.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ecfrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vertical/CMakeFiles/ecfrm_vertical.dir/DependInfo.cmake"
  "/root/repo/build/src/raid6/CMakeFiles/ecfrm_raid6.dir/DependInfo.cmake"
  "/root/repo/build/src/wide/CMakeFiles/ecfrm_wide.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
