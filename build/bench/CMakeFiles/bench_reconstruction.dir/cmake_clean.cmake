file(REMOVE_RECURSE
  "CMakeFiles/bench_reconstruction.dir/bench_reconstruction.cpp.o"
  "CMakeFiles/bench_reconstruction.dir/bench_reconstruction.cpp.o.d"
  "bench_reconstruction"
  "bench_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
