file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9c_degraded_rs.dir/bench_fig9c_degraded_rs.cpp.o"
  "CMakeFiles/bench_fig9c_degraded_rs.dir/bench_fig9c_degraded_rs.cpp.o.d"
  "bench_fig9c_degraded_rs"
  "bench_fig9c_degraded_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_degraded_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
