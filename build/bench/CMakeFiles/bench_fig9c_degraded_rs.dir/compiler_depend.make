# Empty compiler generated dependencies file for bench_fig9c_degraded_rs.
# This may be replaced when dependencies are built.
