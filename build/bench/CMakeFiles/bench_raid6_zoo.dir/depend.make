# Empty dependencies file for bench_raid6_zoo.
# This may be replaced when dependencies are built.
