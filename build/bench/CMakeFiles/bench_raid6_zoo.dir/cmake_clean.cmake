file(REMOVE_RECURSE
  "CMakeFiles/bench_raid6_zoo.dir/bench_raid6_zoo.cpp.o"
  "CMakeFiles/bench_raid6_zoo.dir/bench_raid6_zoo.cpp.o.d"
  "bench_raid6_zoo"
  "bench_raid6_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raid6_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
