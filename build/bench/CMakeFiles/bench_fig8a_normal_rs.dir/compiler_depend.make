# Empty compiler generated dependencies file for bench_fig8a_normal_rs.
# This may be replaced when dependencies are built.
