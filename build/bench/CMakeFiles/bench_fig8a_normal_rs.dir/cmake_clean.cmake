file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_normal_rs.dir/bench_fig8a_normal_rs.cpp.o"
  "CMakeFiles/bench_fig8a_normal_rs.dir/bench_fig8a_normal_rs.cpp.o.d"
  "bench_fig8a_normal_rs"
  "bench_fig8a_normal_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_normal_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
