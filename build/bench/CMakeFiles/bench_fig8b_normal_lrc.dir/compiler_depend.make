# Empty compiler generated dependencies file for bench_fig8b_normal_lrc.
# This may be replaced when dependencies are built.
