file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_normal_lrc.dir/bench_fig8b_normal_lrc.cpp.o"
  "CMakeFiles/bench_fig8b_normal_lrc.dir/bench_fig8b_normal_lrc.cpp.o.d"
  "bench_fig8b_normal_lrc"
  "bench_fig8b_normal_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_normal_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
