# Empty compiler generated dependencies file for bench_fig9a_cost_rs.
# This may be replaced when dependencies are built.
