# Empty dependencies file for bench_fig9b_cost_lrc.
# This may be replaced when dependencies are built.
