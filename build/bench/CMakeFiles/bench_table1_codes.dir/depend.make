# Empty dependencies file for bench_table1_codes.
# This may be replaced when dependencies are built.
