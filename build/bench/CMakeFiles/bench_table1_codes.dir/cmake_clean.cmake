file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_codes.dir/bench_table1_codes.cpp.o"
  "CMakeFiles/bench_table1_codes.dir/bench_table1_codes.cpp.o.d"
  "bench_table1_codes"
  "bench_table1_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
