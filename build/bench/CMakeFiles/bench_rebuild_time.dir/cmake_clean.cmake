file(REMOVE_RECURSE
  "CMakeFiles/bench_rebuild_time.dir/bench_rebuild_time.cpp.o"
  "CMakeFiles/bench_rebuild_time.dir/bench_rebuild_time.cpp.o.d"
  "bench_rebuild_time"
  "bench_rebuild_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rebuild_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
