# Empty dependencies file for bench_rebuild_time.
# This may be replaced when dependencies are built.
