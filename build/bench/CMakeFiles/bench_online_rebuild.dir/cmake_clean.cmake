file(REMOVE_RECURSE
  "CMakeFiles/bench_online_rebuild.dir/bench_online_rebuild.cpp.o"
  "CMakeFiles/bench_online_rebuild.dir/bench_online_rebuild.cpp.o.d"
  "bench_online_rebuild"
  "bench_online_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
