# Empty dependencies file for bench_online_rebuild.
# This may be replaced when dependencies are built.
