file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_elemsize.dir/bench_ablation_elemsize.cpp.o"
  "CMakeFiles/bench_ablation_elemsize.dir/bench_ablation_elemsize.cpp.o.d"
  "bench_ablation_elemsize"
  "bench_ablation_elemsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_elemsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
