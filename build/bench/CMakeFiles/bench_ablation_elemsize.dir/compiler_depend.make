# Empty compiler generated dependencies file for bench_ablation_elemsize.
# This may be replaced when dependencies are built.
