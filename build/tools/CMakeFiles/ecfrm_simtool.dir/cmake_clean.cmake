file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_simtool.dir/ecfrm_sim.cpp.o"
  "CMakeFiles/ecfrm_simtool.dir/ecfrm_sim.cpp.o.d"
  "ecfrm_sim"
  "ecfrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_simtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
