# Empty dependencies file for ecfrm_simtool.
# This may be replaced when dependencies are built.
