file(REMOVE_RECURSE
  "CMakeFiles/ecfrm_cli.dir/ecfrm_cli.cpp.o"
  "CMakeFiles/ecfrm_cli.dir/ecfrm_cli.cpp.o.d"
  "ecfrm_cli"
  "ecfrm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfrm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
