# Empty compiler generated dependencies file for ecfrm_cli.
# This may be replaced when dependencies are built.
