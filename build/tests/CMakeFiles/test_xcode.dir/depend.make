# Empty dependencies file for test_xcode.
# This may be replaced when dependencies are built.
