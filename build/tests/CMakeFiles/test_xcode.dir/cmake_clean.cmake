file(REMOVE_RECURSE
  "CMakeFiles/test_xcode.dir/test_xcode.cpp.o"
  "CMakeFiles/test_xcode.dir/test_xcode.cpp.o.d"
  "test_xcode"
  "test_xcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
