# Empty dependencies file for test_planner_oracle.
# This may be replaced when dependencies are built.
