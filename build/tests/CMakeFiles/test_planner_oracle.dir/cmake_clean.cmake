file(REMOVE_RECURSE
  "CMakeFiles/test_planner_oracle.dir/test_planner_oracle.cpp.o"
  "CMakeFiles/test_planner_oracle.dir/test_planner_oracle.cpp.o.d"
  "test_planner_oracle"
  "test_planner_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planner_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
