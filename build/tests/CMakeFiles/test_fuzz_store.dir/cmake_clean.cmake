file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_store.dir/test_fuzz_store.cpp.o"
  "CMakeFiles/test_fuzz_store.dir/test_fuzz_store.cpp.o.d"
  "test_fuzz_store"
  "test_fuzz_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
