# Empty dependencies file for test_fuzz_store.
# This may be replaced when dependencies are built.
