file(REMOVE_RECURSE
  "CMakeFiles/test_lrc.dir/test_lrc.cpp.o"
  "CMakeFiles/test_lrc.dir/test_lrc.cpp.o.d"
  "test_lrc"
  "test_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
