# Empty compiler generated dependencies file for test_star.
# This may be replaced when dependencies are built.
