#include "common/thread_pool.h"

#include <atomic>
#include <memory>

// Counter/Gauge are header-only (inline relaxed atomics), so this include
// adds no link dependency from ecfrm_common onto ecfrm_obs.
#include "obs/metrics.h"

namespace ecfrm {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lk(mu_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::attach_metrics(obs::Gauge* queue_depth, obs::Counter* tasks_executed) {
    std::lock_guard lk(mu_);
    queue_depth_ = queue_depth;
    tasks_executed_ = tasks_executed;
    if (queue_depth_ != nullptr) queue_depth_->set(static_cast<double>(queue_.size()));
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lk(mu_);
        queue_.push_back(std::move(task));
        if (queue_depth_ != nullptr) queue_depth_->set(static_cast<double>(queue_.size()));
    }
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lk(mu_);
    cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lk(mu_);
            cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
            if (queue_depth_ != nullptr) queue_depth_->set(static_cast<double>(queue_.size()));
            ++in_flight_;
        }
        task();
        {
            std::lock_guard lk(mu_);
            --in_flight_;
            if (tasks_executed_ != nullptr) tasks_executed_->add(1);
            if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
        }
    }
}

void parallel_for(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (count == 1 || pool.thread_count() == 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    // Shared control block: shards may still probe `next` after the last
    // item completes (and the caller returns), so the state must outlive
    // this frame. `fn` itself is only invoked for i < count, which always
    // happens-before done == count, so the reference stays valid.
    struct Control {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::mutex mu;
        std::condition_variable cv;
    };
    auto ctl = std::make_shared<Control>();
    const auto runner = [ctl, count, &fn] {
        for (;;) {
            const std::size_t i = ctl->next.fetch_add(1);
            if (i >= count) break;
            fn(i);
            if (ctl->done.fetch_add(1) + 1 == count) {
                std::lock_guard lk(ctl->mu);
                ctl->cv.notify_all();
            }
        }
    };
    // The caller claims items too (not just the workers): this keeps
    // nested parallel_for deadlock-free — even when every worker is parked
    // inside an outer parallel_for, each blocked caller first drains its
    // own items, so the innermost level always makes progress. Queued
    // shards that start late find next >= count and exit immediately.
    const std::size_t shards = std::min(count, pool.thread_count() + 1);
    for (std::size_t s = 1; s < shards; ++s) pool.submit(runner);
    runner();
    std::unique_lock lk(ctl->mu);
    ctl->cv.wait(lk, [&] { return ctl->done.load() == count; });
}

}  // namespace ecfrm
