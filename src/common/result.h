// Minimal Result<T> type: value-or-error without exceptions on hot paths.
//
// The library reports recoverable conditions (undecodable erasure pattern,
// out-of-range request, failed disk touched) through Result rather than
// exceptions, per the surrounding HPC idiom of explicit error flow.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ecfrm {

/// Error payload: a stable category plus a human-readable message.
struct Error {
    enum class Code {
        invalid_argument,
        out_of_range,
        undecodable,
        disk_failed,
        io_error,
        internal,
        // Typed degraded-mode outcomes of the self-healing read path.
        timeout,           // an op exceeded its per-op deadline
        corrupt,           // device-detected (or scrub-confirmed) corruption
        beyond_tolerance,  // more concurrent damage than the code can decode
    };

    Code code = Code::internal;
    std::string message;

    static Error invalid(std::string msg) { return {Code::invalid_argument, std::move(msg)}; }
    static Error range(std::string msg) { return {Code::out_of_range, std::move(msg)}; }
    static Error undecodable(std::string msg) { return {Code::undecodable, std::move(msg)}; }
    static Error disk_failed(std::string msg) { return {Code::disk_failed, std::move(msg)}; }
    static Error io(std::string msg) { return {Code::io_error, std::move(msg)}; }
    static Error internal(std::string msg) { return {Code::internal, std::move(msg)}; }
    static Error timeout(std::string msg) { return {Code::timeout, std::move(msg)}; }
    static Error corrupt(std::string msg) { return {Code::corrupt, std::move(msg)}; }
    static Error beyond_tolerance(std::string msg) { return {Code::beyond_tolerance, std::move(msg)}; }

    /// Stable lowercase name of a code ("timeout", "beyond_tolerance", ...)
    /// for logs, artifacts and typed-error accounting.
    static const char* code_name(Code code) {
        switch (code) {
            case Code::invalid_argument: return "invalid_argument";
            case Code::out_of_range: return "out_of_range";
            case Code::undecodable: return "undecodable";
            case Code::disk_failed: return "disk_failed";
            case Code::io_error: return "io_error";
            case Code::timeout: return "timeout";
            case Code::corrupt: return "corrupt";
            case Code::beyond_tolerance: return "beyond_tolerance";
            case Code::internal: break;
        }
        return "internal";
    }
};

/// Value-or-Error. `ok()` must be checked before dereferencing.
template <typename T>
class [[nodiscard]] Result {
  public:
    Result(T value) : state_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
    Result(Error error) : state_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    const T& value() const& {
        assert(ok());
        return std::get<T>(state_);
    }
    T& value() & {
        assert(ok());
        return std::get<T>(state_);
    }
    T&& take() && {
        assert(ok());
        return std::get<T>(std::move(state_));
    }

    const T& operator*() const& { return value(); }
    T& operator*() & { return value(); }
    const T* operator->() const { return &value(); }
    T* operator->() { return &value(); }

    const Error& error() const {
        assert(!ok());
        return std::get<Error>(state_);
    }

  private:
    std::variant<T, Error> state_;
};

/// Result specialisation for operations with no payload.
class [[nodiscard]] Status {
  public:
    Status() = default;
    Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

    static Status success() { return Status(); }

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }

    const Error& error() const {
        assert(failed_);
        return error_;
    }

  private:
    Error error_;
    bool failed_ = false;
};

}  // namespace ecfrm
