// BufferPool: a pooled arena of fixed-size, page-aligned element buffers.
//
// The pool pre-allocates one contiguous arena and hands out slabs through
// RAII PooledBuffer handles. Two jobs:
//   - kill per-element heap allocation churn on the read hot path (the
//     executor draws its element staging buffers from here), and
//   - give io_uring a single registerable region: a UringDisk registers
//     the whole arena as one fixed buffer, so any read whose destination
//     lies inside it can use IORING_OP_READ_FIXED (no per-op page pinning).
//
// Exhaustion never fails: acquire() falls back to a private heap buffer
// (same alignment, same zero-init), it just won't be inside the arena.
// Thread-safe; a handle may be released from any thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/types.h"

namespace ecfrm {

class BufferPool;

/// RAII handle to one pool slab (or a heap fallback buffer). Movable,
/// not copyable; returns the slab on destruction. A default-constructed
/// handle is empty.
class PooledBuffer {
  public:
    PooledBuffer() = default;
    PooledBuffer(const PooledBuffer&) = delete;
    PooledBuffer& operator=(const PooledBuffer&) = delete;
    PooledBuffer(PooledBuffer&& other) noexcept { swap(other); }
    PooledBuffer& operator=(PooledBuffer&& other) noexcept {
        if (this != &other) {
            release();
            swap(other);
        }
        return *this;
    }
    ~PooledBuffer() { release(); }

    void swap(PooledBuffer& other) noexcept {
        std::swap(pool_, other.pool_);
        std::swap(slab_, other.slab_);
        std::swap(view_, other.view_);
        heap_.swap(other.heap_);
    }

    bool empty() const { return view_.data() == nullptr; }
    std::uint8_t* data() { return view_.data(); }
    const std::uint8_t* data() const { return view_.data(); }
    std::size_t size() const { return view_.size(); }
    ByteSpan span() { return view_; }
    ConstByteSpan span() const { return {view_.data(), view_.size()}; }

    /// True when the buffer lives inside a pool arena (registered memory).
    bool pooled() const { return pool_ != nullptr; }

    /// Pool-less heap buffer with the same semantics (zeroed, aligned).
    static PooledBuffer heap(std::size_t size) {
        PooledBuffer b;
        b.heap_ = AlignedBuffer(size);
        b.view_ = b.heap_.span();
        return b;
    }

  private:
    friend class BufferPool;
    void release();

    BufferPool* pool_ = nullptr;
    int slab_ = -1;
    ByteSpan view_{};
    AlignedBuffer heap_;
};

/// Fixed-size slab arena. `buffer_bytes` is the usable size of each slab;
/// slabs are spaced at a 64-byte-aligned stride inside one page-aligned
/// arena allocation so SIMD kernels and io_uring registration both work
/// on any slab.
class BufferPool {
  public:
    static constexpr std::size_t kArenaAlignment = 4096;

    BufferPool(std::size_t buffer_bytes, std::size_t count);
    ~BufferPool();

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /// A zeroed buffer of buffer_bytes(). Falls back to a heap buffer
    /// (outside the arena) when every slab is out.
    PooledBuffer acquire();

    std::size_t buffer_bytes() const { return buffer_bytes_; }
    std::size_t capacity() const { return count_; }
    std::size_t available() const;
    /// Heap fallbacks handed out because the arena was exhausted.
    std::int64_t exhausted_acquires() const;

    /// True when [p, p + len) lies fully inside the arena — the test for
    /// "may this destination use a registered-buffer fixed read".
    bool contains(const void* p, std::size_t len) const {
        const auto* b = static_cast<const std::uint8_t*>(p);
        return b >= arena_ && b + len <= arena_ + arena_bytes_;
    }

    const std::uint8_t* arena() const { return arena_; }
    std::size_t arena_bytes() const { return arena_bytes_; }

  private:
    friend class PooledBuffer;
    void release_slab(int slab);

    std::size_t buffer_bytes_ = 0;
    std::size_t stride_ = 0;
    std::size_t count_ = 0;
    std::uint8_t* arena_ = nullptr;
    std::size_t arena_bytes_ = 0;

    mutable std::mutex mu_;
    std::vector<int> free_;  // guarded by mu_
    std::int64_t exhausted_ = 0;  // guarded by mu_
};

/// Storage for one in-flight element: an owned buffer (pooled or heap) or
/// a non-owning view of caller memory (the zero-copy path — the element
/// is fetched or decoded directly into the user's output buffer). The
/// executor's ElementMap holds these.
class ElementBuf {
  public:
    ElementBuf() = default;

    /// Owned storage: drawn from `pool` when given, else a heap buffer.
    static ElementBuf alloc(std::size_t size, BufferPool* pool) {
        ElementBuf e;
        e.owned_ = (pool != nullptr && pool->buffer_bytes() >= size) ? pool->acquire()
                                                                     : PooledBuffer::heap(size);
        e.view_ = ByteSpan(e.owned_.data(), size);
        return e;
    }

    /// Non-owning view of caller memory (zero-copy destination).
    static ElementBuf external(ByteSpan view) {
        ElementBuf e;
        e.view_ = view;
        return e;
    }

    bool external() const { return owned_.empty() && view_.data() != nullptr; }
    std::uint8_t* data() { return view_.data(); }
    const std::uint8_t* data() const { return view_.data(); }
    std::size_t size() const { return view_.size(); }
    ByteSpan span() { return view_; }
    ConstByteSpan span() const { return {view_.data(), view_.size()}; }

  private:
    PooledBuffer owned_;
    ByteSpan view_{};
};

}  // namespace ecfrm
