// Tiny leveled logger. Off by default above WARN so benches stay quiet;
// examples flip it to INFO for narration. The initial level can be set
// from the environment (ECFRM_LOG=debug|info|warn|error|off), and the
// stderr sink can be swapped for a capturing one in tests.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <utility>

namespace ecfrm {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

inline const char* log_level_name(LogLevel level) {
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
    return names[static_cast<int>(level)];
}

/// Parse a level name (as accepted in ECFRM_LOG); unknown or null input
/// yields `fallback`.
inline LogLevel parse_log_level(const char* name, LogLevel fallback) {
    if (name == nullptr) return fallback;
    const std::string s(name);
    if (s == "debug") return LogLevel::debug;
    if (s == "info") return LogLevel::info;
    if (s == "warn") return LogLevel::warn;
    if (s == "error") return LogLevel::error;
    if (s == "off") return LogLevel::off;
    return fallback;
}

class Logger {
  public:
    /// Replacement output sink; receives only records that pass the
    /// level filter. An empty function restores the stderr default.
    using Sink = std::function<void(LogLevel, const std::string&)>;

    static Logger& instance() {
        static Logger logger;
        return logger;
    }

    void set_level(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }

    void set_sink(Sink sink) {
        std::lock_guard lk(mu_);
        sink_ = std::move(sink);
    }

    void log(LogLevel level, const std::string& msg) {
        if (static_cast<int>(level) < static_cast<int>(level_)) return;
        std::lock_guard lk(mu_);
        if (sink_) {
            sink_(level, msg);
        } else {
            std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
        }
    }

  private:
    Logger() : level_(parse_log_level(std::getenv("ECFRM_LOG"), LogLevel::warn)) {}
    LogLevel level_;
    std::mutex mu_;
    Sink sink_;
};

inline void log_debug(const std::string& msg) { Logger::instance().log(LogLevel::debug, msg); }
inline void log_info(const std::string& msg) { Logger::instance().log(LogLevel::info, msg); }
inline void log_warn(const std::string& msg) { Logger::instance().log(LogLevel::warn, msg); }
inline void log_error(const std::string& msg) { Logger::instance().log(LogLevel::error, msg); }

}  // namespace ecfrm
