// Tiny leveled logger. Off by default above WARN so benches stay quiet;
// examples flip it to INFO for narration.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace ecfrm {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

class Logger {
  public:
    static Logger& instance() {
        static Logger logger;
        return logger;
    }

    void set_level(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }

    void log(LogLevel level, const std::string& msg) {
        if (static_cast<int>(level) < static_cast<int>(level_)) return;
        static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
        std::lock_guard lk(mu_);
        std::fprintf(stderr, "[%s] %s\n", names[static_cast<int>(level)], msg.c_str());
    }

  private:
    Logger() = default;
    LogLevel level_ = LogLevel::warn;
    std::mutex mu_;
};

inline void log_debug(const std::string& msg) { Logger::instance().log(LogLevel::debug, msg); }
inline void log_info(const std::string& msg) { Logger::instance().log(LogLevel::info, msg); }
inline void log_warn(const std::string& msg) { Logger::instance().log(LogLevel::warn, msg); }
inline void log_error(const std::string& msg) { Logger::instance().log(LogLevel::error, msg); }

}  // namespace ecfrm
