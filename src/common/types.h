// Fundamental type aliases shared by every ecfrm module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ecfrm {

/// Index of a physical disk (column) in an array, 0-based.
using DiskId = int;

/// Global row index on a disk. A "row slot" holds exactly one element.
using RowId = std::int64_t;

/// Index of a logical *data* element in the user-visible address space
/// (0, 1, 2, ... in file order, parities excluded).
using ElementId = std::int64_t;

/// Index of a stripe (one EC-FRM super-stripe, or one candidate-code row
/// for the standard/rotated layouts).
using StripeId = std::int64_t;

/// Mutable / immutable views over raw element bytes.
using ByteSpan = std::span<std::uint8_t>;
using ConstByteSpan = std::span<const std::uint8_t>;

/// Physical location of one element: (disk, row-on-disk).
struct Location {
    DiskId disk = -1;
    RowId row = -1;

    friend bool operator==(const Location&, const Location&) = default;
};

}  // namespace ecfrm
