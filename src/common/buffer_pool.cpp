#include "common/buffer_pool.h"

#include <cstring>
#include <new>

namespace ecfrm {

namespace {

std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
}

}  // namespace

BufferPool::BufferPool(std::size_t buffer_bytes, std::size_t count)
    : buffer_bytes_(buffer_bytes),
      stride_(round_up(buffer_bytes == 0 ? 1 : buffer_bytes, AlignedBuffer::kAlignment)),
      count_(count) {
    arena_bytes_ = stride_ * count_;
    if (arena_bytes_ > 0) {
        arena_ = static_cast<std::uint8_t*>(
            ::operator new[](arena_bytes_, std::align_val_t(kArenaAlignment)));
        std::memset(arena_, 0, arena_bytes_);
    }
    free_.reserve(count_);
    // LIFO free list: the most recently released slab is the hottest in
    // cache, so it is handed out next.
    for (std::size_t i = 0; i < count_; ++i) free_.push_back(static_cast<int>(i));
}

BufferPool::~BufferPool() {
    if (arena_ != nullptr) {
        ::operator delete[](arena_, std::align_val_t(kArenaAlignment));
    }
}

PooledBuffer BufferPool::acquire() {
    int slab = -1;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!free_.empty()) {
            slab = free_.back();
            free_.pop_back();
        } else {
            ++exhausted_;
        }
    }
    if (slab < 0) return PooledBuffer::heap(buffer_bytes_);
    std::uint8_t* p = arena_ + static_cast<std::size_t>(slab) * stride_;
    std::memset(p, 0, buffer_bytes_);
    PooledBuffer b;
    b.pool_ = this;
    b.slab_ = slab;
    b.view_ = ByteSpan(p, buffer_bytes_);
    return b;
}

std::size_t BufferPool::available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
}

std::int64_t BufferPool::exhausted_acquires() const {
    std::lock_guard<std::mutex> lock(mu_);
    return exhausted_;
}

void BufferPool::release_slab(int slab) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slab);
}

void PooledBuffer::release() {
    if (pool_ != nullptr) {
        pool_->release_slab(slab_);
        pool_ = nullptr;
    }
    slab_ = -1;
    view_ = ByteSpan{};
    heap_ = AlignedBuffer();
}

}  // namespace ecfrm
