// Cache-line-aligned, zero-initialised byte buffers for element payloads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/types.h"

namespace ecfrm {

/// Owning byte buffer aligned to 64 bytes so region kernels can assume
/// aligned loads. Moves are cheap; copies are deep.
class AlignedBuffer {
  public:
    static constexpr std::size_t kAlignment = 64;

    AlignedBuffer() = default;

    explicit AlignedBuffer(std::size_t size) : size_(size) {
        if (size_ > 0) {
            data_ = static_cast<std::uint8_t*>(::operator new[](size_, std::align_val_t(kAlignment)));
            std::memset(data_, 0, size_);
        }
    }

    AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
        if (size_ > 0) std::memcpy(data_, other.data_, size_);
    }

    AlignedBuffer& operator=(const AlignedBuffer& other) {
        if (this != &other) {
            AlignedBuffer tmp(other);
            swap(tmp);
        }
        return *this;
    }

    AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

    AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
        if (this != &other) {
            release();
            swap(other);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    void swap(AlignedBuffer& other) noexcept {
        std::swap(data_, other.data_);
        std::swap(size_, other.size_);
    }

    std::uint8_t* data() { return data_; }
    const std::uint8_t* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    ByteSpan span() { return {data_, size_}; }
    ConstByteSpan span() const { return {data_, size_}; }

    std::uint8_t& operator[](std::size_t i) { return data_[i]; }
    std::uint8_t operator[](std::size_t i) const { return data_[i]; }

    void fill(std::uint8_t v) {
        if (size_ > 0) std::memset(data_, v, size_);
    }

  private:
    void release() {
        if (data_ != nullptr) {
            ::operator delete[](data_, std::align_val_t(kAlignment));
            data_ = nullptr;
            size_ = 0;
        }
    }

    std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace ecfrm
