// A small fixed-size thread pool used by the striped store and the parallel
// encode path. Tasks are type-erased std::function<void()>; submit() returns
// a future-like handle via a shared countdown latch for batch joins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecfrm {

class ThreadPool {
  public:
    /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a task. Never blocks.
    void submit(std::function<void()> task);

    /// Block until every task submitted so far has finished executing.
    void wait_idle();

    std::size_t thread_count() const { return workers_.size(); }

  private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool and waits for completion.
/// Falls back to serial execution for tiny batches.
void parallel_for(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace ecfrm
