// A small fixed-size thread pool used by the striped store and the parallel
// encode path. Tasks are type-erased std::function<void()>; submit() returns
// a future-like handle via a shared countdown latch for batch joins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecfrm {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

class ThreadPool {
  public:
    /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Attach queue observability (either pointer may be null): the gauge
    /// tracks the queued-but-not-started depth, the counter accumulates
    /// tasks executed. Attach before submitting — not synchronised
    /// against in-flight work.
    void attach_metrics(obs::Gauge* queue_depth, obs::Counter* tasks_executed);

    /// Enqueue a task. Never blocks.
    void submit(std::function<void()> task);

    /// Block until every task submitted so far has finished executing.
    void wait_idle();

    std::size_t thread_count() const { return workers_.size(); }

  private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
    obs::Gauge* queue_depth_ = nullptr;        // guarded by mu_
    obs::Counter* tasks_executed_ = nullptr;   // guarded by mu_
};

/// Runs fn(i) for i in [0, count) across the pool and waits for completion.
/// Falls back to serial execution for tiny batches.
void parallel_for(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace ecfrm
