// Small statistics helpers shared by the simulator and the benches:
// single-pass online moments (Welford) and exact sample percentiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ecfrm {

/// Welford's online mean/variance with min/max tracking.
class OnlineStats {
  public:
    void add(double x) {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = count_ == 1 ? x : std::min(min_, x);
        max_ = count_ == 1 ? x : std::max(max_, x);
    }

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const { return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1); }
    double stddev() const { return std::sqrt(variance()); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Exact percentile of a sample (nearest-rank on the sorted copy).
/// q is clamped into [0, 1] (NaN clamps to 0); empty input yields 0.
double percentile(std::vector<double> samples, double q);

/// Collects samples and answers both moment and percentile queries.
class SampleSet {
  public:
    void add(double x) {
        stats_.add(x);
        samples_.push_back(x);
    }

    const OnlineStats& stats() const { return stats_; }
    double percentile(double q) const { return ecfrm::percentile(samples_, q); }
    std::size_t size() const { return samples_.size(); }

  private:
    OnlineStats stats_;
    std::vector<double> samples_;
};

}  // namespace ecfrm
