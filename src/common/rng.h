// Deterministic, seedable pseudo-random number generation.
//
// All experiments in the repo draw randomness through these generators so a
// given seed reproduces the paper's protocol exactly across runs and hosts
// (std::mt19937 distributions are not bit-portable across standard library
// implementations; these are).
#pragma once

#include <cstdint>

namespace ecfrm {

/// SplitMix64: used to expand a user seed into generator state.
class SplitMix64 {
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, tiny state. Not cryptographic.
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) {
        SplitMix64 sm(seed);
        for (auto& w : s_) w = sm.next();
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound) via Lemire's rejection-free-ish method.
    std::uint64_t next_below(std::uint64_t bound) {
        // Debiased multiply-shift; rejection loop terminates quickly.
        std::uint64_t x = next_u64();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next_u64();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in the closed interval [lo, hi].
    std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform double in [0, 1).
    double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    std::uint64_t s_[4];
};

}  // namespace ecfrm
