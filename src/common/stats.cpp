#include "common/stats.h"

namespace ecfrm {

double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    // Clamp by hand: q may be NaN (std::clamp would be UB), and any q
    // outside [0, 1] must land on the min/max sample rather than index
    // out of range.
    if (!(q >= 0.0)) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace ecfrm
