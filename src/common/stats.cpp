#include "common/stats.h"

namespace ecfrm {

double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace ecfrm
