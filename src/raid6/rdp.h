// RDP — Row-Diagonal Parity (Corbett et al., FAST'04), cited by the paper
// as a classic XOR-based RAID-6 horizontal code (Section II-B).
//
// Geometry for prime p: p + 1 disks, p - 1 rows per stripe.
//   disks [0, p-1)  data
//   disk  p-1       row parity
//   disk  p         diagonal parity
// Row parity r is the XOR of the row's data cells. Diagonal d (0 <= d <=
// p-2) collects the cells (r, c) with (r + c) mod p == d over the first p
// disks (data + row parity); the diagonal with index p-1 is intentionally
// missing, which is what makes two-disk recovery always start somewhere.
//
// Like X-Code this is a multi-row-stripe code, so it is NOT an EC-FRM
// candidate — it serves as a baseline in the RAID-6 comparison bench and
// as a second fully tested recovery structure beside the generic
// matrix-based codes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace ecfrm::raid6 {

class RdpCode {
  public:
    /// p must be prime and >= 3; the array then has p + 1 disks.
    static Result<std::unique_ptr<RdpCode>> make(int p);

    int p() const { return p_; }
    int disks() const { return p_ + 1; }
    int rows_per_stripe() const { return p_ - 1; }
    int data_disks() const { return p_ - 1; }
    std::int64_t data_per_stripe() const { return static_cast<std::int64_t>(p_ - 1) * (p_ - 1); }
    int fault_tolerance() const { return 2; }

    /// Cell index: row * disks() + disk, rows in [0, p-1).
    int cell(int row, int disk) const { return row * disks() + disk; }

    /// Cells feeding the row parity at `row` (the row's data cells).
    std::vector<int> row_parity_sources(int row) const;

    /// Cells feeding diagonal parity cell at `row` (diagonal d == row).
    std::vector<int> diagonal_parity_sources(int row) const;

    /// Fill both parity columns from the data columns. `cells` holds all
    /// (p-1) * (p+1) spans row-major.
    void encode(const std::vector<ByteSpan>& cells) const;

    /// True when the stripe survives erasing the given disks (<= 2).
    bool decodable_disks(const std::vector<int>& erased_disks) const;

    /// Rebuild every cell of the erased disks in place.
    Status decode_disks(const std::vector<ByteSpan>& cells, const std::vector<int>& erased_disks) const;

    /// XOR count of one full-stripe encode (both parity columns), the
    /// classic RAID-6 comparison metric.
    std::size_t encode_xor_count() const;

  private:
    explicit RdpCode(int p) : p_(p) {}

    struct System {
        std::vector<std::vector<std::uint8_t>> coeffs;
        std::vector<std::vector<int>> knowns;
        std::vector<int> unknown_cells;
    };
    System build_system(const std::vector<int>& erased_disks) const;

    int p_;
};

}  // namespace ecfrm::raid6
