#include "raid6/star.h"

#include <cassert>

#include "gf/gf2_solver.h"
#include "gf/region.h"

namespace ecfrm::raid6 {

namespace {

bool is_prime(int n) {
    if (n < 2) return false;
    for (int d = 2; d * d <= n; ++d) {
        if (n % d == 0) return false;
    }
    return true;
}

int mod(int a, int p) {
    int r = a % p;
    return r < 0 ? r + p : r;
}

}  // namespace

Result<std::unique_ptr<StarCode>> StarCode::make(int p) {
    if (p < 3) return Error::invalid("STAR requires p >= 3");
    if (!is_prime(p)) return Error::invalid("STAR requires prime p");
    auto code = std::unique_ptr<StarCode>(new StarCode(p));

    const int n = p + 2;
    std::vector<int> erased;
    for (int a = 0; a < n; ++a) {
        if (!code->decodable_disks({a})) {
            return Error::internal("STAR single-disk erasure undecodable — construction bug");
        }
        for (int b = a + 1; b < n; ++b) {
            if (!code->decodable_disks({a, b})) {
                return Error::internal("STAR double-disk erasure undecodable — construction bug");
            }
            for (int c = b + 1; c < n; ++c) {
                if (!code->decodable_disks({a, b, c})) {
                    return Error::internal("STAR triple-disk erasure undecodable — construction bug");
                }
            }
        }
    }
    return code;
}

std::vector<int> StarCode::row_parity_sources(int row) const {
    std::vector<int> sources;
    sources.reserve(static_cast<std::size_t>(data_disks()));
    for (int c = 0; c < data_disks(); ++c) sources.push_back(cell(row, c));
    return sources;
}

std::vector<int> StarCode::diagonal_parity_sources(int row) const {
    // Diagonal family d == row over the first p columns (data + row
    // parity), exactly as in RDP: cells (r, c) with (r + c) mod p == d.
    const int d = row;
    std::vector<int> sources;
    for (int c = 0; c < p_; ++c) {
        const int r = mod(d - c, p_);
        if (r <= p_ - 2) sources.push_back(cell(r, c));
    }
    return sources;
}

std::vector<int> StarCode::anti_diagonal_parity_sources(int row) const {
    // Anti-diagonal family d == row: cells (r, c) with (r - c) mod p == d
    // over the first p columns; the row r == p-1 does not exist, so each
    // family has p - 1 members like its diagonal sibling.
    const int d = row;
    std::vector<int> sources;
    for (int c = 0; c < p_; ++c) {
        const int r = mod(d + c, p_);
        if (r <= p_ - 2) sources.push_back(cell(r, c));
    }
    return sources;
}

void StarCode::encode(const std::vector<ByteSpan>& cells) const {
    assert(static_cast<int>(cells.size()) == rows_per_stripe() * disks());
    for (int row = 0; row < rows_per_stripe(); ++row) {
        ByteSpan out = cells[static_cast<std::size_t>(cell(row, p_ - 1))];
        gf::zero_region(out);
        for (int src : row_parity_sources(row)) gf::xor_region(out, cells[static_cast<std::size_t>(src)]);
    }
    for (int row = 0; row < rows_per_stripe(); ++row) {
        ByteSpan out = cells[static_cast<std::size_t>(cell(row, p_))];
        gf::zero_region(out);
        for (int src : diagonal_parity_sources(row)) gf::xor_region(out, cells[static_cast<std::size_t>(src)]);
    }
    for (int row = 0; row < rows_per_stripe(); ++row) {
        ByteSpan out = cells[static_cast<std::size_t>(cell(row, p_ + 1))];
        gf::zero_region(out);
        for (int src : anti_diagonal_parity_sources(row)) {
            gf::xor_region(out, cells[static_cast<std::size_t>(src)]);
        }
    }
}

StarCode::System StarCode::build_system(const std::vector<int>& erased_disks) const {
    System sys;
    std::vector<bool> erased(static_cast<std::size_t>(disks()), false);
    for (int d : erased_disks) erased[static_cast<std::size_t>(d)] = true;

    std::vector<int> unknown_of_cell(static_cast<std::size_t>(rows_per_stripe()) * disks(), -1);
    for (int row = 0; row < rows_per_stripe(); ++row) {
        for (int d = 0; d < disks(); ++d) {
            if (erased[static_cast<std::size_t>(d)]) {
                unknown_of_cell[static_cast<std::size_t>(cell(row, d))] =
                    static_cast<int>(sys.unknown_cells.size());
                sys.unknown_cells.push_back(cell(row, d));
            }
        }
    }

    auto add_equation = [&](int parity_cell, const std::vector<int>& sources) {
        std::vector<std::uint8_t> coeffs(sys.unknown_cells.size(), 0);
        std::vector<int> knowns;
        auto touch = [&](int c) {
            const int u = unknown_of_cell[static_cast<std::size_t>(c)];
            if (u >= 0) {
                coeffs[static_cast<std::size_t>(u)] ^= 1;
            } else {
                knowns.push_back(c);
            }
        };
        touch(parity_cell);
        for (int src : sources) touch(src);
        sys.coeffs.push_back(std::move(coeffs));
        sys.knowns.push_back(std::move(knowns));
    };

    for (int row = 0; row < rows_per_stripe(); ++row) {
        add_equation(cell(row, p_ - 1), row_parity_sources(row));
        add_equation(cell(row, p_), diagonal_parity_sources(row));
        add_equation(cell(row, p_ + 1), anti_diagonal_parity_sources(row));
    }
    return sys;
}

bool StarCode::decodable_disks(const std::vector<int>& erased_disks) const {
    if (erased_disks.empty()) return true;
    if (static_cast<int>(erased_disks.size()) > fault_tolerance()) return false;
    const System sys = build_system(erased_disks);
    return gf::gf2_rank(sys.coeffs) == static_cast<int>(sys.unknown_cells.size());
}

Status StarCode::decode_disks(const std::vector<ByteSpan>& cells, const std::vector<int>& erased_disks) const {
    if (erased_disks.empty()) return Status::success();
    if (static_cast<int>(erased_disks.size()) > fault_tolerance()) {
        return Error::undecodable("STAR tolerates at most three disk erasures");
    }
    System sys = build_system(erased_disks);
    gf::Gf2System generic;
    generic.coeffs = std::move(sys.coeffs);
    generic.knowns = std::move(sys.knowns);
    generic.unknown_cells = std::move(sys.unknown_cells);
    return gf::gf2_solve(std::move(generic), cells);
}

}  // namespace ecfrm::raid6
