// STAR code (Huang & Xu, FAST'05): the triple-erasure XOR code the paper
// cites in Section II-B. Geometry extends RDP by one more parity column:
// for prime p the array has p + 2 disks and p - 1 rows:
//   disks [0, p-1)  data
//   disk  p-1       row parity
//   disk  p         diagonal parity      ((r + c) mod p families)
//   disk  p+1       anti-diagonal parity ((r - c) mod p families)
// Tolerance 3, validated exhaustively over every <=3-disk erasure at
// construction through the shared GF(2) solver.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace ecfrm::raid6 {

class StarCode {
  public:
    /// p must be prime and >= 3.
    static Result<std::unique_ptr<StarCode>> make(int p);

    int p() const { return p_; }
    int disks() const { return p_ + 2; }
    int rows_per_stripe() const { return p_ - 1; }
    int data_disks() const { return p_ - 1; }
    int fault_tolerance() const { return 3; }

    int cell(int row, int disk) const { return row * disks() + disk; }

    std::vector<int> row_parity_sources(int row) const;
    std::vector<int> diagonal_parity_sources(int row) const;
    std::vector<int> anti_diagonal_parity_sources(int row) const;

    /// Fill all three parity columns from the data columns.
    void encode(const std::vector<ByteSpan>& cells) const;

    bool decodable_disks(const std::vector<int>& erased_disks) const;
    Status decode_disks(const std::vector<ByteSpan>& cells, const std::vector<int>& erased_disks) const;

  private:
    explicit StarCode(int p) : p_(p) {}

    struct System {
        std::vector<std::vector<std::uint8_t>> coeffs;
        std::vector<std::vector<int>> knowns;
        std::vector<int> unknown_cells;
    };
    System build_system(const std::vector<int>& erased_disks) const;

    int p_;
};

}  // namespace ecfrm::raid6
