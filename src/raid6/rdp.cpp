#include "raid6/rdp.h"

#include <cassert>

#include "gf/gf2_solver.h"
#include "gf/region.h"

namespace ecfrm::raid6 {

namespace {

bool is_prime(int n) {
    if (n < 2) return false;
    for (int d = 2; d * d <= n; ++d) {
        if (n % d == 0) return false;
    }
    return true;
}

}  // namespace

Result<std::unique_ptr<RdpCode>> RdpCode::make(int p) {
    if (p < 3) return Error::invalid("RDP requires p >= 3");
    if (!is_prime(p)) return Error::invalid("RDP requires prime p");
    auto code = std::unique_ptr<RdpCode>(new RdpCode(p));

    // Validate: every single and double disk erasure must be decodable.
    const int n = p + 1;
    for (int c1 = 0; c1 < n; ++c1) {
        if (!code->decodable_disks({c1})) {
            return Error::internal("RDP single-disk erasure undecodable — construction bug");
        }
        for (int c2 = c1 + 1; c2 < n; ++c2) {
            if (!code->decodable_disks({c1, c2})) {
                return Error::internal("RDP double-disk erasure undecodable — construction bug");
            }
        }
    }
    return code;
}

std::vector<int> RdpCode::row_parity_sources(int row) const {
    std::vector<int> sources;
    sources.reserve(static_cast<std::size_t>(data_disks()));
    for (int c = 0; c < data_disks(); ++c) sources.push_back(cell(row, c));
    return sources;
}

std::vector<int> RdpCode::diagonal_parity_sources(int row) const {
    // Diagonal d == row over the first p disks (data + row parity):
    // cells (r, c) with (r + c) mod p == d and r in [0, p-1).
    const int d = row;
    std::vector<int> sources;
    for (int c = 0; c < p_; ++c) {
        const int r = ((d - c) % p_ + p_) % p_;
        if (r <= p_ - 2) sources.push_back(cell(r, c));
    }
    return sources;
}

void RdpCode::encode(const std::vector<ByteSpan>& cells) const {
    assert(static_cast<int>(cells.size()) == rows_per_stripe() * disks());
    // Row parity first (diagonals include the row-parity column).
    for (int row = 0; row < rows_per_stripe(); ++row) {
        ByteSpan out = cells[static_cast<std::size_t>(cell(row, p_ - 1))];
        gf::zero_region(out);
        for (int src : row_parity_sources(row)) gf::xor_region(out, cells[static_cast<std::size_t>(src)]);
    }
    for (int row = 0; row < rows_per_stripe(); ++row) {
        ByteSpan out = cells[static_cast<std::size_t>(cell(row, p_))];
        gf::zero_region(out);
        for (int src : diagonal_parity_sources(row)) gf::xor_region(out, cells[static_cast<std::size_t>(src)]);
    }
}

RdpCode::System RdpCode::build_system(const std::vector<int>& erased_disks) const {
    System sys;
    std::vector<bool> erased(static_cast<std::size_t>(disks()), false);
    for (int d : erased_disks) erased[static_cast<std::size_t>(d)] = true;

    std::vector<int> unknown_of_cell(static_cast<std::size_t>(rows_per_stripe()) * disks(), -1);
    for (int row = 0; row < rows_per_stripe(); ++row) {
        for (int d = 0; d < disks(); ++d) {
            if (erased[static_cast<std::size_t>(d)]) {
                unknown_of_cell[static_cast<std::size_t>(cell(row, d))] =
                    static_cast<int>(sys.unknown_cells.size());
                sys.unknown_cells.push_back(cell(row, d));
            }
        }
    }

    auto add_equation = [&](int parity_cell, const std::vector<int>& sources) {
        std::vector<std::uint8_t> coeffs(sys.unknown_cells.size(), 0);
        std::vector<int> knowns;
        auto touch = [&](int c) {
            const int u = unknown_of_cell[static_cast<std::size_t>(c)];
            if (u >= 0) {
                coeffs[static_cast<std::size_t>(u)] ^= 1;
            } else {
                knowns.push_back(c);
            }
        };
        touch(parity_cell);
        for (int src : sources) touch(src);
        sys.coeffs.push_back(std::move(coeffs));
        sys.knowns.push_back(std::move(knowns));
    };

    for (int row = 0; row < rows_per_stripe(); ++row) {
        add_equation(cell(row, p_ - 1), row_parity_sources(row));
        add_equation(cell(row, p_), diagonal_parity_sources(row));
    }
    return sys;
}

bool RdpCode::decodable_disks(const std::vector<int>& erased_disks) const {
    if (erased_disks.empty()) return true;
    if (static_cast<int>(erased_disks.size()) > fault_tolerance()) return false;
    const System sys = build_system(erased_disks);
    return gf::gf2_rank(sys.coeffs) == static_cast<int>(sys.unknown_cells.size());
}

Status RdpCode::decode_disks(const std::vector<ByteSpan>& cells, const std::vector<int>& erased_disks) const {
    if (erased_disks.empty()) return Status::success();
    if (static_cast<int>(erased_disks.size()) > fault_tolerance()) {
        return Error::undecodable("RDP tolerates at most two disk erasures");
    }
    System sys = build_system(erased_disks);
    gf::Gf2System generic;
    generic.coeffs = std::move(sys.coeffs);
    generic.knowns = std::move(sys.knowns);
    generic.unknown_cells = std::move(sys.unknown_cells);
    return gf::gf2_solve(std::move(generic), cells);
}

std::size_t RdpCode::encode_xor_count() const {
    std::size_t xors = 0;
    for (int row = 0; row < rows_per_stripe(); ++row) {
        xors += row_parity_sources(row).size() - 1;
        xors += diagonal_parity_sources(row).size() - 1;
    }
    return xors;
}

}  // namespace ecfrm::raid6
