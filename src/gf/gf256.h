// GF(2^8) arithmetic with the AES-adjacent primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the polynomial used by Jerasure/ISA-L
// style storage codes.
//
// Scalar operations go through a full 64 KiB multiplication table (one load
// per product); log/exp tables back division, powers and inverses. Table
// construction happens once, lazily, and is thread-safe.
#pragma once

#include <cstdint>

namespace ecfrm::gf {

/// The field GF(2^8). All members are static; the class exists as a
/// namespace with private table state.
class Gf256 {
  public:
    static constexpr unsigned kPoly = 0x11d;  // primitive polynomial
    static constexpr unsigned kFieldSize = 256;
    static constexpr unsigned kGroupOrder = 255;  // multiplicative group order

    /// a + b and a - b coincide in characteristic 2.
    static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

    static std::uint8_t mul(std::uint8_t a, std::uint8_t b) { return tables().mul[a][b]; }

    /// a / b. Precondition: b != 0 (asserted in debug builds).
    static std::uint8_t div(std::uint8_t a, std::uint8_t b);

    /// Multiplicative inverse. Precondition: a != 0.
    static std::uint8_t inv(std::uint8_t a);

    /// a^e with e taken mod 255 (a != 0); 0^0 == 1, 0^e == 0 for e > 0.
    static std::uint8_t pow(std::uint8_t a, unsigned e);

    /// Discrete log base the generator (0x02). Precondition: a != 0.
    static unsigned log(std::uint8_t a);

    /// generator^e (e taken mod 255).
    static std::uint8_t exp(unsigned e);

    /// Pointer to the 256-entry row `mul[c][*]` — the region kernels use it
    /// to get one-lookup-per-byte multiplication.
    static const std::uint8_t* mul_row(std::uint8_t c) { return tables().mul[c]; }

  private:
    struct Tables {
        std::uint8_t exp[512];      // doubled so exp[log a + log b] needs no mod
        std::uint8_t log[256];      // log[0] unused
        std::uint8_t inv[256];      // inv[0] unused
        std::uint8_t mul[256][256];
        Tables();
    };

    static const Tables& tables();
};

}  // namespace ecfrm::gf
