#include "gf/region.h"

#include <cassert>
#include <cstring>

#include "gf/kernels.h"
#include "gf/kernels_impl.h"

namespace ecfrm::gf {

void xor_region(ByteSpan dst, ConstByteSpan src) {
    assert(dst.size() == src.size());
    if (dst.empty()) return;
    const KernelTable& t = kernels();
    t.xor_region(dst.data(), src.data(), dst.size());
    detail::note_bytes(t.tier, dst.size());
}

void mul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c) {
    assert(dst.size() == src.size());
    if (c == 0) {
        zero_region(dst);
        return;
    }
    if (c == 1) {
        copy_region(dst, src);
        return;
    }
    if (dst.empty()) return;
    const KernelTable& t = kernels();
    t.mul_region(dst.data(), src.data(), c, dst.size());
    detail::note_bytes(t.tier, dst.size());
}

void addmul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c) {
    assert(dst.size() == src.size());
    if (c == 0) return;
    if (c == 1) {
        xor_region(dst, src);
        return;
    }
    if (dst.empty()) return;
    const KernelTable& t = kernels();
    t.addmul_region(dst.data(), src.data(), c, dst.size());
    detail::note_bytes(t.tier, dst.size());
}

void zero_region(ByteSpan dst) {
    if (!dst.empty()) std::memset(dst.data(), 0, dst.size());
}

void copy_region(ByteSpan dst, ConstByteSpan src) {
    assert(dst.size() == src.size());
    if (!dst.empty()) std::memmove(dst.data(), src.data(), dst.size());
}

bool region_simd_active() { return active_tier() != SimdTier::scalar; }

void set_region_simd(bool enabled) {
    set_active_tier(enabled ? best_supported_tier() : SimdTier::scalar);
}

}  // namespace ecfrm::gf
