#include "gf/region.h"

#include <atomic>
#include <cassert>
#include <cstring>

#include "gf/gf256.h"
#include "gf/region_simd.h"

namespace ecfrm::gf {

namespace {
std::atomic<bool> g_simd_enabled{true};
}  // namespace

bool region_simd_active() { return g_simd_enabled.load() && simd::avx2_available(); }

void set_region_simd(bool enabled) { g_simd_enabled.store(enabled); }

void xor_region(ByteSpan dst, ConstByteSpan src) {
    assert(dst.size() == src.size());
    std::uint8_t* d = dst.data();
    const std::uint8_t* s = src.data();
    std::size_t n = dst.size();

    // Word-wide main loop. memcpy keeps this strict-aliasing clean; the
    // compiler lowers it to plain 64-bit loads/stores.
    while (n >= 8) {
        std::uint64_t a, b;
        std::memcpy(&a, d, 8);
        std::memcpy(&b, s, 8);
        a ^= b;
        std::memcpy(d, &a, 8);
        d += 8;
        s += 8;
        n -= 8;
    }
    while (n > 0) {
        *d++ ^= *s++;
        --n;
    }
}

void mul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c) {
    assert(dst.size() == src.size());
    if (c == 0) {
        zero_region(dst);
        return;
    }
    if (c == 1) {
        copy_region(dst, src);
        return;
    }
    if (region_simd_active()) {
        simd::mul_region_avx2(dst.data(), src.data(), c, dst.size());
        return;
    }
    const std::uint8_t* row = Gf256::mul_row(c);
    std::uint8_t* d = dst.data();
    const std::uint8_t* s = src.data();
    const std::size_t n = dst.size();
    for (std::size_t i = 0; i < n; ++i) d[i] = row[s[i]];
}

void addmul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c) {
    assert(dst.size() == src.size());
    if (c == 0) return;
    if (c == 1) {
        xor_region(dst, src);
        return;
    }
    if (region_simd_active()) {
        simd::addmul_region_avx2(dst.data(), src.data(), c, dst.size());
        return;
    }
    const std::uint8_t* row = Gf256::mul_row(c);
    std::uint8_t* d = dst.data();
    const std::uint8_t* s = src.data();
    const std::size_t n = dst.size();
    for (std::size_t i = 0; i < n; ++i) d[i] ^= row[s[i]];
}

void zero_region(ByteSpan dst) {
    if (!dst.empty()) std::memset(dst.data(), 0, dst.size());
}

void copy_region(ByteSpan dst, ConstByteSpan src) {
    assert(dst.size() == src.size());
    if (!dst.empty()) std::memmove(dst.data(), src.data(), dst.size());
}

}  // namespace ecfrm::gf
