#include "gf/bitmatrix.h"

#include <cassert>
#include <map>
#include <set>

#include "gf/gf256.h"

namespace ecfrm::gf {

int BitMatrix::row_weight(int r) const {
    int weight = 0;
    for (int c = 0; c < cols_; ++c) weight += get(r, c);
    return weight;
}

BitMatrix element_bitmatrix(std::uint8_t c) {
    constexpr int w = 8;
    BitMatrix m(w, w);
    // Column j holds the bits of c * x^j: multiplying by x is a shift plus
    // conditional reduction by the field polynomial.
    std::uint8_t col = c;
    for (int j = 0; j < w; ++j) {
        for (int i = 0; i < w; ++i) m.set(i, j, static_cast<std::uint8_t>((col >> i) & 1));
        col = Gf256::mul(col, 2);
    }
    return m;
}

BitMatrix expand_bitmatrix(const matrix::Matrix& m) {
    constexpr int w = 8;
    BitMatrix out(m.rows() * w, m.cols() * w);
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            const BitMatrix block = element_bitmatrix(m.at(r, c));
            for (int i = 0; i < w; ++i) {
                for (int j = 0; j < w; ++j) {
                    out.set(r * w + i, c * w + j, block.get(i, j));
                }
            }
        }
    }
    return out;
}

XorSchedule build_schedule(const BitMatrix& m) {
    XorSchedule schedule;
    schedule.in_subpackets = m.cols();
    schedule.out_subpackets = m.rows();
    for (int r = 0; r < m.rows(); ++r) {
        bool first = true;
        for (int c = 0; c < m.cols(); ++c) {
            if (m.get(r, c) == 0) continue;
            if (first) {
                schedule.copies.push_back({r, c});
                first = false;
            } else {
                schedule.xors.push_back({r, c});
            }
        }
        // An all-zero row means the output is identically zero; encode as a
        // copy from a sentinel handled by the executor (dst == -1 avoided:
        // we assert instead, since no sane generator has zero rows).
        assert(!first && "zero row in bit matrix");
    }
    return schedule;
}

XorSchedule build_optimized_schedule(const BitMatrix& m) {
    XorSchedule schedule;
    schedule.in_subpackets = m.cols();
    schedule.out_subpackets = m.rows();

    // Row sets over an extended id space (inputs first, intermediates
    // appended as they are created).
    std::vector<std::set<int>> rows(static_cast<std::size_t>(m.rows()));
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            if (m.get(r, c) != 0) rows[static_cast<std::size_t>(r)].insert(c);
        }
        assert(!rows[static_cast<std::size_t>(r)].empty() && "zero row in bit matrix");
    }

    // Greedy common-pair elimination: while some id pair appears in two or
    // more rows, materialise it as an intermediate and substitute.
    for (;;) {
        std::map<std::pair<int, int>, int> pair_count;
        std::pair<int, int> best{-1, -1};
        int best_count = 1;
        for (const auto& row : rows) {
            for (auto it = row.begin(); it != row.end(); ++it) {
                auto jt = it;
                for (++jt; jt != row.end(); ++jt) {
                    const int count = ++pair_count[{*it, *jt}];
                    if (count > best_count) {
                        best_count = count;
                        best = {*it, *jt};
                    }
                }
            }
        }
        if (best_count < 2) break;

        const int new_id = schedule.in_subpackets + static_cast<int>(schedule.intermediates.size());
        schedule.intermediates.push_back(best);
        for (auto& row : rows) {
            if (row.count(best.first) != 0 && row.count(best.second) != 0) {
                row.erase(best.first);
                row.erase(best.second);
                row.insert(new_id);
            }
        }
    }

    for (int r = 0; r < m.rows(); ++r) {
        bool first = true;
        for (int id : rows[static_cast<std::size_t>(r)]) {
            if (first) {
                schedule.copies.push_back({r, id});
                first = false;
            } else {
                schedule.xors.push_back({r, id});
            }
        }
    }
    return schedule;
}

}  // namespace ecfrm::gf
