// Shared GF(2) linear solver over byte-buffer cells.
//
// XOR-structured codes (X-Code, WEAVER, RDP) all reduce erasure recovery
// to the same shape: a set of parity equations, each XOR-ing some known
// cells (surviving payloads) with some unknown cells (erased payloads).
// This solver does the rank test and the Gauss-Jordan solve with the row
// operations applied to byte-buffer right-hand sides.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace ecfrm::gf {

/// One recovery system: equation e says
///   XOR_{u : coeffs[e][u] == 1} unknown_u  ==  XOR_{c in knowns[e]} cell_c.
struct Gf2System {
    std::vector<std::vector<std::uint8_t>> coeffs;  // [equation][unknown], 0/1
    std::vector<std::vector<int>> knowns;           // surviving cell ids per equation
    std::vector<int> unknown_cells;                 // cell id per unknown
};

/// Rank of a dense 0/1 matrix over GF(2) (input by value; destroyed).
int gf2_rank(std::vector<std::vector<std::uint8_t>> m);

/// True when the system determines every unknown.
bool gf2_solvable(const Gf2System& system);

/// Solve the system and write each unknown's payload into
/// cells[unknown_cells[u]]. `cells` indexes every cell id used by the
/// system; all spans share one length. Fails when under-determined.
Status gf2_solve(Gf2System system, const std::vector<ByteSpan>& cells);

}  // namespace ecfrm::gf
