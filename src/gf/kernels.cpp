#include "gf/kernels.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "common/thread_pool.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "gf/kernels_impl.h"
#include "gf/region_simd.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace ecfrm::gf {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier: the portable baseline every SIMD tier is differentially
// tested against.
// ---------------------------------------------------------------------------

void xor_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
    // Word-wide via memcpy: strict-aliasing clean, lowers to 64-bit ops.
    while (n >= 8) {
        std::uint64_t a, b;
        std::memcpy(&a, dst, 8);
        std::memcpy(&b, src, 8);
        a ^= b;
        std::memcpy(dst, &a, 8);
        dst += 8;
        src += 8;
        n -= 8;
    }
    while (n > 0) {
        *dst++ ^= *src++;
        --n;
    }
}

void mul_scalar(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c, std::size_t n) {
    detail::mul_region_tail(dst, src, c, n);
}

void addmul_scalar(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c, std::size_t n) {
    detail::addmul_region_tail(dst, src, c, n);
}

void encode_blocks_scalar(std::uint8_t* const* dsts, std::size_t m, const std::uint8_t* const* srcs,
                          std::size_t k, const std::uint8_t* coeffs, std::size_t n) {
    detail::encode_blocks_via(dsts, m, srcs, k, coeffs, n, xor_scalar, addmul_scalar,
                              /*block=*/16 * 1024);
}

void addmul16_scalar(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t c, std::size_t n) {
    detail::addmul16_words(dst, src, c, n / 2);
}

const KernelTable kTableScalar = {
    SimdTier::scalar, xor_scalar, mul_scalar, addmul_scalar, encode_blocks_scalar, addmul16_scalar,
};

// ---------------------------------------------------------------------------
// Tier selection. Resolved once on first use: best CPU tier, clamped by a
// valid ECFRM_SIMD override; set_active_tier() can re-point it later.
// ---------------------------------------------------------------------------

const KernelTable* table_of(SimdTier tier) {
    if (tier == SimdTier::scalar) return &kTableScalar;
    return simd::table_for(tier);
}

SimdTier default_tier() {
    SimdTier tier = best_supported_tier();
    if (const char* env = std::getenv("ECFRM_SIMD")) {
        SimdTier wanted;
        if (!parse_tier(env, &wanted)) {
            log_warn(std::string("ECFRM_SIMD=") + env + " is not scalar|ssse3|avx2|gfni; using " +
                     to_string(tier));
        } else if (!tier_supported(wanted)) {
            log_warn(std::string("ECFRM_SIMD=") + env + " not supported by this CPU; using " +
                     to_string(tier));
        } else {
            tier = wanted;
        }
    }
    return tier;
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* resolve_active() {
    const KernelTable* t = table_of(default_tier());
    // First resolver wins; losers adopt the published table.
    const KernelTable* expected = nullptr;
    if (g_active.compare_exchange_strong(expected, t)) return t;
    return expected;
}

// Per-tier byte counters, attached late (nullptr until observability is
// wired). Indexed by SimdTier.
std::atomic<obs::Counter*> g_bytes[kSimdTierCount] = {};

}  // namespace

namespace detail {

void note_bytes(SimdTier tier, std::size_t bytes) {
    obs::Counter* c = g_bytes[static_cast<int>(tier)].load(std::memory_order_acquire);
    if (c != nullptr) c->add(static_cast<std::int64_t>(bytes));
}

}  // namespace detail

const char* to_string(SimdTier tier) {
    switch (tier) {
        case SimdTier::scalar:
            return "scalar";
        case SimdTier::ssse3:
            return "ssse3";
        case SimdTier::avx2:
            return "avx2";
        case SimdTier::gfni:
            return "gfni";
    }
    return "unknown";
}

bool parse_tier(const std::string& name, SimdTier* out) {
    for (int t = 0; t < kSimdTierCount; ++t) {
        const SimdTier tier = static_cast<SimdTier>(t);
        if (name == to_string(tier)) {
            *out = tier;
            return true;
        }
    }
    return false;
}

bool tier_supported(SimdTier tier) {
    return tier == SimdTier::scalar || simd::cpu_supports(tier);
}

SimdTier best_supported_tier() {
    for (int t = kSimdTierCount - 1; t > 0; --t) {
        const SimdTier tier = static_cast<SimdTier>(t);
        if (simd::cpu_supports(tier)) return tier;
    }
    return SimdTier::scalar;
}

const KernelTable* kernels_for(SimdTier tier) { return table_of(tier); }

const KernelTable& kernels() {
    const KernelTable* t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) t = resolve_active();
    return *t;
}

SimdTier active_tier() { return kernels().tier; }

bool set_active_tier(SimdTier tier) {
    const KernelTable* t = table_of(tier);
    if (t == nullptr) return false;
    g_active.store(t, std::memory_order_release);
    return true;
}

void attach_kernel_metrics(obs::MetricRegistry* registry) {
    if (registry == nullptr) {
        for (auto& slot : g_bytes) slot.store(nullptr, std::memory_order_release);
        return;
    }
    registry->describe("ecfrm_gf_bytes_total",
                       "Coefficient-region bytes processed by the GF kernels, by SIMD tier "
                       "(n per single-coefficient call, m*k*n per fused encode).");
    for (int t = 0; t < kSimdTierCount; ++t) {
        const SimdTier tier = static_cast<SimdTier>(t);
        obs::Counter& c =
            registry->counter("ecfrm_gf_bytes_total", obs::Labels{{"tier", to_string(tier)}});
        g_bytes[t].store(&c, std::memory_order_release);
    }
}

// ---------------------------------------------------------------------------
// Fused high-level entry points.
// ---------------------------------------------------------------------------

namespace {

/// Regions at or above this size are sliced across the pool.
constexpr std::size_t kParallelMinBytes = 1 << 20;
/// Slice granularity: big enough to amortise dispatch, small enough to
/// spread a few-MiB region over several workers. Even and 64-aligned.
constexpr std::size_t kParallelChunkBytes = 256 << 10;

template <typename Coeff>
void encode_dispatch(const std::vector<ConstByteSpan>& srcs, const std::vector<ByteSpan>& dsts,
                     const Coeff* coeffs, ThreadPool* pool,
                     void (*run)(std::uint8_t* const*, std::size_t, const std::uint8_t* const*,
                                 std::size_t, const Coeff*, std::size_t, std::size_t)) {
    const std::size_t k = srcs.size();
    const std::size_t m = dsts.size();
    if (m == 0) return;
    const std::size_t n = dsts[0].size();
#ifndef NDEBUG
    for (const auto& d : dsts) assert(d.size() == n);
    for (const auto& s : srcs) assert(s.size() == n);
#endif
    if (k == 0 || n == 0) {
        for (const auto& d : dsts) {
            if (!d.empty()) std::memset(d.data(), 0, d.size());
        }
        return;
    }

    std::vector<std::uint8_t*> dptr(m);
    std::vector<const std::uint8_t*> sptr(k);
    for (std::size_t p = 0; p < m; ++p) dptr[p] = dsts[p].data();
    for (std::size_t j = 0; j < k; ++j) sptr[j] = srcs[j].data();

    if (pool != nullptr && pool->thread_count() > 1 && n >= kParallelMinBytes) {
        const std::size_t chunks = (n + kParallelChunkBytes - 1) / kParallelChunkBytes;
        parallel_for(*pool, chunks, [&](std::size_t ci) {
            const std::size_t off = ci * kParallelChunkBytes;
            const std::size_t len = (n - off < kParallelChunkBytes) ? n - off : kParallelChunkBytes;
            run(dptr.data(), m, sptr.data(), k, coeffs, off, len);
        });
    } else {
        run(dptr.data(), m, sptr.data(), k, coeffs, 0, n);
    }
}

void run_encode8(std::uint8_t* const* dsts, std::size_t m, const std::uint8_t* const* srcs,
                 std::size_t k, const std::uint8_t* coeffs, std::size_t off, std::size_t len) {
    // Shift the window rather than the pointer arrays: chunk counts are
    // small, so the per-chunk copies stay cheap and allocation-free.
    std::uint8_t* d[64];
    const std::uint8_t* s[64];
    std::uint8_t* const* dp = dsts;
    const std::uint8_t* const* sp = srcs;
    std::vector<std::uint8_t*> dbig;
    std::vector<const std::uint8_t*> sbig;
    if (off != 0) {
        if (m > 64 || k > 64) {
            dbig.resize(m);
            sbig.resize(k);
            for (std::size_t p = 0; p < m; ++p) dbig[p] = dsts[p] + off;
            for (std::size_t j = 0; j < k; ++j) sbig[j] = srcs[j] + off;
            dp = dbig.data();
            sp = sbig.data();
        } else {
            for (std::size_t p = 0; p < m; ++p) d[p] = dsts[p] + off;
            for (std::size_t j = 0; j < k; ++j) s[j] = srcs[j] + off;
            dp = d;
            sp = s;
        }
    }
    const KernelTable& t = kernels();
    t.encode_blocks(dp, m, sp, k, coeffs, len);
    detail::note_bytes(t.tier, m * k * len);
}

void run_encode16(std::uint8_t* const* dsts, std::size_t m, const std::uint8_t* const* srcs,
                  std::size_t k, const std::uint16_t* coeffs, std::size_t off, std::size_t len) {
    const KernelTable& t = kernels();
    constexpr std::size_t kBlock = 16 * 1024;
    for (std::size_t b = 0; b < len; b += kBlock) {
        const std::size_t blen = (len - b < kBlock) ? len - b : kBlock;
        for (std::size_t p = 0; p < m; ++p) {
            std::uint8_t* dst = dsts[p] + off + b;
            std::memset(dst, 0, blen);
            for (std::size_t j = 0; j < k; ++j) {
                const std::uint16_t c = coeffs[p * k + j];
                if (c == 0) continue;
                if (c == 1) {
                    t.xor_region(dst, srcs[j] + off + b, blen);
                } else {
                    t.addmul16_region(dst, srcs[j] + off + b, c, blen);
                }
            }
        }
    }
    detail::note_bytes(t.tier, m * k * len);
}

}  // namespace

void encode_regions(const std::vector<ConstByteSpan>& srcs, const std::vector<ByteSpan>& dsts,
                    const std::uint8_t* coeffs, ThreadPool* pool) {
    encode_dispatch(srcs, dsts, coeffs, pool, run_encode8);
}

void encode16_regions(const std::vector<ConstByteSpan>& srcs, const std::vector<ByteSpan>& dsts,
                      const std::uint16_t* coeffs16, ThreadPool* pool) {
    assert(dsts.empty() || dsts[0].size() % 2 == 0);
    encode_dispatch(srcs, dsts, coeffs16, pool, run_encode16);
}

void addmul16_region(ByteSpan dst, ConstByteSpan src, std::uint16_t c) {
    assert(dst.size() == src.size());
    assert(dst.size() % 2 == 0);
    if (c == 0 || dst.empty()) return;
    const KernelTable& t = kernels();
    if (c == 1) {
        t.xor_region(dst.data(), src.data(), dst.size());
    } else {
        t.addmul16_region(dst.data(), src.data(), c, dst.size());
    }
    detail::note_bytes(t.tier, dst.size());
}

}  // namespace ecfrm::gf
