#include "gf/gf65536.h"

#include <cassert>

namespace ecfrm::gf {

Gf65536::Tables::Tables() : exp(2 * kGroupOrder), log(kFieldSize) {
    unsigned x = 1;
    for (unsigned i = 0; i < kGroupOrder; ++i) {
        exp[i] = x;
        log[x] = static_cast<std::uint16_t>(i);
        x <<= 1;
        if (x & 0x10000) x ^= kPoly;
    }
    for (unsigned i = kGroupOrder; i < 2 * kGroupOrder; ++i) exp[i] = exp[i - kGroupOrder];
    log[0] = 0;
}

const Gf65536::Tables& Gf65536::tables() {
    static const Tables t;
    return t;
}

std::uint16_t Gf65536::mul(std::uint16_t a, std::uint16_t b) {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    return static_cast<std::uint16_t>(t.exp[t.log[a] + t.log[b]]);
}

std::uint16_t Gf65536::div(std::uint16_t a, std::uint16_t b) {
    assert(b != 0 && "division by zero in GF(2^16)");
    if (a == 0) return 0;
    const Tables& t = tables();
    return static_cast<std::uint16_t>(t.exp[t.log[a] + kGroupOrder - t.log[b]]);
}

std::uint16_t Gf65536::inv(std::uint16_t a) {
    assert(a != 0 && "inverse of zero in GF(2^16)");
    const Tables& t = tables();
    return static_cast<std::uint16_t>(t.exp[kGroupOrder - t.log[a]]);
}

std::uint16_t Gf65536::pow(std::uint16_t a, unsigned e) {
    if (a == 0) return e == 0 ? 1 : 0;
    if (e == 0) return 1;
    const Tables& t = tables();
    const unsigned l = (static_cast<unsigned long long>(t.log[a]) * e) % kGroupOrder;
    return static_cast<std::uint16_t>(t.exp[l]);
}

}  // namespace ecfrm::gf
