#include "gf/gf256.h"

#include <cassert>

namespace ecfrm::gf {

Gf256::Tables::Tables() {
    // Generate the multiplicative group from the generator 0x02.
    unsigned x = 1;
    for (unsigned i = 0; i < kGroupOrder; ++i) {
        exp[i] = static_cast<std::uint8_t>(x);
        log[x] = static_cast<std::uint8_t>(i);
        x <<= 1;
        if (x & 0x100) x ^= kPoly;
    }
    for (unsigned i = kGroupOrder; i < 512; ++i) exp[i] = exp[i - kGroupOrder];
    log[0] = 0;  // never consulted; keeps the table fully initialised

    inv[0] = 0;
    for (unsigned a = 1; a < kFieldSize; ++a) {
        inv[a] = exp[kGroupOrder - log[a]];
    }

    for (unsigned a = 0; a < kFieldSize; ++a) {
        mul[0][a] = 0;
        mul[a][0] = 0;
    }
    for (unsigned a = 1; a < kFieldSize; ++a) {
        for (unsigned b = 1; b < kFieldSize; ++b) {
            mul[a][b] = exp[log[a] + log[b]];
        }
    }
}

const Gf256::Tables& Gf256::tables() {
    static const Tables t;  // thread-safe magic static
    return t;
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
    assert(b != 0 && "division by zero in GF(2^8)");
    if (a == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + kGroupOrder - t.log[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) {
    assert(a != 0 && "inverse of zero in GF(2^8)");
    return tables().inv[a];
}

std::uint8_t Gf256::pow(std::uint8_t a, unsigned e) {
    if (a == 0) return e == 0 ? 1 : 0;
    if (e == 0) return 1;
    const Tables& t = tables();
    const unsigned l = (static_cast<unsigned long long>(t.log[a]) * e) % kGroupOrder;
    return t.exp[l];
}

unsigned Gf256::log(std::uint8_t a) {
    assert(a != 0 && "log of zero in GF(2^8)");
    return tables().log[a];
}

std::uint8_t Gf256::exp(unsigned e) { return tables().exp[e % kGroupOrder]; }

}  // namespace ecfrm::gf
