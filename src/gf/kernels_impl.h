// Internal helpers shared by the kernel translation units (kernels.cpp and
// region_simd.cpp): scalar tail loops, the cache-blocked generic fused
// encode used by tiers without a register-accumulating kernel, and the
// per-tier byte accounting hook. Not part of the public gf API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "gf/kernels.h"

namespace ecfrm::gf::detail {

using XorFn = void (*)(std::uint8_t*, const std::uint8_t*, std::size_t);
using MulFn = void (*)(std::uint8_t*, const std::uint8_t*, std::uint8_t, std::size_t);

/// Feed ecfrm_gf_bytes_total{tier} (no-op until metrics are attached).
void note_bytes(SimdTier tier, std::size_t bytes);

inline void mul_region_tail(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                            std::size_t n) {
    const std::uint8_t* row = Gf256::mul_row(c);
    for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

inline void addmul_region_tail(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                               std::size_t n) {
    const std::uint8_t* row = Gf256::mul_row(c);
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

/// Scalar fused-encode tail over [off, n): used by the SIMD kernels for the
/// sub-vector remainder of every region.
inline void encode_blocks_tail(std::uint8_t* const* dsts, std::size_t m,
                               const std::uint8_t* const* srcs, std::size_t k,
                               const std::uint8_t* coeffs, std::size_t off, std::size_t n) {
    const std::size_t len = n - off;
    if (len == 0) return;
    for (std::size_t p = 0; p < m; ++p) {
        std::uint8_t* d = dsts[p] + off;
        std::memset(d, 0, len);
        for (std::size_t j = 0; j < k; ++j) {
            const std::uint8_t c = coeffs[p * k + j];
            if (c == 0) continue;
            const std::uint8_t* s = srcs[j] + off;
            if (c == 1) {
                for (std::size_t i = 0; i < len; ++i) d[i] ^= s[i];
            } else {
                addmul_region_tail(d, s, c, len);
            }
        }
    }
}

/// Cache-blocked generic fused encode built from single-coefficient
/// kernels: per block every destination accumulates all k sources while
/// the block is cache-hot, so destinations are touched once per block
/// instead of once per (source, destination) pair over the full region.
inline void encode_blocks_via(std::uint8_t* const* dsts, std::size_t m,
                              const std::uint8_t* const* srcs, std::size_t k,
                              const std::uint8_t* coeffs, std::size_t n, XorFn xorf, MulFn addmulf,
                              std::size_t block) {
    for (std::size_t off = 0; off < n; off += block) {
        const std::size_t len = (n - off < block) ? (n - off) : block;
        for (std::size_t p = 0; p < m; ++p) {
            std::uint8_t* d = dsts[p] + off;
            std::memset(d, 0, len);
            for (std::size_t j = 0; j < k; ++j) {
                const std::uint8_t c = coeffs[p * k + j];
                if (c == 0) continue;
                const std::uint8_t* s = srcs[j] + off;
                if (c == 1) {
                    xorf(d, s, len);
                } else {
                    addmulf(d, s, c, len);
                }
            }
        }
    }
}

/// Scalar GF(2^16) multiply-accumulate over `words` 16-bit LE symbols via
/// four 16-entry split tables (one per nibble of the source symbol).
inline void addmul16_words(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t c,
                           std::size_t words) {
    std::uint16_t tab[4][16];
    for (int t = 0; t < 4; ++t) {
        for (int x = 0; x < 16; ++x) {
            tab[t][x] = Gf65536::mul(c, static_cast<std::uint16_t>(x << (4 * t)));
        }
    }
    for (std::size_t i = 0; i < words; ++i) {
        std::uint16_t s, d;
        std::memcpy(&s, src + 2 * i, 2);
        std::memcpy(&d, dst + 2 * i, 2);
        d ^= static_cast<std::uint16_t>(tab[0][s & 0xf] ^ tab[1][(s >> 4) & 0xf] ^
                                        tab[2][(s >> 8) & 0xf] ^ tab[3][(s >> 12) & 0xf]);
        std::memcpy(dst + 2 * i, &d, 2);
    }
}

}  // namespace ecfrm::gf::detail
