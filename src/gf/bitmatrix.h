// Bit-matrix representation of GF(2^w) linear maps (Jerasure/Cauchy-RS
// style): every field element c expands to a w x w matrix of bits over
// GF(2) describing y = c * x on the bit level. A generator matrix over
// GF(2^w) then expands to a (rows*w) x (cols*w) bit matrix, and encoding
// becomes pure XOR of w-bit sub-packets — no multiplication tables on the
// data path.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/matrix.h"

namespace ecfrm::gf {

/// Dense bit matrix, row-major, one byte per bit (simple and fast enough
/// for schedule CONSTRUCTION; the data path uses the derived schedules,
/// not this structure).
class BitMatrix {
  public:
    BitMatrix() = default;
    BitMatrix(int rows, int cols) : rows_(rows), cols_(cols), bits_(static_cast<std::size_t>(rows) * cols, 0) {}

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    std::uint8_t get(int r, int c) const { return bits_[static_cast<std::size_t>(r) * cols_ + c]; }
    void set(int r, int c, std::uint8_t v) { bits_[static_cast<std::size_t>(r) * cols_ + c] = v & 1; }

    friend bool operator==(const BitMatrix&, const BitMatrix&) = default;

    /// Number of ones in row r (the XOR count of that output bit).
    int row_weight(int r) const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<std::uint8_t> bits_;
};

/// The w x w bit matrix of "multiply by c" in GF(2^8) (w = 8, polynomial
/// 0x11d): column j is the bit pattern of c * x^j.
BitMatrix element_bitmatrix(std::uint8_t c);

/// Expand a GF(2^8) matrix into its (rows*8) x (cols*8) bit matrix.
BitMatrix expand_bitmatrix(const matrix::Matrix& m);

/// One XOR schedule op: dst_subrow ^= src_subrow. Source ids index the
/// flat sub-packet space: [0, in_subpackets) are inputs, ids >= that are
/// intermediates produced by the optimizer.
struct XorOp {
    int dst;
    int src;
};

/// Turn a bit matrix into a flat XOR schedule: output sub-packet i is the
/// XOR of the input sub-packets whose bit is set in row i. The first
/// source of each output uses a copy.
///
/// Optimized schedules additionally define intermediate sub-packets — each
/// the XOR of two earlier ids — which outputs (and later intermediates)
/// may reference; this is greedy common-pair elimination, the standard
/// technique for shrinking XOR counts of structured generators.
struct XorSchedule {
    int in_subpackets = 0;
    int out_subpackets = 0;
    /// intermediate j (id = in_subpackets + j) = ids first ^ second; each
    /// referenced id precedes it.
    std::vector<std::pair<int, int>> intermediates;
    std::vector<XorOp> copies;  // output dst = src (first term of each row)
    std::vector<XorOp> xors;    // output dst ^= src (remaining terms)

    /// Total XOR ops per application (intermediates + output xors) — the
    /// classic schedule-cost metric.
    std::size_t xor_count() const { return intermediates.size() + xors.size(); }
};

XorSchedule build_schedule(const BitMatrix& m);

/// Same outputs, fewer XORs: greedily extract sub-packet pairs shared by
/// two or more rows into intermediates until no pair repeats.
XorSchedule build_optimized_schedule(const BitMatrix& m);

}  // namespace ecfrm::gf
