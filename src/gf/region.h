// Region kernels: bulk XOR / constant-multiply / multiply-accumulate over
// byte buffers. These are the inner loops of every encode and decode. All
// of them route through the runtime-dispatched kernel table (gf/kernels.h):
// scalar / SSSE3 / AVX2 / GFNI, selected once from CPUID and overridable
// with ECFRM_SIMD. The fused multi-source entry points (encode_regions)
// also live in kernels.h.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace ecfrm::gf {

/// dst ^= src, byte-wise. Spans must be the same length.
void xor_region(ByteSpan dst, ConstByteSpan src);

/// dst = c * src over GF(2^8). c == 0 zeroes dst; c == 1 copies.
void mul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c);

/// dst ^= c * src over GF(2^8) — the encode/decode workhorse.
/// c == 0 is a no-op; c == 1 degrades to xor_region.
void addmul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c);

/// dst = 0.
void zero_region(ByteSpan dst);

/// dst = src (plain copy, here for symmetry with the kernels above).
void copy_region(ByteSpan dst, ConstByteSpan src);

/// True when the GF multiply kernels are running any SIMD tier (i.e.
/// active_tier() != SimdTier::scalar). Kept for existing callers; new code
/// should use the tier API in gf/kernels.h.
bool region_simd_active();

/// Testing hook: false forces the scalar tier, true restores the best tier
/// the CPU supports. Equivalent to set_active_tier() in gf/kernels.h.
void set_region_simd(bool enabled);

}  // namespace ecfrm::gf
