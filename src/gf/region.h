// Region kernels: bulk XOR / constant-multiply / multiply-accumulate over
// byte buffers. These are the inner loops of every encode and decode; the
// XOR path is widened to 64-bit words and the GF paths use one table lookup
// per byte via Gf256::mul_row.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace ecfrm::gf {

/// dst ^= src, byte-wise. Spans must be the same length.
void xor_region(ByteSpan dst, ConstByteSpan src);

/// dst = c * src over GF(2^8). c == 0 zeroes dst; c == 1 copies.
void mul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c);

/// dst ^= c * src over GF(2^8) — the encode/decode workhorse.
/// c == 0 is a no-op; c == 1 degrades to xor_region.
void addmul_region(ByteSpan dst, ConstByteSpan src, std::uint8_t c);

/// dst = 0.
void zero_region(ByteSpan dst);

/// dst = src (plain copy, here for symmetry with the kernels above).
void copy_region(ByteSpan dst, ConstByteSpan src);

/// True when the GF multiply kernels are running the AVX2 split-table
/// path on this machine.
bool region_simd_active();

/// Testing hook: force the scalar path (true re-enables auto-detection).
void set_region_simd(bool enabled);

}  // namespace ecfrm::gf
