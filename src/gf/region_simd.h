// Internal: x86 SIMD kernel tables for the GF dispatch layer (kernels.h).
//
// Three tiers share the GF-Complete "SPLIT 8,4" idea — multiply-by-c via
// two 16-entry nibble tables and a byte shuffle — at widening vector
// widths, with GFNI swapping the table pair for a single affine transform:
//   ssse3  128-bit pshufb nibble tables
//   avx2   256-bit vpshufb nibble tables (the paper-premise workhorse)
//   gfni   256-bit VGF2P8AFFINEQB: multiply-by-c as an 8x8 GF(2) bit matrix
// Nibble tables come from a static 8 KiB bank (256 coefficients, built
// once) instead of being rebuilt per call; GFNI uses a parallel 2 KiB bank
// of affine matrices.
//
// Everything here is compiled with function-level target attributes inside
// an x86 arch guard; non-x86 builds get stubs that report no support. Only
// kernels.cpp consumes this header.
#pragma once

#include "gf/kernels.h"

namespace ecfrm::gf::simd {

/// CPUID check for one tier (scalar -> true, checked once per tier).
bool cpu_supports(SimdTier tier);

/// Kernel table for an x86 tier, or nullptr when this build or CPU cannot
/// run it (always nullptr for SimdTier::scalar — kernels.cpp owns that).
const KernelTable* table_for(SimdTier tier);

}  // namespace ecfrm::gf::simd
