// Internal: AVX2 split-table GF(2^8) region kernels (vpshufb on 4-bit
// nibble tables — the GF-Complete "SPLIT 8,4" technique the paper's
// performance premise rests on). Compiled with a function-level target
// attribute; callers must check avx2_available() before use.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ecfrm::gf::simd {

/// True when the running CPU supports AVX2 (checked once).
bool avx2_available();

/// dst ^= c * src over GF(2^8), AVX2 path. Handles any length (scalar
/// tail). Preconditions: c != 0, c != 1 (callers fold those cases).
void addmul_region_avx2(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c, std::size_t n);

/// dst = c * src over GF(2^8), AVX2 path. Same preconditions.
void mul_region_avx2(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c, std::size_t n);

}  // namespace ecfrm::gf::simd
