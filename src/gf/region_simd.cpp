#include "gf/region_simd.h"

#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "gf/kernels_impl.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace ecfrm::gf::simd {

namespace {

// ---------------------------------------------------------------------------
// Coefficient table banks, built once. 8 KiB of nibble tables (SPLIT 8,4:
// lo[x] = c*x, hi[x] = c*(x<<4)) plus 2 KiB of GFNI affine matrices — the
// per-call build_tables() cost of the old AVX2 path is gone.
// ---------------------------------------------------------------------------

struct NibbleTables {
    alignas(16) std::uint8_t lo[16];
    alignas(16) std::uint8_t hi[16];
};

// VGF2P8AFFINEQB computes result bit i as parity(A.byte[7-i] & x): byte 7-i
// of the matrix holds the mask of input bits feeding output bit i. GF
// multiplication by c is linear over GF(2), so column j of that matrix is
// c * 2^j and the mask for output bit i collects bit i of each column.
std::uint64_t affine_of(std::uint8_t c) {
    std::uint8_t col[8];
    for (int j = 0; j < 8; ++j) col[j] = Gf256::mul(c, static_cast<std::uint8_t>(1u << j));
    std::uint64_t a = 0;
    for (int i = 0; i < 8; ++i) {
        std::uint8_t row = 0;
        for (int j = 0; j < 8; ++j) {
            row |= static_cast<std::uint8_t>(((col[j] >> i) & 1u) << j);
        }
        a |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
    }
    return a;
}

struct Banks {
    NibbleTables nib[256];
    std::uint64_t affine[256];
    Banks() {
        for (int c = 0; c < 256; ++c) {
            for (int x = 0; x < 16; ++x) {
                nib[c].lo[x] = Gf256::mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(x));
                nib[c].hi[x] =
                    Gf256::mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(x << 4));
            }
            affine[c] = affine_of(static_cast<std::uint8_t>(c));
        }
    }
};

const Banks& banks() {
    static const Banks b;
    return b;
}

// ---------------------------------------------------------------------------
// XOR kernels (the c == 1 fast path of every parity row).
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) void xor_sse2(std::uint8_t* dst, const std::uint8_t* src,
                                              std::size_t n) {
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
        const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, s));
    }
    for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void xor_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                              std::size_t n) {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        const __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
        const __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d0, s0));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), _mm256_xor_si256(d1, s1));
    }
    for (; i + 32 <= n; i += 32) {
        const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, s));
    }
    for (; i < n; ++i) dst[i] ^= src[i];
}

// ---------------------------------------------------------------------------
// SSSE3 tier: 128-bit pshufb nibble tables.
// ---------------------------------------------------------------------------

__attribute__((target("ssse3"))) void mul_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                                                std::uint8_t c, std::size_t n) {
    const NibbleTables& t = banks().nib[c];
    const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
    const __m128i mask = _mm_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i lo = _mm_and_si128(v, mask);
        const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi)));
    }
    detail::mul_region_tail(dst + i, src + i, c, n - i);
}

__attribute__((target("ssse3"))) void addmul_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                                                   std::uint8_t c, std::size_t n) {
    const NibbleTables& t = banks().nib[c];
    const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
    const __m128i mask = _mm_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i lo = _mm_and_si128(v, mask);
        const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
        const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
        const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, prod));
    }
    detail::addmul_region_tail(dst + i, src + i, c, n - i);
}

void encode_blocks_ssse3(std::uint8_t* const* dsts, std::size_t m, const std::uint8_t* const* srcs,
                         std::size_t k, const std::uint8_t* coeffs, std::size_t n) {
    detail::encode_blocks_via(dsts, m, srcs, k, coeffs, n, xor_sse2, addmul_ssse3,
                              /*block=*/16 * 1024);
}

__attribute__((target("ssse3"))) void addmul16_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                                                     std::uint16_t c, std::size_t n) {
    // Split tables per nibble position of the 16-bit symbol, separated into
    // low and high product bytes so pshufb can gather each half.
    alignas(16) std::uint8_t tl[4][16];
    alignas(16) std::uint8_t th[4][16];
    for (int t = 0; t < 4; ++t) {
        for (int x = 0; x < 16; ++x) {
            const std::uint16_t p = Gf65536::mul(c, static_cast<std::uint16_t>(x << (4 * t)));
            tl[t][x] = static_cast<std::uint8_t>(p & 0xff);
            th[t][x] = static_cast<std::uint8_t>(p >> 8);
        }
    }
    __m128i TL[4];
    __m128i TH[4];
    for (int t = 0; t < 4; ++t) {
        TL[t] = _mm_load_si128(reinterpret_cast<const __m128i*>(tl[t]));
        TH[t] = _mm_load_si128(reinterpret_cast<const __m128i*>(th[t]));
    }
    const __m128i nib = _mm_set1_epi16(0x000f);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i losym = _mm_and_si128(v, _mm_set1_epi16(0x00ff));
        const __m128i hisym = _mm_srli_epi16(v, 8);
        const __m128i idx[4] = {_mm_and_si128(losym, nib), _mm_srli_epi16(losym, 4),
                                _mm_and_si128(hisym, nib), _mm_srli_epi16(hisym, 4)};
        __m128i prod = _mm_setzero_si128();
        for (int t = 0; t < 4; ++t) {
            // Index vectors carry a nibble in each even byte and zero in
            // each odd byte; entry 0 of every table is 0 (c*0), so the odd
            // bytes of the shuffles contribute nothing.
            prod = _mm_xor_si128(prod, _mm_shuffle_epi8(TL[t], idx[t]));
            prod = _mm_xor_si128(prod, _mm_slli_epi16(_mm_shuffle_epi8(TH[t], idx[t]), 8));
        }
        const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, prod));
    }
    detail::addmul16_words(dst + i, src + i, c, (n - i) / 2);
}

// ---------------------------------------------------------------------------
// AVX2 tier: 256-bit vpshufb nibble tables, plus register-accumulating
// fused encode in destination groups of three (six accumulator registers,
// 64-byte segments) so each source byte is loaded once per group instead of
// once per destination, and destinations are written exactly once.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void mul_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                              std::uint8_t c, std::size_t n) {
    const NibbleTables& t = banks().nib[c];
    const __m256i tlo =
        _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
    const __m256i thi =
        _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
    const __m256i mask = _mm256_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i lo = _mm256_and_si256(v, mask);
        const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo), _mm256_shuffle_epi8(thi, hi)));
    }
    detail::mul_region_tail(dst + i, src + i, c, n - i);
}

__attribute__((target("avx2"))) void addmul_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                 std::uint8_t c, std::size_t n) {
    const NibbleTables& t = banks().nib[c];
    const __m256i tlo =
        _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
    const __m256i thi =
        _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
    const __m256i mask = _mm256_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i lo = _mm256_and_si256(v, mask);
        const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        const __m256i prod =
            _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo), _mm256_shuffle_epi8(thi, hi));
        const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, prod));
    }
    detail::addmul_region_tail(dst + i, src + i, c, n - i);
}

// Multiply-accumulate one 64-byte segment pair (v0, v1) into (a0, a1) by
// coefficient table t — the inner step of every fused AVX2 group kernel.
#define ECFRM_AVX2_ACC(t, lo0, hi0, lo1, hi1, a0, a1)                                         \
    do {                                                                                      \
        const __m256i tlo_ =                                                                  \
            _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>((t).lo))); \
        const __m256i thi_ =                                                                  \
            _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>((t).hi))); \
        (a0) = _mm256_xor_si256(                                                              \
            (a0), _mm256_xor_si256(_mm256_shuffle_epi8(tlo_, (lo0)), _mm256_shuffle_epi8(thi_, (hi0)))); \
        (a1) = _mm256_xor_si256(                                                              \
            (a1), _mm256_xor_si256(_mm256_shuffle_epi8(tlo_, (lo1)), _mm256_shuffle_epi8(thi_, (hi1)))); \
    } while (0)

__attribute__((target("avx2"))) void enc1_avx2(std::uint8_t* d0, const std::uint8_t* const* srcs,
                                               std::size_t k, const std::uint8_t* c0,
                                               std::size_t begin, std::size_t end) {
    const Banks& bk = banks();
    const __m256i mask = _mm256_set1_epi8(0x0f);
    for (std::size_t off = begin; off < end; off += 64) {
        __m256i a00 = _mm256_setzero_si256();
        __m256i a01 = _mm256_setzero_si256();
        for (std::size_t j = 0; j < k; ++j) {
            if (c0[j] == 0) continue;
            const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off));
            const __m256i v1 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off + 32));
            const __m256i lo0 = _mm256_and_si256(v0, mask);
            const __m256i hi0 = _mm256_and_si256(_mm256_srli_epi64(v0, 4), mask);
            const __m256i lo1 = _mm256_and_si256(v1, mask);
            const __m256i hi1 = _mm256_and_si256(_mm256_srli_epi64(v1, 4), mask);
            ECFRM_AVX2_ACC(bk.nib[c0[j]], lo0, hi0, lo1, hi1, a00, a01);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off), a00);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off + 32), a01);
    }
}

__attribute__((target("avx2"))) void enc2_avx2(std::uint8_t* d0, std::uint8_t* d1,
                                               const std::uint8_t* const* srcs, std::size_t k,
                                               const std::uint8_t* c0, const std::uint8_t* c1,
                                               std::size_t begin, std::size_t end) {
    const Banks& bk = banks();
    const __m256i mask = _mm256_set1_epi8(0x0f);
    for (std::size_t off = begin; off < end; off += 64) {
        __m256i a00 = _mm256_setzero_si256();
        __m256i a01 = _mm256_setzero_si256();
        __m256i a10 = _mm256_setzero_si256();
        __m256i a11 = _mm256_setzero_si256();
        for (std::size_t j = 0; j < k; ++j) {
            if (c0[j] == 0 && c1[j] == 0) continue;
            const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off));
            const __m256i v1 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off + 32));
            const __m256i lo0 = _mm256_and_si256(v0, mask);
            const __m256i hi0 = _mm256_and_si256(_mm256_srli_epi64(v0, 4), mask);
            const __m256i lo1 = _mm256_and_si256(v1, mask);
            const __m256i hi1 = _mm256_and_si256(_mm256_srli_epi64(v1, 4), mask);
            if (c0[j] != 0) ECFRM_AVX2_ACC(bk.nib[c0[j]], lo0, hi0, lo1, hi1, a00, a01);
            if (c1[j] != 0) ECFRM_AVX2_ACC(bk.nib[c1[j]], lo0, hi0, lo1, hi1, a10, a11);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off), a00);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off + 32), a01);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off), a10);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off + 32), a11);
    }
}

__attribute__((target("avx2"))) void enc3_avx2(std::uint8_t* d0, std::uint8_t* d1, std::uint8_t* d2,
                                               const std::uint8_t* const* srcs, std::size_t k,
                                               const std::uint8_t* c0, const std::uint8_t* c1,
                                               const std::uint8_t* c2, std::size_t begin,
                                               std::size_t end) {
    const Banks& bk = banks();
    const __m256i mask = _mm256_set1_epi8(0x0f);
    for (std::size_t off = begin; off < end; off += 64) {
        __m256i a00 = _mm256_setzero_si256();
        __m256i a01 = _mm256_setzero_si256();
        __m256i a10 = _mm256_setzero_si256();
        __m256i a11 = _mm256_setzero_si256();
        __m256i a20 = _mm256_setzero_si256();
        __m256i a21 = _mm256_setzero_si256();
        for (std::size_t j = 0; j < k; ++j) {
            const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off));
            const __m256i v1 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off + 32));
            const __m256i lo0 = _mm256_and_si256(v0, mask);
            const __m256i hi0 = _mm256_and_si256(_mm256_srli_epi64(v0, 4), mask);
            const __m256i lo1 = _mm256_and_si256(v1, mask);
            const __m256i hi1 = _mm256_and_si256(_mm256_srli_epi64(v1, 4), mask);
            if (c0[j] != 0) ECFRM_AVX2_ACC(bk.nib[c0[j]], lo0, hi0, lo1, hi1, a00, a01);
            if (c1[j] != 0) ECFRM_AVX2_ACC(bk.nib[c1[j]], lo0, hi0, lo1, hi1, a10, a11);
            if (c2[j] != 0) ECFRM_AVX2_ACC(bk.nib[c2[j]], lo0, hi0, lo1, hi1, a20, a21);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off), a00);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off + 32), a01);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off), a10);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off + 32), a11);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d2 + off), a20);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d2 + off + 32), a21);
    }
}

#undef ECFRM_AVX2_ACC

void encode_blocks_avx2(std::uint8_t* const* dsts, std::size_t m, const std::uint8_t* const* srcs,
                        std::size_t k, const std::uint8_t* coeffs, std::size_t n) {
    const std::size_t body = n & ~static_cast<std::size_t>(63);
    // Block the byte range so the k source slices stay L2-resident across
    // all ceil(m/3) group passes.
    constexpr std::size_t kBlock = 128 * 1024;
    for (std::size_t begin = 0; begin < body; begin += kBlock) {
        const std::size_t end = (body - begin < kBlock) ? body : begin + kBlock;
        std::size_t p = 0;
        for (; p + 3 <= m; p += 3) {
            enc3_avx2(dsts[p], dsts[p + 1], dsts[p + 2], srcs, k, coeffs + p * k,
                      coeffs + (p + 1) * k, coeffs + (p + 2) * k, begin, end);
        }
        if (m - p == 2) {
            enc2_avx2(dsts[p], dsts[p + 1], srcs, k, coeffs + p * k, coeffs + (p + 1) * k, begin,
                      end);
        } else if (m - p == 1) {
            enc1_avx2(dsts[p], srcs, k, coeffs + p * k, begin, end);
        }
    }
    detail::encode_blocks_tail(dsts, m, srcs, k, coeffs, body, n);
}

__attribute__((target("avx2"))) void addmul16_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                   std::uint16_t c, std::size_t n) {
    alignas(16) std::uint8_t tl[4][16];
    alignas(16) std::uint8_t th[4][16];
    for (int t = 0; t < 4; ++t) {
        for (int x = 0; x < 16; ++x) {
            const std::uint16_t p = Gf65536::mul(c, static_cast<std::uint16_t>(x << (4 * t)));
            tl[t][x] = static_cast<std::uint8_t>(p & 0xff);
            th[t][x] = static_cast<std::uint8_t>(p >> 8);
        }
    }
    __m256i TL[4];
    __m256i TH[4];
    for (int t = 0; t < 4; ++t) {
        TL[t] = _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(tl[t])));
        TH[t] = _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(th[t])));
    }
    const __m256i nib = _mm256_set1_epi16(0x000f);
    const __m256i lomask = _mm256_set1_epi16(0x00ff);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i losym = _mm256_and_si256(v, lomask);
        const __m256i hisym = _mm256_srli_epi16(v, 8);
        const __m256i idx[4] = {_mm256_and_si256(losym, nib), _mm256_srli_epi16(losym, 4),
                                _mm256_and_si256(hisym, nib), _mm256_srli_epi16(hisym, 4)};
        __m256i prod = _mm256_setzero_si256();
        for (int t = 0; t < 4; ++t) {
            // Even bytes of idx hold a nibble, odd bytes are zero; table
            // entry 0 is the zero product, so odd lanes stay clean.
            prod = _mm256_xor_si256(prod, _mm256_shuffle_epi8(TL[t], idx[t]));
            prod = _mm256_xor_si256(prod, _mm256_slli_epi16(_mm256_shuffle_epi8(TH[t], idx[t]), 8));
        }
        const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, prod));
    }
    detail::addmul16_words(dst + i, src + i, c, (n - i) / 2);
}

// ---------------------------------------------------------------------------
// GFNI tier: multiply-by-c as one VGF2P8AFFINEQB per 32 bytes (VEX-encoded,
// needs AVX2 + GFNI). One affine register per coefficient instead of a
// table pair frees enough registers for destination groups of four.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,gfni"))) void mul_gfni(std::uint8_t* dst, const std::uint8_t* src,
                                                   std::uint8_t c, std::size_t n) {
    const __m256i A = _mm256_set1_epi64x(static_cast<long long>(banks().affine[c]));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_gf2p8affine_epi64_epi8(v, A, 0));
    }
    detail::mul_region_tail(dst + i, src + i, c, n - i);
}

__attribute__((target("avx2,gfni"))) void addmul_gfni(std::uint8_t* dst, const std::uint8_t* src,
                                                      std::uint8_t c, std::size_t n) {
    const __m256i A = _mm256_set1_epi64x(static_cast<long long>(banks().affine[c]));
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
        const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        const __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(d0, _mm256_gf2p8affine_epi64_epi8(v0, A, 0)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                            _mm256_xor_si256(d1, _mm256_gf2p8affine_epi64_epi8(v1, A, 0)));
    }
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(d, _mm256_gf2p8affine_epi64_epi8(v, A, 0)));
    }
    detail::addmul_region_tail(dst + i, src + i, c, n - i);
}

#define ECFRM_GFNI_ACC(aff, v0, v1, a0, a1)                                                \
    do {                                                                                   \
        const __m256i A_ = _mm256_set1_epi64x(static_cast<long long>(aff));                \
        (a0) = _mm256_xor_si256((a0), _mm256_gf2p8affine_epi64_epi8((v0), A_, 0));         \
        (a1) = _mm256_xor_si256((a1), _mm256_gf2p8affine_epi64_epi8((v1), A_, 0));         \
    } while (0)

__attribute__((target("avx2,gfni"))) void enc1_gfni(std::uint8_t* d0,
                                                    const std::uint8_t* const* srcs, std::size_t k,
                                                    const std::uint8_t* c0, std::size_t begin,
                                                    std::size_t end) {
    const Banks& bk = banks();
    for (std::size_t off = begin; off < end; off += 64) {
        __m256i a00 = _mm256_setzero_si256();
        __m256i a01 = _mm256_setzero_si256();
        for (std::size_t j = 0; j < k; ++j) {
            if (c0[j] == 0) continue;
            const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off));
            const __m256i v1 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off + 32));
            ECFRM_GFNI_ACC(bk.affine[c0[j]], v0, v1, a00, a01);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off), a00);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off + 32), a01);
    }
}

__attribute__((target("avx2,gfni"))) void enc2_gfni(std::uint8_t* d0, std::uint8_t* d1,
                                                    const std::uint8_t* const* srcs, std::size_t k,
                                                    const std::uint8_t* c0, const std::uint8_t* c1,
                                                    std::size_t begin, std::size_t end) {
    const Banks& bk = banks();
    for (std::size_t off = begin; off < end; off += 64) {
        __m256i a00 = _mm256_setzero_si256();
        __m256i a01 = _mm256_setzero_si256();
        __m256i a10 = _mm256_setzero_si256();
        __m256i a11 = _mm256_setzero_si256();
        for (std::size_t j = 0; j < k; ++j) {
            if (c0[j] == 0 && c1[j] == 0) continue;
            const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off));
            const __m256i v1 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off + 32));
            if (c0[j] != 0) ECFRM_GFNI_ACC(bk.affine[c0[j]], v0, v1, a00, a01);
            if (c1[j] != 0) ECFRM_GFNI_ACC(bk.affine[c1[j]], v0, v1, a10, a11);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off), a00);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off + 32), a01);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off), a10);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off + 32), a11);
    }
}

__attribute__((target("avx2,gfni"))) void enc4_gfni(std::uint8_t* d0, std::uint8_t* d1,
                                                    std::uint8_t* d2, std::uint8_t* d3,
                                                    const std::uint8_t* const* srcs, std::size_t k,
                                                    const std::uint8_t* c0, const std::uint8_t* c1,
                                                    const std::uint8_t* c2, const std::uint8_t* c3,
                                                    std::size_t begin, std::size_t end) {
    const Banks& bk = banks();
    for (std::size_t off = begin; off < end; off += 64) {
        __m256i a00 = _mm256_setzero_si256();
        __m256i a01 = _mm256_setzero_si256();
        __m256i a10 = _mm256_setzero_si256();
        __m256i a11 = _mm256_setzero_si256();
        __m256i a20 = _mm256_setzero_si256();
        __m256i a21 = _mm256_setzero_si256();
        __m256i a30 = _mm256_setzero_si256();
        __m256i a31 = _mm256_setzero_si256();
        for (std::size_t j = 0; j < k; ++j) {
            const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off));
            const __m256i v1 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + off + 32));
            if (c0[j] != 0) ECFRM_GFNI_ACC(bk.affine[c0[j]], v0, v1, a00, a01);
            if (c1[j] != 0) ECFRM_GFNI_ACC(bk.affine[c1[j]], v0, v1, a10, a11);
            if (c2[j] != 0) ECFRM_GFNI_ACC(bk.affine[c2[j]], v0, v1, a20, a21);
            if (c3[j] != 0) ECFRM_GFNI_ACC(bk.affine[c3[j]], v0, v1, a30, a31);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off), a00);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d0 + off + 32), a01);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off), a10);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d1 + off + 32), a11);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d2 + off), a20);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d2 + off + 32), a21);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d3 + off), a30);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d3 + off + 32), a31);
    }
}

#undef ECFRM_GFNI_ACC

void encode_blocks_gfni(std::uint8_t* const* dsts, std::size_t m, const std::uint8_t* const* srcs,
                        std::size_t k, const std::uint8_t* coeffs, std::size_t n) {
    const std::size_t body = n & ~static_cast<std::size_t>(63);
    constexpr std::size_t kBlock = 128 * 1024;
    for (std::size_t begin = 0; begin < body; begin += kBlock) {
        const std::size_t end = (body - begin < kBlock) ? body : begin + kBlock;
        std::size_t p = 0;
        for (; p + 4 <= m; p += 4) {
            enc4_gfni(dsts[p], dsts[p + 1], dsts[p + 2], dsts[p + 3], srcs, k, coeffs + p * k,
                      coeffs + (p + 1) * k, coeffs + (p + 2) * k, coeffs + (p + 3) * k, begin, end);
        }
        for (; p + 2 <= m; p += 2) {
            enc2_gfni(dsts[p], dsts[p + 1], srcs, k, coeffs + p * k, coeffs + (p + 1) * k, begin,
                      end);
        }
        if (p < m) enc1_gfni(dsts[p], srcs, k, coeffs + p * k, begin, end);
    }
    detail::encode_blocks_tail(dsts, m, srcs, k, coeffs, body, n);
}

// ---------------------------------------------------------------------------
// Tier tables + CPUID.
// ---------------------------------------------------------------------------

const KernelTable kTableSsse3 = {
    SimdTier::ssse3, xor_sse2, mul_ssse3, addmul_ssse3, encode_blocks_ssse3, addmul16_ssse3,
};

const KernelTable kTableAvx2 = {
    SimdTier::avx2, xor_avx2, mul_avx2, addmul_avx2, encode_blocks_avx2, addmul16_avx2,
};

const KernelTable kTableGfni = {
    SimdTier::gfni, xor_avx2, mul_gfni, addmul_gfni, encode_blocks_gfni, addmul16_avx2,
};

}  // namespace

bool cpu_supports(SimdTier tier) {
    switch (tier) {
        case SimdTier::scalar:
            return true;
        case SimdTier::ssse3: {
            static const bool ok = __builtin_cpu_supports("ssse3") != 0;
            return ok;
        }
        case SimdTier::avx2: {
            static const bool ok = __builtin_cpu_supports("avx2") != 0;
            return ok;
        }
        case SimdTier::gfni: {
            static const bool ok =
                __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("gfni") != 0;
            return ok;
        }
    }
    return false;
}

const KernelTable* table_for(SimdTier tier) {
    if (!cpu_supports(tier)) return nullptr;
    switch (tier) {
        case SimdTier::scalar:
            return nullptr;  // kernels.cpp owns the scalar table
        case SimdTier::ssse3:
            return &kTableSsse3;
        case SimdTier::avx2:
            return &kTableAvx2;
        case SimdTier::gfni:
            return &kTableGfni;
    }
    return nullptr;
}

}  // namespace ecfrm::gf::simd

#else  // non-x86: no SIMD tiers, the scalar table in kernels.cpp serves all.

namespace ecfrm::gf::simd {

bool cpu_supports(SimdTier tier) { return tier == SimdTier::scalar; }

const KernelTable* table_for(SimdTier) { return nullptr; }

}  // namespace ecfrm::gf::simd

#endif
