#include "gf/region_simd.h"

#include <immintrin.h>

#include "gf/gf256.h"

namespace ecfrm::gf::simd {

bool avx2_available() {
    static const bool available = __builtin_cpu_supports("avx2") != 0;
    return available;
}

namespace {

/// Build the two 16-entry nibble tables for multiplication by c:
/// lo[x] = c * x and hi[x] = c * (x << 4), x in [0, 16).
struct NibbleTables {
    alignas(16) std::uint8_t lo[16];
    alignas(16) std::uint8_t hi[16];
};

NibbleTables build_tables(std::uint8_t c) {
    NibbleTables t;
    for (int x = 0; x < 16; ++x) {
        t.lo[x] = Gf256::mul(c, static_cast<std::uint8_t>(x));
        t.hi[x] = Gf256::mul(c, static_cast<std::uint8_t>(x << 4));
    }
    return t;
}

}  // namespace

__attribute__((target("avx2"))) void addmul_region_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                        std::uint8_t c, std::size_t n) {
    const NibbleTables tables = build_tables(c);
    const __m256i tlo = _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(tables.lo)));
    const __m256i thi = _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(tables.hi)));
    const __m256i mask = _mm256_set1_epi8(0x0f);

    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i lo = _mm256_and_si256(v, mask);
        const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo), _mm256_shuffle_epi8(thi, hi));
        const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, prod));
    }
    const std::uint8_t* row = Gf256::mul_row(c);
    for (; i < n; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("avx2"))) void mul_region_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                     std::uint8_t c, std::size_t n) {
    const NibbleTables tables = build_tables(c);
    const __m256i tlo = _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(tables.lo)));
    const __m256i thi = _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(tables.hi)));
    const __m256i mask = _mm256_set1_epi8(0x0f);

    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i lo = _mm256_and_si256(v, mask);
        const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo), _mm256_shuffle_epi8(thi, hi));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), prod);
    }
    const std::uint8_t* row = Gf256::mul_row(c);
    for (; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace ecfrm::gf::simd
