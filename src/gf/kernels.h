// Runtime-dispatched GF region kernel suite: a function-pointer table of
// the bulk-byte kernels behind every encode and decode, selected once at
// startup from CPUID (scalar / SSSE3 / AVX2 / GFNI) and overridable via
// ECFRM_SIMD=scalar|ssse3|avx2|gfni for A/B benchmarking.
//
// The table carries both the classic single-coefficient kernels and the
// fused multi-source `encode_blocks`: dsts[p] = XOR_j coeffs[p*k+j]*srcs[j]
// computed in one cache-blocked pass (ISA-L style) instead of m*k separate
// full-region sweeps. High-level entry points (`encode_regions`,
// `encode16_regions`) add ThreadPool chunking above a size threshold and
// feed the per-tier ecfrm_gf_bytes_total counter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ecfrm {
class ThreadPool;
namespace obs {
class MetricRegistry;
}  // namespace obs
}  // namespace ecfrm

namespace ecfrm::gf {

enum class SimdTier : int { scalar = 0, ssse3 = 1, avx2 = 2, gfni = 3 };
inline constexpr int kSimdTierCount = 4;

const char* to_string(SimdTier tier);

/// Parses "scalar"/"ssse3"/"avx2"/"gfni" (case-sensitive). Returns false
/// and leaves *out untouched on anything else.
bool parse_tier(const std::string& name, SimdTier* out);

/// One tier's kernel set. All pointers are always non-null. The coefficient
/// kernels assume c >= 2 — callers fold c == 0 (skip/zero) and c == 1
/// (xor/copy) first; the region.h wrappers do exactly that.
struct KernelTable {
    SimdTier tier;

    /// dst ^= src over n bytes.
    void (*xor_region)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);
    /// dst = c * src over GF(2^8). Precondition: c >= 2.
    void (*mul_region)(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c, std::size_t n);
    /// dst ^= c * src over GF(2^8). Precondition: c >= 2.
    void (*addmul_region)(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c, std::size_t n);
    /// Fused encode: dsts[p] = XOR_{j<k} coeffs[p*k+j] * srcs[j] for p < m,
    /// over n bytes per region. Overwrites dsts; coeffs may contain 0 and 1.
    void (*encode_blocks)(std::uint8_t* const* dsts, std::size_t m, const std::uint8_t* const* srcs,
                          std::size_t k, const std::uint8_t* coeffs, std::size_t n);
    /// dst ^= c * src over GF(2^16) on little-endian 16-bit symbols.
    /// Preconditions: c >= 2, n even.
    void (*addmul16_region)(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t c,
                            std::size_t n);
};

/// True when the running CPU can execute `tier` (scalar is always true).
bool tier_supported(SimdTier tier);

/// Highest tier the CPU supports.
SimdTier best_supported_tier();

/// Kernel table for a specific tier, or nullptr when the CPU lacks it.
/// Used by the differential tests and the `ecfrm_cli simd` microbench.
const KernelTable* kernels_for(SimdTier tier);

/// The active kernel table. First call resolves the default tier: the best
/// the CPU supports, clamped by a valid ECFRM_SIMD override if set.
const KernelTable& kernels();

SimdTier active_tier();

/// Forces the active tier. Returns false (and changes nothing) when the CPU
/// does not support it.
bool set_active_tier(SimdTier tier);

/// Attach the per-tier byte counters (ecfrm_gf_bytes_total{tier=...}).
/// Counts coefficient-region bytes processed: n per single-coefficient
/// call, m*k*n per fused encode. nullptr detaches.
void attach_kernel_metrics(obs::MetricRegistry* registry);

/// Fused multi-destination encode over GF(2^8): dsts[p] = XOR_j
/// coeffs[p*k+j] * srcs[j]. All spans share one length. When `pool` is
/// given and the regions are large, the byte range is chunked across it
/// (parallel_for is nesting-safe: the caller participates).
void encode_regions(const std::vector<ConstByteSpan>& srcs, const std::vector<ByteSpan>& dsts,
                    const std::uint8_t* coeffs, ThreadPool* pool = nullptr);

/// Same shape over GF(2^16) little-endian symbols (coeffs16 is m*k
/// row-major); region lengths must be even.
void encode16_regions(const std::vector<ConstByteSpan>& srcs, const std::vector<ByteSpan>& dsts,
                      const std::uint16_t* coeffs16, ThreadPool* pool = nullptr);

/// dst ^= c * src over GF(2^16) symbols, dispatched (folds c == 0 / 1).
void addmul16_region(ByteSpan dst, ConstByteSpan src, std::uint16_t c);

}  // namespace ecfrm::gf
