#include "gf/gf2_solver.h"

#include <algorithm>

#include "gf/region.h"

namespace ecfrm::gf {

int gf2_rank(std::vector<std::vector<std::uint8_t>> m) {
    const int rows = static_cast<int>(m.size());
    if (rows == 0) return 0;
    const int cols = static_cast<int>(m[0].size());
    int rank = 0;
    for (int col = 0; col < cols && rank < rows; ++col) {
        int pivot = -1;
        for (int r = rank; r < rows; ++r) {
            if (m[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) continue;
        std::swap(m[static_cast<std::size_t>(rank)], m[static_cast<std::size_t>(pivot)]);
        for (int r = 0; r < rows; ++r) {
            if (r == rank || m[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] == 0) continue;
            for (int c = 0; c < cols; ++c) {
                m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] ^=
                    m[static_cast<std::size_t>(rank)][static_cast<std::size_t>(c)];
            }
        }
        ++rank;
    }
    return rank;
}

bool gf2_solvable(const Gf2System& system) {
    if (system.unknown_cells.empty()) return true;
    return gf2_rank(system.coeffs) == static_cast<int>(system.unknown_cells.size());
}

Status gf2_solve(Gf2System system, const std::vector<ByteSpan>& cells) {
    const int unknowns = static_cast<int>(system.unknown_cells.size());
    if (unknowns == 0) return Status::success();
    const int equations = static_cast<int>(system.coeffs.size());
    const std::size_t len = cells[static_cast<std::size_t>(system.unknown_cells[0])].size();

    // Materialise the right-hand sides.
    std::vector<std::vector<std::uint8_t>> rhs(static_cast<std::size_t>(equations));
    for (int e = 0; e < equations; ++e) {
        rhs[static_cast<std::size_t>(e)].assign(len, 0);
        ByteSpan acc(rhs[static_cast<std::size_t>(e)].data(), len);
        for (int c : system.knowns[static_cast<std::size_t>(e)]) {
            xor_region(acc, cells[static_cast<std::size_t>(c)]);
        }
    }

    // Gauss-Jordan over GF(2) with byte-buffer RHS.
    int rank = 0;
    std::vector<int> pivot_unknown;
    for (int col = 0; col < unknowns && rank < equations; ++col) {
        int pivot = -1;
        for (int r = rank; r < equations; ++r) {
            if (system.coeffs[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) return Error::undecodable("GF(2) system singular for this erasure");
        std::swap(system.coeffs[static_cast<std::size_t>(rank)], system.coeffs[static_cast<std::size_t>(pivot)]);
        std::swap(rhs[static_cast<std::size_t>(rank)], rhs[static_cast<std::size_t>(pivot)]);
        for (int r = 0; r < equations; ++r) {
            if (r == rank || system.coeffs[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] == 0) {
                continue;
            }
            for (int c = 0; c < unknowns; ++c) {
                system.coeffs[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] ^=
                    system.coeffs[static_cast<std::size_t>(rank)][static_cast<std::size_t>(c)];
            }
            xor_region(ByteSpan(rhs[static_cast<std::size_t>(r)].data(), len),
                       ConstByteSpan(rhs[static_cast<std::size_t>(rank)].data(), len));
        }
        pivot_unknown.push_back(col);
        ++rank;
    }
    if (rank < unknowns) return Error::undecodable("GF(2) system under-determined");

    for (int r = 0; r < rank; ++r) {
        const int cell = system.unknown_cells[static_cast<std::size_t>(pivot_unknown[static_cast<std::size_t>(r)])];
        copy_region(cells[static_cast<std::size_t>(cell)],
                    ConstByteSpan(rhs[static_cast<std::size_t>(r)].data(), len));
    }
    return Status::success();
}

}  // namespace ecfrm::gf
