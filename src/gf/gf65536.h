// GF(2^16) with primitive polynomial x^16 + x^12 + x^3 + x + 1 (0x1100b).
//
// Provided for codes whose stripe width exceeds what GF(2^8) Cauchy/
// Vandermonde constructions comfortably support. Log/exp tables (256 KiB
// combined) give one-multiplication-per-product; no full mul table at this
// width.
#pragma once

#include <cstdint>
#include <vector>

namespace ecfrm::gf {

class Gf65536 {
  public:
    static constexpr unsigned kPoly = 0x1100b;
    static constexpr unsigned kFieldSize = 65536;
    static constexpr unsigned kGroupOrder = 65535;

    static std::uint16_t add(std::uint16_t a, std::uint16_t b) { return a ^ b; }
    static std::uint16_t mul(std::uint16_t a, std::uint16_t b);
    static std::uint16_t div(std::uint16_t a, std::uint16_t b);
    static std::uint16_t inv(std::uint16_t a);
    static std::uint16_t pow(std::uint16_t a, unsigned e);

  private:
    struct Tables {
        std::vector<std::uint32_t> exp;  // 2 * kGroupOrder entries
        std::vector<std::uint16_t> log;
        Tables();
    };
    static const Tables& tables();
};

}  // namespace ecfrm::gf
