// exec::PlanExecutor: the request-execution engine between the planners
// (core) and the devices (store). It owns the machinery that used to be
// inlined in StripeStore::execute_read:
//
//   - per-disk submission queues: each AccessPlan::DiskBatch is issued as
//     chunked vectored read_batch calls with a bounded in-flight depth
//     (RecoveryOptions::batch_elements), one queue per disk, dispatched in
//     parallel when a thread pool is attached;
//   - the self-healing policy: bounded retries with exponential backoff,
//     per-op timeout detection, hedged reads that decode a straggling
//     disk's elements from the others, and mid-flight degraded replans
//     that reuse every element already fetched;
//   - the decode stage that materialises lost elements from a plan's
//     repair recipes.
//
// The same engine serves the normal/degraded read path (fetch + decode),
// reconstruction (rebuild_element), and scrub/verify (read_group), so all
// three share one I/O policy. All methods are thread-safe: N readers may
// call fetch() concurrently, and recovery options / observability can be
// swapped while requests are in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/buffer_pool.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "core/access_plan.h"
#include "core/scheme.h"
#include "core/write_plan.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "store/block_device.h"

namespace ecfrm::exec {

/// Self-healing knobs for the device I/O paths. Defaults are inert
/// (no timeouts, no backoff sleeps, no hedging) so clean-path behaviour
/// and benchmarks are unchanged until a caller opts in.
struct RecoveryOptions {
    /// Same-device retries after a transient I/O error (0 disables).
    int max_retries = 2;
    /// Base backoff before retry r: backoff_ms * 2^r (0: retry immediately).
    double backoff_ms = 0.0;
    /// >0: ops slower than this surface as Error::timeout — the payload is
    /// discarded and the read path routes around the slow device instead
    /// of retrying it. (Per-op deadlines need per-op timing, so timed
    /// queues issue elements singly instead of as vectored batches.)
    double op_timeout_ms = 0.0;
    /// >0 (needs a thread pool): when the slowest fetch queue is still
    /// outstanding after this deadline, hedge its elements by decoding
    /// them from the other disks instead of waiting.
    double hedge_ms = 0.0;
    /// Adaptive hedging (needs a thread pool and an attached
    /// DiskHeatModel): derive the hedge deadline per fetch round from the
    /// participating disks' live windowed p99 latency —
    /// auto_hedge_factor * median(p99), floored at auto_hedge_min_ms —
    /// instead of the static hedge_ms. Until the heat window has enough
    /// samples the static hedge_ms (possibly 0 = no hedging) applies.
    bool auto_hedge = false;
    double auto_hedge_factor = 3.0;
    double auto_hedge_min_ms = 0.5;
    /// Degraded-read replans allowed per read as newly-misbehaving disks
    /// are discovered mid-flight.
    int max_replans = 2;
    /// Bounded in-flight depth of a per-disk submission queue: at most
    /// this many elements ride in one vectored read_batch call (<=0:
    /// unbounded, the whole queue goes down in one call).
    int batch_elements = 32;
};

/// Executor-owned recovery/decode counters (all optional). Bundled so the
/// whole set swaps atomically while requests are in flight.
struct ExecutorMetrics {
    obs::Counter* retries = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* replans = nullptr;
    obs::Counter* hedged_reads = nullptr;
    obs::Counter* decodes = nullptr;
    obs::Counter* writes = nullptr;           // elements written via write()
    obs::Counter* degraded_writes = nullptr;  // elements skipped on failed devices
};

/// Request-trace context threaded down the execution pipeline: the
/// per-request span tree (null = untraced, every use is a branch) and
/// the span id to parent recovery detail under. Passed by value — it is
/// two words.
struct TraceCtx {
    obs::RequestTrace* rt = nullptr;
    std::uint32_t parent = 0;
};

class PlanExecutor {
  public:
    /// Identity of one stored element in candidate-code coordinates.
    using Key = std::tuple<StripeId, int, int>;
    /// Elements held by a request (fetched, hedged or decoded). ElementBuf
    /// is either pool/heap-owned staging or an external view of caller
    /// memory (the zero-copy path).
    using ElementMap = std::map<Key, ElementBuf>;
    /// Zero-copy destination oracle: given an element key, return the
    /// caller buffer it should land in, or an empty span to use executor
    /// staging. Healthy-path data elements resolve to the user's output
    /// buffer, so fetch and decode write them in place and assembly skips
    /// its copy. Hedged rounds ignore the sink (a straggling queue task
    /// must own buffers that can outlive the requesting frame); a
    /// timed-out or failed op may have scribbled on its sink span, which
    /// is safe because the element is not marked fetched and recovery
    /// overwrites the span.
    using Sink = std::function<ByteSpan(const Key&)>;
    /// Produces the plan for the current exclusion set. Called once up
    /// front and once per replan round; planning failures abort the fetch.
    using Replanner = std::function<Result<core::AccessPlan>(const std::vector<DiskId>&)>;

    /// `scheme` must outlive the executor; `pool` may be null (serial
    /// execution, deterministic disk order).
    PlanExecutor(const core::Scheme* scheme, std::int64_t element_bytes, ThreadPool* pool)
        : scheme_(scheme), element_bytes_(element_bytes), pool_(pool) {}

    ~PlanExecutor() { drain_orphans(); }

    /// Block until every orphaned hedge queue (a straggling per-disk fetch
    /// abandoned at its hedge deadline, still finishing on the pool) has
    /// completed. Owners of anything those queues touch — the devices, an
    /// attached heat model or metric registry — must call this before
    /// tearing that dependency down; attach() and the destructor do so
    /// automatically.
    void drain_orphans() const {
        std::unique_lock<std::mutex> lock(orphan_mu_);
        orphan_cv_.wait(lock, [&] { return orphans_ == 0; });
    }

    /// (Re)bind the devices the executor issues I/O against, indexed by
    /// DiskId. Pointers must stay valid until the next bind.
    void bind(std::vector<store::BlockDevice*> devices) { devices_ = std::move(devices); }

    /// Pooled arena for element staging buffers (null: plain heap). Must
    /// outlive every request, including orphaned hedge queues — pass a
    /// process-lifetime pool (store::element_arena) or drain_orphans()
    /// before freeing it. When the devices are uring-backed and the same
    /// pool is registered with their rings, staging reads become
    /// registered-buffer fixed reads.
    void set_buffer_pool(BufferPool* pool) { buffer_pool_ = pool; }

    void set_recovery(const RecoveryOptions& options) {
        std::lock_guard<std::mutex> lock(opts_mu_);
        recovery_ = options;
    }
    RecoveryOptions recovery() const {
        std::lock_guard<std::mutex> lock(opts_mu_);
        return recovery_;
    }

    /// Swap the observability sinks; race-free against in-flight requests
    /// (atomic bundle publication, retired bundles live until the executor
    /// is destroyed). `heat`, when given, is fed per-queue issue/complete
    /// samples and per-request max batch loads, and powers auto_hedge.
    /// Blocks until orphaned hedge queues still holding the previous sinks
    /// have drained, so the caller may free those sinks on return.
    void attach(const ExecutorMetrics& metrics, obs::Tracer* tracer,
                obs::DiskHeatModel* heat = nullptr) {
        auto bundle = std::make_unique<const ExecutorMetrics>(metrics);
        const ExecutorMetrics* fresh = bundle.get();
        {
            std::lock_guard<std::mutex> lock(metrics_mu_);
            retired_.push_back(std::move(bundle));
        }
        metrics_.store(fresh, std::memory_order_release);
        tracer_.store(tracer, std::memory_order_release);
        heat_.store(heat, std::memory_order_release);
        drain_orphans();
    }

    static Key key_of(const layout::GroupCoord& c) { return {c.stripe, c.group, c.position}; }

    /// Everything a completed fetch pipeline hands back: the plan that
    /// finally completed (after any replans), every element it fetched or
    /// hedge-decoded, and the exclusion set as grown by mid-flight
    /// discoveries.
    struct FetchResult {
        core::AccessPlan plan;
        ElementMap elements;
        std::vector<DiskId> excluded;
    };

    /// Run the fetch pipeline: plan via `replan`, issue per-disk queues,
    /// retry/hedge per policy, and replan around disks that misbehave
    /// mid-flight — reusing every element already in hand. Fails with the
    /// last typed device error when recovery is exhausted.
    ///
    /// When `rt` is given, the pipeline appends its causal tree to the
    /// request: contiguous `plan`/`fetch` phase spans per round directly
    /// under the root (so phase durations tile the request), with
    /// per-disk batches, retries, backoff waits, timeouts and hedge
    /// decodes as children of the round's fetch span. Safe across pool
    /// and hedge threads.
    /// `sink`, when given, routes elements straight into caller memory
    /// (see Sink). On devices whose async_reads() is true and with no
    /// thread pool attached, the serial path submits every disk's batch
    /// before awaiting any (cross-disk overlap from one thread) and runs
    /// decode recipes eagerly as their sources land.
    Result<FetchResult> fetch(const Replanner& replan, std::vector<DiskId> excluded,
                              obs::RequestTrace* rt = nullptr, const Sink& sink = {}) const;

    /// Run the plan's decode recipes, materialising each missing element
    /// into `elements` from sources already present there. `tc` hangs a
    /// `decode.element` span per recipe under the caller's span.
    /// Recipes whose target is already present (e.g. decoded eagerly
    /// during fetch) are skipped; `sink` routes freshly decoded targets
    /// into caller memory.
    Status decode(const core::AccessPlan& plan, ElementMap& elements, TraceCtx tc = {},
                  const Sink& sink = {}) const;

    /// Rebuild one element into `target` from group sources living on
    /// disks not marked in `avoid` (indexed by DiskId), using policy
    /// reads. Returns the number of source elements read.
    Result<std::int64_t> rebuild_element(const layout::GroupCoord& coord,
                                         const std::vector<char>& avoid, ByteSpan target) const;

    /// Read every element of one group into bufs[position] (n spans of
    /// element_bytes), batched per disk. Raw device reads: no retry or
    /// timeout policy — callers (scrub, verify) want the device's first
    /// answer.
    Status read_group(StripeId stripe, int group, std::span<const ByteSpan> bufs) const;

    /// Outcome of one executed write plan.
    struct WriteReport {
        std::int64_t elements_written = 0;
        /// Degraded writes: placements whose device is failed are skipped —
        /// the element stays recoverable through its group's parity, and
        /// reconstruction restores it onto the replacement device.
        std::int64_t elements_skipped = 0;
    };

    /// Execute a write plan: one submission queue per disk, each issued as
    /// chunked vectored write_batch calls (RecoveryOptions::batch_elements
    /// deep), in parallel across disks when a thread pool is attached.
    /// `payloads[w.payload]` supplies the bytes of each placement `w`, so
    /// one payload may back many placements (replication) and payload
    /// order is independent of submission order. Transient errors retry
    /// with backoff under the same policy as reads (a retry rewrites the
    /// full payload, healing torn writes). With `allow_degraded`, a failed
    /// device's remaining placements are skipped and counted instead of
    /// failing the plan. `tc` hangs per-disk `disk.write_batch` spans (and
    /// retry/backoff detail) under the caller's span.
    Result<WriteReport> write(const core::WritePlan& plan,
                              std::span<const ConstByteSpan> payloads, TraceCtx tc = {},
                              bool allow_degraded = true) const;

    /// Device read with per-op timeout detection and bounded retries on
    /// transient errors. On timeout the payload is discarded and
    /// Error::timeout is returned (the caller routes around the device).
    Status device_read(DiskId disk, RowId row, ByteSpan out) const;
    /// Device write with bounded retries on transient errors (a retry
    /// rewrites the full payload, healing torn writes).
    Status device_write(DiskId disk, RowId row, ConstByteSpan data) const;

  private:
    const ExecutorMetrics& metrics() const { return *metrics_.load(std::memory_order_acquire); }
    obs::Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }
    obs::DiskHeatModel* heat() const { return heat_.load(std::memory_order_acquire); }

    Status read_with_policy(DiskId disk, RowId row, ByteSpan out, const RecoveryOptions& opts,
                            TraceCtx tc = {}) const;

    /// Issue one per-disk submission queue: rows/outs already row-sorted,
    /// chunked to opts.batch_elements per read_batch call. `*done` counts
    /// elements that landed (also on failure).
    Status submit_queue(DiskId disk, std::span<const RowId> rows, std::span<const ByteSpan> outs,
                        const RecoveryOptions& opts, std::size_t* done, TraceCtx tc = {}) const;

    /// Write-side twin of submit_queue: chunked write_batch calls with
    /// suffix retry of the failing op.
    Status submit_write_queue(DiskId disk, std::span<const RowId> rows,
                              std::span<const ConstByteSpan> data, const RecoveryOptions& opts,
                              std::size_t* done, TraceCtx tc = {}) const;

    /// Hedge path: decode one element directly from alive source disks
    /// into `target`, bypassing the queue machinery. `avoid` marks disks
    /// that must not be touched (stragglers and excluded disks).
    bool side_decode(const layout::GroupCoord& coord, const std::vector<char>& avoid,
                     ByteSpan target) const;

    /// Decode engine behind decode(): with `partial`, recipes whose
    /// sources are not all present are skipped instead of failing (the
    /// eager pass as per-disk completions arrive).
    Status try_decode(const core::AccessPlan& plan, ElementMap& elements, bool partial,
                      TraceCtx tc, const Sink& sink) const;

    /// Staging or zero-copy storage for `key` per the sink contract.
    ElementBuf make_element(const Key& key, const Sink& sink) const {
        if (sink) {
            const ByteSpan dest = sink(key);
            if (dest.size() == static_cast<std::size_t>(element_bytes_)) {
                return ElementBuf::external(dest);
            }
        }
        return ElementBuf::alloc(static_cast<std::size_t>(element_bytes_), buffer_pool_);
    }

    /// Shared state of one hedged fetch round. Heap-allocated and co-owned
    /// by every queue task, so the requesting frame can return at the
    /// hedge deadline without joining a straggling queue: the orphaned
    /// task finishes on the pool against this state, and its late result
    /// dies with the last shared reference.
    struct HedgeState {
        struct Queue {
            DiskId disk = -1;
            std::vector<RowId> rows;
            std::vector<Key> keys;            // keys[j] identifies rows[j]
            std::vector<ElementBuf> bufs;     // bufs[j] receives rows[j]
            Status status = Status::success();
            std::size_t done_ops = 0;
            double issue_us = 0.0;  // forensic clock, for frame-side spans
            double dur_us = 0.0;
        };
        RecoveryOptions opts;
        std::mutex mu;
        std::condition_variable cv;
        std::size_t done = 0;             // guarded by mu
        std::vector<char> queue_done;     // guarded by mu
        std::vector<Queue> queues;        // queues[a] owned by task a until done
    };

    /// Task body of one hedged queue: self-contained device I/O + heat
    /// feed, no access to the requesting frame (which may have returned).
    void run_hedged_queue(HedgeState& state, std::size_t a) const;

    void orphan_started() const {
        std::lock_guard<std::mutex> lock(orphan_mu_);
        ++orphans_;
    }
    void orphan_finished() const {
        std::lock_guard<std::mutex> lock(orphan_mu_);
        --orphans_;
        orphan_cv_.notify_all();
    }

    static const ExecutorMetrics* empty_metrics() {
        static const ExecutorMetrics none;
        return &none;
    }

    const core::Scheme* scheme_;
    std::int64_t element_bytes_;
    ThreadPool* pool_;
    std::vector<store::BlockDevice*> devices_;
    BufferPool* buffer_pool_ = nullptr;

    mutable std::mutex opts_mu_;  // guards recovery_
    RecoveryOptions recovery_;

    std::atomic<const ExecutorMetrics*> metrics_{empty_metrics()};
    std::mutex metrics_mu_;  // guards retired_
    std::vector<std::unique_ptr<const ExecutorMetrics>> retired_;
    std::atomic<obs::Tracer*> tracer_{nullptr};
    std::atomic<obs::DiskHeatModel*> heat_{nullptr};

    mutable std::mutex orphan_mu_;
    mutable std::condition_variable orphan_cv_;
    mutable std::int64_t orphans_ = 0;  // dispatched hedge queues not yet finished
};

}  // namespace ecfrm::exec
