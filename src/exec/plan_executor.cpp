#include "exec/plan_executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <set>
#include <string>
#include <thread>

#include "codes/erasure_code.h"

namespace ecfrm::exec {

using core::AccessPlan;
using layout::GroupCoord;

namespace {

void backoff(const RecoveryOptions& opts, int attempt) {
    if (opts.backoff_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            opts.backoff_ms * static_cast<double>(1 << attempt)));
    }
}

/// Backoff with the wait recorded on the request trace (the sleep is the
/// single biggest self-inflicted latency contributor, so it gets its own
/// span rather than vanishing into the parent).
void traced_backoff(const RecoveryOptions& opts, int attempt, DiskId disk, TraceCtx tc) {
    if (tc.rt == nullptr || opts.backoff_ms <= 0.0) {
        backoff(opts, attempt);
        return;
    }
    const double t0 = obs::forensic_now_us();
    backoff(opts, attempt);
    tc.rt->complete(tc.parent, "backoff.wait", t0, obs::forensic_now_us() - t0,
                    {{"disk", std::to_string(disk)}, {"attempt", std::to_string(attempt + 1)}});
}

/// One fetch round's outcome: which disks newly misbehaved and the most
/// recent typed error, so the replan loop can route around them (or give
/// up with the right diagnosis).
struct FetchOutcome {
    bool complete = true;
    std::vector<DiskId> bad_disks;
    std::optional<Error> last_error;
};

}  // namespace

Status PlanExecutor::read_with_policy(DiskId disk, RowId row, ByteSpan out,
                                      const RecoveryOptions& opts, TraceCtx tc) const {
    const ExecutorMetrics& m = metrics();
    obs::DiskHeatModel* const heat = this->heat();
    const bool timed = opts.op_timeout_ms > 0.0;
    for (int attempt = 0;; ++attempt) {
        const double trace_t0 = tc.rt != nullptr ? obs::forensic_now_us() : 0.0;
        const auto t0 = timed ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
        Status status = devices_[static_cast<std::size_t>(disk)]->read(row, out);
        if (timed) {
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
            if (status.ok() && elapsed_ms > opts.op_timeout_ms) {
                // Too slow to trust: discard the payload and route around
                // the device rather than retrying into the same stall.
                if (m.timeouts != nullptr) m.timeouts->add(1);
                if (heat != nullptr) heat->on_timeout(disk, obs::DiskHeatModel::now_seconds());
                if (tc.rt != nullptr) {
                    tc.rt->count_timeout();
                    tc.rt->complete(tc.parent, "op.timeout", trace_t0,
                                    obs::forensic_now_us() - trace_t0,
                                    {{"disk", std::to_string(disk)},
                                     {"row", std::to_string(row)},
                                     {"deadline_ms", std::to_string(opts.op_timeout_ms)}});
                }
                return Error::timeout("disk " + std::to_string(disk) + " read exceeded " +
                                      std::to_string(opts.op_timeout_ms) + " ms deadline");
            }
        }
        if (status.ok()) return status;
        if (status.error().code != Error::Code::io_error || attempt >= opts.max_retries) {
            if (tc.rt != nullptr) {
                tc.rt->complete(tc.parent, "op.error", trace_t0,
                                obs::forensic_now_us() - trace_t0,
                                {{"disk", std::to_string(disk)},
                                 {"row", std::to_string(row)},
                                 {"error", status.error().message}});
            }
            return status;
        }
        if (m.retries != nullptr) m.retries->add(1);
        if (heat != nullptr) heat->on_retry(disk, obs::DiskHeatModel::now_seconds());
        if (tc.rt != nullptr) {
            tc.rt->count_retry();
            tc.rt->complete(tc.parent, "retry", trace_t0, obs::forensic_now_us() - trace_t0,
                            {{"disk", std::to_string(disk)},
                             {"row", std::to_string(row)},
                             {"attempt", std::to_string(attempt + 1)},
                             {"error", status.error().message}});
        }
        traced_backoff(opts, attempt, disk, tc);
    }
}

Status PlanExecutor::device_read(DiskId disk, RowId row, ByteSpan out) const {
    return read_with_policy(disk, row, out, recovery());
}

Status PlanExecutor::device_write(DiskId disk, RowId row, ConstByteSpan data) const {
    const RecoveryOptions opts = recovery();
    const ExecutorMetrics& m = metrics();
    for (int attempt = 0;; ++attempt) {
        Status status = devices_[static_cast<std::size_t>(disk)]->write(row, data);
        if (status.ok()) return status;
        if (status.error().code != Error::Code::io_error || attempt >= opts.max_retries) {
            return status;
        }
        if (m.retries != nullptr) m.retries->add(1);
        backoff(opts, attempt);
    }
}

Status PlanExecutor::submit_queue(DiskId disk, std::span<const RowId> rows,
                                  std::span<const ByteSpan> outs, const RecoveryOptions& opts,
                                  std::size_t* done, TraceCtx tc) const {
    *done = 0;
    store::BlockDevice& device = *devices_[static_cast<std::size_t>(disk)];
    if (opts.op_timeout_ms > 0.0) {
        // Per-op deadline detection needs per-op timing: issue singly.
        for (std::size_t i = 0; i < rows.size(); ++i) {
            auto status = read_with_policy(disk, rows[i], outs[i], opts, tc);
            if (!status.ok()) return status;
            *done = i + 1;
        }
        return Status::success();
    }
    const ExecutorMetrics& m = metrics();
    obs::DiskHeatModel* const heat = this->heat();
    const std::size_t depth =
        opts.batch_elements > 0 ? static_cast<std::size_t>(opts.batch_elements) : rows.size();
    std::size_t offset = 0;
    while (offset < rows.size()) {
        const std::size_t n = std::min(depth, rows.size() - offset);
        std::size_t completed = 0;
        auto status = device.read_batch(rows.subspan(offset, n), outs.subspan(offset, n), &completed);
        *done += completed;
        if (status.ok()) {
            offset += n;
            continue;
        }
        // The op at `offset + completed` failed and the rest of the chunk
        // was never attempted. Retry just that op under the policy — its
        // in-batch failure already consumed attempt zero.
        if (status.error().code != Error::Code::io_error || opts.max_retries < 1) return status;
        const std::size_t j = offset + completed;
        Status retried = status;
        for (int attempt = 1; attempt <= opts.max_retries; ++attempt) {
            if (m.retries != nullptr) m.retries->add(1);
            if (heat != nullptr) heat->on_retry(disk, obs::DiskHeatModel::now_seconds());
            if (tc.rt != nullptr) {
                tc.rt->count_retry();
                tc.rt->complete(tc.parent, "retry", obs::forensic_now_us(), 0.0,
                                {{"disk", std::to_string(disk)},
                                 {"row", std::to_string(rows[j])},
                                 {"attempt", std::to_string(attempt)},
                                 {"error", retried.error().message}});
            }
            traced_backoff(opts, attempt - 1, disk, tc);
            retried = device.read(rows[j], outs[j]);
            if (retried.ok()) break;
            if (retried.error().code != Error::Code::io_error) return retried;
        }
        if (!retried.ok()) return retried;
        *done += 1;
        offset = j + 1;
    }
    return Status::success();
}

Status PlanExecutor::submit_write_queue(DiskId disk, std::span<const RowId> rows,
                                        std::span<const ConstByteSpan> data,
                                        const RecoveryOptions& opts, std::size_t* done,
                                        TraceCtx tc) const {
    *done = 0;
    store::BlockDevice& device = *devices_[static_cast<std::size_t>(disk)];
    const ExecutorMetrics& m = metrics();
    obs::DiskHeatModel* const heat = this->heat();
    const std::size_t depth =
        opts.batch_elements > 0 ? static_cast<std::size_t>(opts.batch_elements) : rows.size();
    std::size_t offset = 0;
    while (offset < rows.size()) {
        const std::size_t n = std::min(depth, rows.size() - offset);
        std::size_t completed = 0;
        auto status =
            device.write_batch(rows.subspan(offset, n), data.subspan(offset, n), &completed);
        *done += completed;
        if (status.ok()) {
            offset += n;
            continue;
        }
        // The op at `offset + completed` failed and the rest of the chunk
        // was never attempted. Retry just that op under the policy — a
        // retry rewrites the full payload, healing a torn write.
        if (status.error().code != Error::Code::io_error || opts.max_retries < 1) return status;
        const std::size_t j = offset + completed;
        Status retried = status;
        for (int attempt = 1; attempt <= opts.max_retries; ++attempt) {
            if (m.retries != nullptr) m.retries->add(1);
            if (heat != nullptr) heat->on_retry(disk, obs::DiskHeatModel::now_seconds());
            if (tc.rt != nullptr) {
                tc.rt->count_retry();
                tc.rt->complete(tc.parent, "retry", obs::forensic_now_us(), 0.0,
                                {{"disk", std::to_string(disk)},
                                 {"row", std::to_string(rows[j])},
                                 {"attempt", std::to_string(attempt)},
                                 {"error", retried.error().message}});
            }
            traced_backoff(opts, attempt - 1, disk, tc);
            retried = device.write(rows[j], data[j]);
            if (retried.ok()) break;
            if (retried.error().code != Error::Code::io_error) return retried;
        }
        if (!retried.ok()) return retried;
        *done += 1;
        offset = j + 1;
    }
    return Status::success();
}

Result<PlanExecutor::WriteReport> PlanExecutor::write(const core::WritePlan& plan,
                                                      std::span<const ConstByteSpan> payloads,
                                                      TraceCtx tc, bool allow_degraded) const {
    const RecoveryOptions opts = recovery();
    const ExecutorMetrics& m = metrics();
    obs::DiskHeatModel* const heat = this->heat();
    const auto& writes = plan.writes();
    for (const core::WriteAccess& w : writes) {
        if (w.payload >= payloads.size()) return Error::invalid("write plan payload out of range");
        if (payloads[w.payload].size() != static_cast<std::size_t>(element_bytes_)) {
            return Error::invalid("write plan payload has wrong element size");
        }
    }

    std::vector<core::WriteBatch> queues = plan.batches();
    std::atomic<std::int64_t> written{0};
    std::atomic<std::int64_t> skipped{0};
    std::mutex state_mu;
    std::optional<Error> first_error;  // guarded by state_mu

    auto run_queue = [&](std::size_t a) {
        const core::WriteBatch& queue = queues[a];
        std::vector<ConstByteSpan> data;
        data.reserve(queue.write_indices.size());
        for (std::size_t i : queue.write_indices) data.push_back(payloads[writes[i].payload]);
        const double rt_issue_us = tc.rt != nullptr ? obs::forensic_now_us() : 0.0;
        if (heat != nullptr) heat->on_issue(queue.disk);
        std::size_t done = 0;
        auto status = submit_write_queue(queue.disk, queue.rows,
                                         std::span<const ConstByteSpan>(data.data(), data.size()),
                                         opts, &done, tc);
        if (heat != nullptr) {
            const double now_s = obs::DiskHeatModel::now_seconds();
            heat->on_write_complete(queue.disk, static_cast<std::int64_t>(done),
                                    static_cast<std::int64_t>(done) * element_bytes_, now_s);
            if (!status.ok() && status.error().code != Error::Code::disk_failed) {
                heat->on_error(queue.disk, now_s);
            }
        }
        if (tc.rt != nullptr) {
            const std::uint32_t batch_node = tc.rt->complete(
                tc.parent, "disk.write_batch", rt_issue_us, obs::forensic_now_us() - rt_issue_us,
                {obs::RequestTrace::IntAttr{"disk", queue.disk},
                 {"elements", static_cast<std::int64_t>(queue.write_indices.size())},
                 {"done", static_cast<std::int64_t>(done)},
                 {"bytes", static_cast<std::int64_t>(done) * element_bytes_}});
            if (!status.ok()) tc.rt->attr(batch_node, "error", status.error().message);
        }
        written.fetch_add(static_cast<std::int64_t>(done));
        if (!status.ok()) {
            if (status.error().code == Error::Code::disk_failed && allow_degraded) {
                // Degraded write: whatever of this queue did not land
                // stays recoverable through the group parities.
                skipped.fetch_add(static_cast<std::int64_t>(queue.rows.size() - done));
                return;
            }
            std::lock_guard<std::mutex> lock(state_mu);
            if (!first_error.has_value()) first_error = status.error();
        }
    };

    if (pool_ != nullptr && queues.size() > 1) {
        parallel_for(*pool_, queues.size(), run_queue);
    } else {
        for (std::size_t a = 0; a < queues.size(); ++a) run_queue(a);
    }

    if (first_error.has_value()) return *first_error;
    if (m.writes != nullptr) m.writes->add(written.load());
    if (m.degraded_writes != nullptr && skipped.load() > 0) m.degraded_writes->add(skipped.load());
    return WriteReport{written.load(), skipped.load()};
}

bool PlanExecutor::side_decode(const GroupCoord& coord, const std::vector<char>& avoid,
                               ByteSpan target) const {
    const auto& code = scheme_->code();
    std::vector<int> sources;
    for (int p = 0; p < code.n(); ++p) {
        if (p == coord.position) continue;
        const Location sloc = scheme_->layout().locate({coord.stripe, coord.group, p});
        if (!avoid[static_cast<std::size_t>(sloc.disk)]) sources.push_back(p);
    }
    auto repair = code.solve_repair(coord.position, sources);
    if (!repair.ok()) return false;
    std::vector<AlignedBuffer> srcs;
    std::vector<ByteSpan> buffers(static_cast<std::size_t>(code.n()));
    srcs.reserve(repair->terms.size());
    for (const auto& term : repair->terms) {
        const Location sloc =
            scheme_->layout().locate({coord.stripe, coord.group, term.source_position});
        srcs.emplace_back(static_cast<std::size_t>(element_bytes_));
        if (!devices_[static_cast<std::size_t>(sloc.disk)]->read(sloc.row, srcs.back().span()).ok()) {
            return false;
        }
        buffers[static_cast<std::size_t>(term.source_position)] = srcs.back().span();
    }
    buffers[static_cast<std::size_t>(coord.position)] = target;
    codes::DecodePlan one;
    one.repairs.push_back(repair.value());
    codes::ErasureCode::apply_plan(one, buffers);
    return true;
}

void PlanExecutor::run_hedged_queue(HedgeState& state, std::size_t a) const {
    // Runs on the pool, possibly after the requesting frame returned: it
    // may touch only `state` (co-owned), the devices, and the executor's
    // attached sinks (kept alive by the orphan drain protocol). No
    // RequestTrace — that dies with the request.
    HedgeState::Queue& q = state.queues[a];
    obs::DiskHeatModel* const heat = this->heat();
    q.issue_us = obs::forensic_now_us();
    const auto t0 = std::chrono::steady_clock::now();
    if (heat != nullptr) heat->on_issue(q.disk);
    std::vector<ByteSpan> outs;
    outs.reserve(q.bufs.size());
    for (ElementBuf& buf : q.bufs) outs.push_back(buf.span());
    q.status = submit_queue(q.disk, q.rows, std::span<const ByteSpan>(outs.data(), outs.size()),
                            state.opts, &q.done_ops, TraceCtx{});
    q.dur_us =
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count();
    if (heat != nullptr) {
        const double now_s = obs::DiskHeatModel::now_seconds();
        heat->on_complete(q.disk, static_cast<std::int64_t>(q.done_ops),
                          static_cast<std::int64_t>(q.done_ops) * element_bytes_, q.dur_us, now_s);
        if (!q.status.ok() && q.status.error().code != Error::Code::timeout) {
            heat->on_error(q.disk, now_s);
        }
    }
}

Result<PlanExecutor::FetchResult> PlanExecutor::fetch(const Replanner& replan,
                                                      std::vector<DiskId> excluded,
                                                      obs::RequestTrace* rt,
                                                      const Sink& sink) const {
    const RecoveryOptions opts = recovery();
    const ExecutorMetrics& m = metrics();
    obs::Tracer* const tracer = this->tracer();
    obs::DiskHeatModel* const heat = this->heat();

    // Elements fetched (or hedge-decoded) so far, kept across replan
    // rounds so recovery never re-reads what it already holds.
    ElementMap fetched;
    std::optional<AccessPlan> plan;
    bool request_load_recorded = false;  // heat records max load once per request

    // Issue everything the plan wants that we don't already hold, one
    // submission queue per disk — in parallel across disks when a thread
    // pool is attached (devices serialise internally, so one queue per
    // device is the natural unit, and it is also the granularity the
    // tracer reports: the request finishes when the slowest queue does).
    // `fetch_node` is the round's phase span on the request trace;
    // per-disk batches, retries and hedge decodes hang under it.
    auto fetch_round = [&](const AccessPlan& p, std::uint32_t fetch_node) -> FetchOutcome {
        FetchOutcome outcome;
        const auto& fetches = p.fetches();

        // Effective hedge deadline for this round: static hedge_ms, or —
        // under auto_hedge with a warm heat window — derived from the
        // participating disks' live windowed p99 (median * factor), so
        // the deadline tracks the fleet's actual speed instead of a
        // constant tuned for hardware that may no longer exist.
        double hedge_deadline_ms = opts.hedge_ms;
        if (opts.auto_hedge && heat != nullptr && pool_ != nullptr) {
            std::vector<int> participating;
            for (const core::DiskBatch& b : p.batches()) participating.push_back(b.disk);
            const double derived =
                heat->hedge_deadline_ms(participating, opts.auto_hedge_factor,
                                        opts.auto_hedge_min_ms,
                                        obs::DiskHeatModel::now_seconds());
            if (derived > 0.0) hedge_deadline_ms = derived;
        }
        const bool hedge_mode = pool_ != nullptr && hedge_deadline_ms > 0.0;

        // Per-element buffers for this round; each belongs to exactly one
        // queue, so queue workers never share a buffer (the map itself is
        // built before dispatch and only looked up afterwards). Hedged
        // rounds skip it: their queue tasks own their buffers outright so
        // a straggling queue can outlive this frame.
        ElementMap round;
        std::vector<core::DiskBatch> queues;
        for (core::DiskBatch& batch : p.batches()) {
            core::DiskBatch pending;
            pending.disk = batch.disk;
            for (std::size_t j = 0; j < batch.fetch_indices.size(); ++j) {
                const std::size_t i = batch.fetch_indices[j];
                const Key key = key_of(fetches[i].coord);
                if (fetched.find(key) != fetched.end()) continue;
                pending.fetch_indices.push_back(i);
                pending.rows.push_back(batch.rows[j]);
                if (!hedge_mode) {
                    round.try_emplace(key, make_element(key, sink));
                }
            }
            if (!pending.fetch_indices.empty()) queues.push_back(std::move(pending));
        }
        if (queues.empty()) return outcome;

        if (heat != nullptr && !request_load_recorded) {
            // First round's deepest queue is the request's max per-disk
            // load — the measured twin of closed_form_max_load.
            request_load_recorded = true;
            std::size_t max_load = 0;
            for (const core::DiskBatch& q : queues) {
                max_load = std::max(max_load, q.fetch_indices.size());
            }
            heat->on_request(static_cast<std::int64_t>(max_load),
                             obs::DiskHeatModel::now_seconds());
        }

        std::mutex state_mu;
        std::set<Key> succeeded;          // guarded by state_mu
        std::vector<DiskId> bad;          // guarded by state_mu
        std::optional<Error> last_error;  // guarded by state_mu

        auto run_queue = [&](std::size_t a) {
            const core::DiskBatch& queue = queues[a];
            const double issue_us = tracer != nullptr ? tracer->now_us() : 0.0;
            const double rt_issue_us = rt != nullptr ? obs::forensic_now_us() : 0.0;
            const auto heat_t0 = heat != nullptr ? std::chrono::steady_clock::now()
                                                 : std::chrono::steady_clock::time_point{};
            if (heat != nullptr) heat->on_issue(queue.disk);
            std::vector<ByteSpan> outs;
            outs.reserve(queue.fetch_indices.size());
            for (std::size_t i : queue.fetch_indices) {
                outs.push_back(round.find(key_of(fetches[i].coord))->second.span());
            }
            std::size_t done = 0;
            auto status = submit_queue(queue.disk, queue.rows,
                                       std::span<const ByteSpan>(outs.data(), outs.size()), opts,
                                       &done, TraceCtx{rt, fetch_node});
            if (heat != nullptr) {
                const double queue_us = std::chrono::duration<double, std::micro>(
                                            std::chrono::steady_clock::now() - heat_t0)
                                            .count();
                const double now_s = obs::DiskHeatModel::now_seconds();
                heat->on_complete(queue.disk, static_cast<std::int64_t>(done),
                                  static_cast<std::int64_t>(done) * element_bytes_, queue_us,
                                  now_s);
                if (!status.ok() && status.error().code != Error::Code::timeout) {
                    heat->on_error(queue.disk, now_s);
                }
            }
            if (rt != nullptr) {
                const std::uint32_t batch_node = rt->complete(
                    fetch_node, "disk.batch", rt_issue_us, obs::forensic_now_us() - rt_issue_us,
                    {obs::RequestTrace::IntAttr{"disk", queue.disk},
                     {"elements", static_cast<std::int64_t>(queue.fetch_indices.size())},
                     {"done", static_cast<std::int64_t>(done)},
                     {"bytes", static_cast<std::int64_t>(done) * element_bytes_}});
                if (!status.ok()) rt->attr(batch_node, "error", status.error().message);
            }
            {
                std::lock_guard<std::mutex> lock(state_mu);
                for (std::size_t j = 0; j < done; ++j) {
                    succeeded.insert(key_of(fetches[queue.fetch_indices[j]].coord));
                }
                if (!status.ok()) {
                    // The device is suspect: abandon its remaining queue
                    // and let the replan route around it.
                    bad.push_back(queue.disk);
                    last_error = status.error();
                    return;
                }
            }
            if (tracer != nullptr) {
                tracer->complete("disk.batch", "io", issue_us, tracer->now_us() - issue_us,
                                 {{"disk", std::to_string(queue.disk)},
                                  {"elements", std::to_string(queue.fetch_indices.size())}});
            }
        };

        // Serial overlapped execution: without a pool, per-disk queues
        // would otherwise run strictly one after another even though the
        // devices can overlap (io_uring keeps a batch in flight per disk).
        // When every participating device reports async_reads(), submit
        // all queues first, then await them in submission order — the
        // disks seek/read concurrently while this thread blocks on the
        // first — and run decode recipes eagerly as each disk's elements
        // land, so decode overlaps the remaining in-flight reads.
        // Per-op timeouts need per-op timing, which async batches don't
        // give; that policy keeps the submit_queue path.
        bool async_overlap =
            !hedge_mode && pool_ == nullptr && opts.op_timeout_ms <= 0.0 && queues.size() > 1;
        if (async_overlap) {
            for (const core::DiskBatch& q : queues) {
                async_overlap =
                    async_overlap && devices_[static_cast<std::size_t>(q.disk)]->async_reads();
            }
        }

        ElementMap hedged;
        if (hedge_mode) {
            // Hedged execution: every queue is a self-contained task that
            // owns its buffers and co-owns the shared round state. When
            // the slowest queue is still running past the hedge deadline,
            // its elements are decoded from the other disks and the round
            // returns WITHOUT joining it — the orphaned queue finishes on
            // the pool (tracked by the executor's orphan counter so sinks
            // and devices outlive it), keeps feeding the heat model with
            // its true stall latency, and its late payload is dropped
            // with the last shared reference to the state.
            auto state = std::make_shared<HedgeState>();
            state->opts = opts;
            state->queue_done.assign(queues.size(), 0);
            state->queues.resize(queues.size());
            for (std::size_t a = 0; a < queues.size(); ++a) {
                HedgeState::Queue& hq = state->queues[a];
                hq.disk = queues[a].disk;
                hq.rows = queues[a].rows;
                hq.keys.reserve(queues[a].fetch_indices.size());
                hq.bufs.reserve(queues[a].fetch_indices.size());
                for (std::size_t i : queues[a].fetch_indices) {
                    hq.keys.push_back(key_of(fetches[i].coord));
                    hq.bufs.push_back(
                        ElementBuf::alloc(static_cast<std::size_t>(element_bytes_), buffer_pool_));
                }
            }
            for (std::size_t a = 0; a < queues.size(); ++a) {
                orphan_started();
                pool_->submit([this, state, a] {
                    run_hedged_queue(*state, a);
                    {
                        // Notify under the mutex: the waiter may drop its
                        // state reference the moment the predicate holds.
                        std::lock_guard<std::mutex> lock(state->mu);
                        state->queue_done[a] = 1;
                        ++state->done;
                        state->cv.notify_all();
                    }
                    orphan_finished();
                });
            }
            std::unique_lock<std::mutex> lock(state->mu);
            const bool all_done =
                state->cv.wait_for(lock,
                                   std::chrono::duration<double, std::milli>(hedge_deadline_ms),
                                   [&] { return state->done == state->queues.size(); });
            if (!all_done) {
                std::vector<char> avoid(devices_.size(), 0);
                std::vector<std::size_t> stragglers;
                for (std::size_t a = 0; a < queues.size(); ++a) {
                    if (!state->queue_done[a]) {
                        avoid[static_cast<std::size_t>(queues[a].disk)] = 1;
                        stragglers.push_back(a);
                    }
                }
                lock.unlock();
                for (DiskId d : excluded) avoid[static_cast<std::size_t>(d)] = 1;
                if (rt != nullptr) {
                    rt->complete(fetch_node, "hedge.trigger", obs::forensic_now_us(), 0.0,
                                 {{"stragglers", std::to_string(stragglers.size())},
                                  {"deadline_ms", std::to_string(hedge_deadline_ms)},
                                  {"auto", opts.auto_hedge ? "true" : "false"}});
                }
                for (std::size_t a : stragglers) {
                    for (std::size_t i : queues[a].fetch_indices) {
                        const Key key = key_of(fetches[i].coord);
                        if (m.hedged_reads != nullptr) m.hedged_reads->add(1);
                        if (rt != nullptr) rt->count_hedge();
                        ElementBuf target =
                            ElementBuf::alloc(static_cast<std::size_t>(element_bytes_),
                                              buffer_pool_);
                        const double hedge_t0 = rt != nullptr ? obs::forensic_now_us() : 0.0;
                        const bool decoded = side_decode(fetches[i].coord, avoid, target.span());
                        if (rt != nullptr) {
                            rt->complete(fetch_node, "hedge.decode", hedge_t0,
                                         obs::forensic_now_us() - hedge_t0,
                                         {{"disk", std::to_string(queues[a].disk)},
                                          {"stripe", std::to_string(fetches[i].coord.stripe)},
                                          {"group", std::to_string(fetches[i].coord.group)},
                                          {"position", std::to_string(fetches[i].coord.position)},
                                          {"decoded", decoded ? "true" : "false"}});
                        }
                        if (decoded) hedged.emplace(key, std::move(target));
                    }
                }
                lock.lock();
                // A straggler whose elements could not all be hedge-decoded
                // must be joined after all — correctness beats the
                // deadline. (Typical cause: every queue missed the deadline
                // at once, e.g. a saturated pool, so `avoid` left no disks
                // to decode from. A genuinely slow minority decodes fully
                // and this wait returns immediately.)
                state->cv.wait(lock, [&] {
                    for (std::size_t a : stragglers) {
                        if (state->queue_done[a] != 0) continue;
                        for (const Key& key : state->queues[a].keys) {
                            if (hedged.find(key) == hedged.end()) return false;
                        }
                    }
                    return true;
                });
            }
            // Harvest every queue that has finished by now — the decode
            // window above may have let a near-miss complete. Stragglers
            // stay orphaned; their elements were hedge-decoded instead.
            const std::vector<char> finished = state->queue_done;
            lock.unlock();
            for (std::size_t a = 0; a < state->queues.size(); ++a) {
                if (finished[a] == 0) continue;
                HedgeState::Queue& hq = state->queues[a];
                if (rt != nullptr) {
                    const std::uint32_t batch_node = rt->complete(
                        fetch_node, "disk.batch", hq.issue_us, hq.dur_us,
                        {obs::RequestTrace::IntAttr{"disk", hq.disk},
                         {"elements", static_cast<std::int64_t>(hq.keys.size())},
                         {"done", static_cast<std::int64_t>(hq.done_ops)},
                         {"bytes", static_cast<std::int64_t>(hq.done_ops) * element_bytes_}});
                    if (!hq.status.ok()) rt->attr(batch_node, "error", hq.status.error().message);
                }
                if (tracer != nullptr) {
                    tracer->complete("disk.batch", "io", tracer->now_us() - hq.dur_us, hq.dur_us,
                                     {{"disk", std::to_string(hq.disk)},
                                      {"elements", std::to_string(hq.keys.size())}});
                }
                if (!hq.status.ok()) {
                    bad.push_back(hq.disk);
                    last_error = hq.status.error();
                }
                for (std::size_t j = 0; j < hq.done_ops; ++j) {
                    fetched.emplace(hq.keys[j], std::move(hq.bufs[j]));
                }
            }
        } else if (async_overlap) {
            struct Flight {
                std::vector<ByteSpan> outs;
                std::unique_ptr<store::BlockDevice::AsyncBatch> batch;
                double issue_us = 0.0;     // tracer clock
                double rt_issue_us = 0.0;  // forensic clock
                std::chrono::steady_clock::time_point heat_t0;
            };
            std::vector<Flight> flights(queues.size());
            for (std::size_t a = 0; a < queues.size(); ++a) {
                const core::DiskBatch& queue = queues[a];
                Flight& f = flights[a];
                f.issue_us = tracer != nullptr ? tracer->now_us() : 0.0;
                f.rt_issue_us = rt != nullptr ? obs::forensic_now_us() : 0.0;
                f.heat_t0 = std::chrono::steady_clock::now();
                if (heat != nullptr) heat->on_issue(queue.disk);
                f.outs.reserve(queue.fetch_indices.size());
                for (std::size_t i : queue.fetch_indices) {
                    f.outs.push_back(round.find(key_of(fetches[i].coord))->second.span());
                }
                f.batch = devices_[static_cast<std::size_t>(queue.disk)]->submit_read_batch(
                    queue.rows, std::span<const ByteSpan>(f.outs.data(), f.outs.size()));
            }
            for (std::size_t a = 0; a < queues.size(); ++a) {
                const core::DiskBatch& queue = queues[a];
                Flight& f = flights[a];
                std::size_t done = 0;
                Status status = f.batch->await(&done);
                f.batch.reset();
                if (!status.ok() && status.error().code == Error::Code::io_error &&
                    opts.max_retries > 0 && done < queue.rows.size()) {
                    // Recover the suffix through the policy path: the
                    // failed op and everything behind it get the retry /
                    // backoff machinery, re-reading over whatever the
                    // abandoned async ops may have scribbled.
                    std::size_t more = 0;
                    const std::span<const RowId> rows(queue.rows);
                    const std::span<const ByteSpan> outs(f.outs.data(), f.outs.size());
                    status = submit_queue(queue.disk, rows.subspan(done), outs.subspan(done),
                                          opts, &more, TraceCtx{rt, fetch_node});
                    done += more;
                }
                if (heat != nullptr) {
                    const double queue_us = std::chrono::duration<double, std::micro>(
                                                std::chrono::steady_clock::now() - f.heat_t0)
                                                .count();
                    const double now_s = obs::DiskHeatModel::now_seconds();
                    heat->on_complete(queue.disk, static_cast<std::int64_t>(done),
                                      static_cast<std::int64_t>(done) * element_bytes_, queue_us,
                                      now_s);
                    if (!status.ok() && status.error().code != Error::Code::timeout) {
                        heat->on_error(queue.disk, now_s);
                    }
                }
                if (rt != nullptr) {
                    const std::uint32_t batch_node = rt->complete(
                        fetch_node, "disk.batch", f.rt_issue_us,
                        obs::forensic_now_us() - f.rt_issue_us,
                        {obs::RequestTrace::IntAttr{"disk", queue.disk},
                         {"elements", static_cast<std::int64_t>(queue.fetch_indices.size())},
                         {"done", static_cast<std::int64_t>(done)},
                         {"bytes", static_cast<std::int64_t>(done) * element_bytes_}});
                    if (!status.ok()) rt->attr(batch_node, "error", status.error().message);
                }
                if (tracer != nullptr && status.ok()) {
                    tracer->complete("disk.batch", "io", f.issue_us,
                                     tracer->now_us() - f.issue_us,
                                     {{"disk", std::to_string(queue.disk)},
                                      {"elements", std::to_string(queue.fetch_indices.size())}});
                }
                // Single-threaded: harvest straight into `fetched` (the
                // shared `succeeded` set is for the pooled paths) and let
                // any recipe whose sources just completed decode now,
                // overlapping the disks still in flight.
                for (std::size_t j = 0; j < done; ++j) {
                    const Key key = key_of(fetches[queue.fetch_indices[j]].coord);
                    auto it = round.find(key);
                    fetched.emplace(key, std::move(it->second));
                }
                if (!status.ok()) {
                    bad.push_back(queue.disk);
                    last_error = status.error();
                    continue;
                }
                // Partial mode cannot fail: recipes missing sources are
                // skipped and re-tried by the final decode stage.
                Status eager = try_decode(p, fetched, /*partial=*/true,
                                          TraceCtx{rt, fetch_node}, sink);
                (void)eager;
            }
        } else if (pool_ != nullptr && queues.size() > 1) {
            parallel_for(*pool_, queues.size(), run_queue);
        } else {
            for (std::size_t a = 0; a < queues.size(); ++a) run_queue(a);
        }

        for (const Key& key : succeeded) {
            auto it = round.find(key);
            fetched.emplace(key, std::move(it->second));
        }
        for (auto& [key, buf] : hedged) {
            if (fetched.find(key) == fetched.end()) fetched.emplace(key, std::move(buf));
        }
        for (const auto& access : fetches) {
            if (fetched.find(key_of(access.coord)) == fetched.end()) {
                outcome.complete = false;
                break;
            }
        }
        outcome.bad_disks = std::move(bad);
        outcome.last_error = std::move(last_error);
        return outcome;
    };

    // Replan loop: plan, fetch, and when a disk misbehaves mid-flight,
    // exclude it and re-plan the remaining elements around it — reusing
    // every element already in hand. Each round's plan/fetch pair lands
    // as contiguous phase spans directly under the request root, so the
    // per-phase durations tile the request end to end.
    std::optional<Error> last_error;
    for (int round = 0;; ++round) {
        const std::uint32_t plan_node =
            rt != nullptr ? rt->begin_phase("plan",
                                            {{"round", round},
                                             {"excluded", static_cast<std::int64_t>(
                                                              excluded.size())}})
                          : 0;
        auto planned = replan(excluded);
        if (rt != nullptr) {
            if (planned.ok()) {
                rt->end_with(plan_node,
                             {{"fetches", planned.value().total_fetched()},
                              {"decodes",
                               static_cast<std::int64_t>(planned.value().decodes().size())}});
            } else {
                rt->attr(plan_node, "error", planned.error().message);
                rt->end(plan_node);
            }
        }
        if (!planned.ok()) return planned.error();
        if (round > 0) {
            if (m.replans != nullptr) m.replans->add(1);
            if (rt != nullptr) rt->count_replan();
        }
        plan.emplace(std::move(planned).take());

        const std::uint32_t fetch_node =
            rt != nullptr ? rt->begin_phase("fetch", {{"round", round}}) : 0;
        FetchOutcome outcome = fetch_round(*plan, fetch_node);
        if (rt != nullptr) {
            if (!outcome.bad_disks.empty()) {
                rt->end_with(fetch_node, {{"bad_disks", static_cast<std::int64_t>(
                                                            outcome.bad_disks.size())}});
            } else {
                rt->end(fetch_node);
            }
        }
        if (outcome.last_error.has_value()) last_error = outcome.last_error;
        if (outcome.complete) break;
        bool grew = false;
        for (DiskId d : outcome.bad_disks) {
            if (std::find(excluded.begin(), excluded.end(), d) == excluded.end()) {
                excluded.push_back(d);
                grew = true;
            }
        }
        if (!grew || round >= opts.max_replans) {
            if (last_error.has_value()) return *last_error;
            return Error::io("element fetch failed during plan execution");
        }
    }

    return FetchResult{std::move(*plan), std::move(fetched), std::move(excluded)};
}

Status PlanExecutor::decode(const AccessPlan& plan, ElementMap& elements, TraceCtx tc,
                            const Sink& sink) const {
    return try_decode(plan, elements, /*partial=*/false, tc, sink);
}

Status PlanExecutor::try_decode(const AccessPlan& plan, ElementMap& elements, bool partial,
                                TraceCtx tc, const Sink& sink) const {
    const ExecutorMetrics& m = metrics();
    for (const auto& decode : plan.decodes()) {
        const Key target_key{decode.stripe, decode.group, decode.repair.target_position};
        // Recipes run in plan order (later recipes may chain on earlier
        // targets); ones already satisfied by an eager pass are skipped,
        // so each recipe is decoded and counted exactly once per fetch.
        if (elements.find(target_key) != elements.end()) continue;
        const double decode_t0 = tc.rt != nullptr ? obs::forensic_now_us() : 0.0;
        std::vector<ByteSpan> buffers(static_cast<std::size_t>(scheme_->code().n()));
        bool ready = true;
        for (const auto& term : decode.repair.terms) {
            auto it = elements.find({decode.stripe, decode.group, term.source_position});
            if (it == elements.end()) {
                if (partial) {
                    ready = false;
                    break;
                }
                return Error::internal("decode source missing from plan");
            }
            buffers[static_cast<std::size_t>(term.source_position)] = it->second.span();
        }
        if (!ready) continue;
        ElementBuf target = make_element(target_key, sink);
        buffers[static_cast<std::size_t>(decode.repair.target_position)] = target.span();
        codes::DecodePlan one;
        one.repairs.push_back(decode.repair);
        codes::ErasureCode::apply_plan(one, buffers, pool_);
        elements.emplace(target_key, std::move(target));
        if (m.decodes != nullptr) m.decodes->add(1);
        if (tc.rt != nullptr) {
            tc.rt->add_decodes(1);
            tc.rt->complete(tc.parent, "decode.element", decode_t0,
                            obs::forensic_now_us() - decode_t0,
                            {obs::RequestTrace::IntAttr{"stripe", decode.stripe},
                             {"group", decode.group},
                             {"position", decode.repair.target_position},
                             {"sources", static_cast<std::int64_t>(decode.repair.terms.size())}});
        }
    }
    return Status::success();
}

Result<std::int64_t> PlanExecutor::rebuild_element(const GroupCoord& coord,
                                                   const std::vector<char>& avoid,
                                                   ByteSpan target) const {
    const auto& code = scheme_->code();
    std::vector<int> available;
    for (int p = 0; p < code.n(); ++p) {
        if (p == coord.position) continue;
        const Location ploc = scheme_->layout().locate({coord.stripe, coord.group, p});
        if (!avoid[static_cast<std::size_t>(ploc.disk)]) available.push_back(p);
    }
    auto repair = code.solve_repair(coord.position, available);
    if (!repair.ok()) return repair.error();
    std::vector<AlignedBuffer> srcs;
    std::vector<ByteSpan> buffers(static_cast<std::size_t>(code.n()));
    srcs.reserve(repair->terms.size());
    for (const auto& term : repair->terms) {
        const Location sloc =
            scheme_->layout().locate({coord.stripe, coord.group, term.source_position});
        srcs.emplace_back(static_cast<std::size_t>(element_bytes_));
        auto status = device_read(sloc.disk, sloc.row, srcs.back().span());
        if (!status.ok()) return status.error();
        buffers[static_cast<std::size_t>(term.source_position)] = srcs.back().span();
    }
    buffers[static_cast<std::size_t>(coord.position)] = target;
    codes::DecodePlan one;
    one.repairs.push_back(repair.value());
    codes::ErasureCode::apply_plan(one, buffers);
    return static_cast<std::int64_t>(repair->terms.size());
}

Status PlanExecutor::read_group(StripeId stripe, int group, std::span<const ByteSpan> bufs) const {
    const int n = scheme_->code().n();
    if (static_cast<int>(bufs.size()) != n) return Error::invalid("read_group needs n buffers");
    struct Item {
        Location loc;
        int position;
    };
    std::vector<Item> items;
    items.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
        items.push_back({scheme_->layout().locate({stripe, group, p}), p});
    }
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
        return a.loc.disk != b.loc.disk ? a.loc.disk < b.loc.disk : a.loc.row < b.loc.row;
    });
    std::size_t i = 0;
    while (i < items.size()) {
        std::size_t j = i;
        while (j < items.size() && items[j].loc.disk == items[i].loc.disk) ++j;
        std::vector<RowId> rows;
        std::vector<ByteSpan> outs;
        rows.reserve(j - i);
        outs.reserve(j - i);
        for (std::size_t t = i; t < j; ++t) {
            rows.push_back(items[t].loc.row);
            outs.push_back(bufs[static_cast<std::size_t>(items[t].position)]);
        }
        auto status = devices_[static_cast<std::size_t>(items[i].loc.disk)]->read_batch(
            std::span<const RowId>(rows.data(), rows.size()),
            std::span<const ByteSpan>(outs.data(), outs.size()));
        if (!status.ok()) return status;
        i = j;
    }
    return Status::success();
}

}  // namespace ecfrm::exec
