// Dense matrices over GF(2^8): the algebra behind generator construction,
// erasure decoding, and recoverability checks.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/result.h"

namespace ecfrm::matrix {

/// Row-major dense matrix over GF(2^8).
class Matrix {
  public:
    Matrix() = default;
    Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, 0) {}

    /// Build from nested initializer lists (test convenience).
    Matrix(std::initializer_list<std::initializer_list<std::uint8_t>> init);

    static Matrix identity(int n);
    static Matrix zero(int rows, int cols) { return Matrix(rows, cols); }

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    std::uint8_t& at(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
    std::uint8_t at(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }

    /// Pointer to row r (cols() contiguous coefficients).
    const std::uint8_t* row(int r) const { return data_.data() + static_cast<std::size_t>(r) * cols_; }
    std::uint8_t* row(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }

    friend bool operator==(const Matrix&, const Matrix&) = default;

    /// Matrix product over GF(2^8). Requires cols() == rhs.rows().
    Matrix operator*(const Matrix& rhs) const;

    /// Entry-wise addition (XOR). Requires identical shapes.
    Matrix operator+(const Matrix& rhs) const;

    /// New matrix formed from the given rows, in order.
    Matrix select_rows(const std::vector<int>& row_indices) const;

    /// New matrix formed from the given columns, in order.
    Matrix select_cols(const std::vector<int>& col_indices) const;

    /// Gauss-Jordan inverse. Fails with Error::undecodable when singular.
    Result<Matrix> inverted() const;

    /// Rank via Gaussian elimination (does not modify *this).
    int rank() const;

    bool is_identity() const;

    /// Swap two rows in place.
    void swap_rows(int a, int b);

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<std::uint8_t> data_;
};

/// y = M x where x and y are coefficient column vectors.
std::vector<std::uint8_t> mat_vec(const Matrix& m, const std::vector<std::uint8_t>& x);

}  // namespace ecfrm::matrix
