#include "matrix/matrix.h"

#include <cassert>

#include "gf/gf256.h"

namespace ecfrm::matrix {

using gf::Gf256;

Matrix::Matrix(std::initializer_list<std::initializer_list<std::uint8_t>> init) {
    rows_ = static_cast<int>(init.size());
    cols_ = rows_ > 0 ? static_cast<int>(init.begin()->size()) : 0;
    data_.reserve(static_cast<std::size_t>(rows_) * cols_);
    for (const auto& row : init) {
        assert(static_cast<int>(row.size()) == cols_);
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m.at(i, i) = 1;
    return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
    assert(cols_ == rhs.rows_);
    Matrix out(rows_, rhs.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int l = 0; l < cols_; ++l) {
            const std::uint8_t a = at(i, l);
            if (a == 0) continue;
            const std::uint8_t* mrow = Gf256::mul_row(a);
            const std::uint8_t* rrow = rhs.row(l);
            std::uint8_t* orow = out.row(i);
            for (int j = 0; j < rhs.cols_; ++j) orow[j] ^= mrow[rrow[j]];
        }
    }
    return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
    assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] ^ rhs.data_[i];
    return out;
}

Matrix Matrix::select_rows(const std::vector<int>& row_indices) const {
    Matrix out(static_cast<int>(row_indices.size()), cols_);
    for (int i = 0; i < out.rows_; ++i) {
        const int r = row_indices[static_cast<std::size_t>(i)];
        assert(r >= 0 && r < rows_);
        for (int j = 0; j < cols_; ++j) out.at(i, j) = at(r, j);
    }
    return out;
}

Matrix Matrix::select_cols(const std::vector<int>& col_indices) const {
    Matrix out(rows_, static_cast<int>(col_indices.size()));
    for (int i = 0; i < rows_; ++i) {
        for (int j = 0; j < out.cols_; ++j) {
            const int c = col_indices[static_cast<std::size_t>(j)];
            assert(c >= 0 && c < cols_);
            out.at(i, j) = at(i, c);
        }
    }
    return out;
}

Result<Matrix> Matrix::inverted() const {
    assert(rows_ == cols_);
    const int n = rows_;
    Matrix a = *this;
    Matrix inv = Matrix::identity(n);

    for (int col = 0; col < n; ++col) {
        // Pivot search (any nonzero works — GF has no rounding concerns).
        int pivot = -1;
        for (int r = col; r < n; ++r) {
            if (a.at(r, col) != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) return Error::undecodable("singular matrix in GF(2^8) inversion");
        a.swap_rows(col, pivot);
        inv.swap_rows(col, pivot);

        // Normalise pivot row.
        const std::uint8_t p = a.at(col, col);
        if (p != 1) {
            const std::uint8_t pinv = Gf256::inv(p);
            const std::uint8_t* mrow = Gf256::mul_row(pinv);
            for (int j = 0; j < n; ++j) {
                a.at(col, j) = mrow[a.at(col, j)];
                inv.at(col, j) = mrow[inv.at(col, j)];
            }
        }

        // Eliminate the column everywhere else.
        for (int r = 0; r < n; ++r) {
            if (r == col) continue;
            const std::uint8_t f = a.at(r, col);
            if (f == 0) continue;
            const std::uint8_t* mrow = Gf256::mul_row(f);
            for (int j = 0; j < n; ++j) {
                a.at(r, j) ^= mrow[a.at(col, j)];
                inv.at(r, j) ^= mrow[inv.at(col, j)];
            }
        }
    }
    return inv;
}

int Matrix::rank() const {
    Matrix a = *this;
    int rank = 0;
    for (int col = 0; col < cols_ && rank < rows_; ++col) {
        int pivot = -1;
        for (int r = rank; r < rows_; ++r) {
            if (a.at(r, col) != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) continue;
        a.swap_rows(rank, pivot);
        const std::uint8_t pinv = Gf256::inv(a.at(rank, col));
        const std::uint8_t* prow = Gf256::mul_row(pinv);
        for (int j = 0; j < cols_; ++j) a.at(rank, j) = prow[a.at(rank, j)];
        for (int r = 0; r < rows_; ++r) {
            if (r == rank) continue;
            const std::uint8_t f = a.at(r, col);
            if (f == 0) continue;
            const std::uint8_t* mrow = Gf256::mul_row(f);
            for (int j = 0; j < cols_; ++j) a.at(r, j) ^= mrow[a.at(rank, j)];
        }
        ++rank;
    }
    return rank;
}

bool Matrix::is_identity() const {
    if (rows_ != cols_) return false;
    for (int i = 0; i < rows_; ++i) {
        for (int j = 0; j < cols_; ++j) {
            if (at(i, j) != (i == j ? 1 : 0)) return false;
        }
    }
    return true;
}

void Matrix::swap_rows(int a, int b) {
    if (a == b) return;
    for (int j = 0; j < cols_; ++j) std::swap(at(a, j), at(b, j));
}

std::vector<std::uint8_t> mat_vec(const Matrix& m, const std::vector<std::uint8_t>& x) {
    assert(static_cast<int>(x.size()) == m.cols());
    std::vector<std::uint8_t> y(static_cast<std::size_t>(m.rows()), 0);
    for (int i = 0; i < m.rows(); ++i) {
        std::uint8_t acc = 0;
        const std::uint8_t* row = m.row(i);
        for (int j = 0; j < m.cols(); ++j) acc ^= Gf256::mul(row[j], x[static_cast<std::size_t>(j)]);
        y[static_cast<std::size_t>(i)] = acc;
    }
    return y;
}

}  // namespace ecfrm::matrix
