// Structured matrix constructions used by the codes: Vandermonde, Cauchy,
// and the systematic-form transform that turns an arbitrary full-rank
// generator into one whose top k x k block is the identity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "matrix/matrix.h"

namespace ecfrm::matrix {

/// rows x cols Vandermonde: entry (i, j) = x_i^j with x_i = i (as a field
/// element). Any k distinct evaluation points give rank k, but the matrix
/// is NOT systematic; pair with systematize().
Matrix vandermonde(int rows, int cols);

/// Cauchy block: entry (i, j) = 1 / (x_i + y_j). Requires all x_i distinct,
/// all y_j distinct, and x_i != y_j for every pair; every square submatrix
/// is then invertible, which makes [I ; C] an MDS generator directly.
Matrix cauchy(const std::vector<std::uint8_t>& xs, const std::vector<std::uint8_t>& ys);

/// Convenience: the m x k Cauchy block with x_i = k + i and y_j = j,
/// valid whenever k + m <= 256.
Result<Matrix> cauchy_parity_block(int k, int m);

/// Transform an n x k full-rank generator so its top k x k block becomes
/// the identity (right-multiplication by the inverse of the top block).
/// The row space — hence the code — is unchanged only in the sense that the
/// new code is equivalent; for erasure coding this is the standard way to
/// obtain a systematic generator from a Vandermonde one.
Result<Matrix> systematize(const Matrix& generator);

}  // namespace ecfrm::matrix
