#include "matrix/builders.h"

#include <cassert>

#include "gf/gf256.h"

namespace ecfrm::matrix {

using gf::Gf256;

Matrix vandermonde(int rows, int cols) {
    Matrix m(rows, cols);
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
            m.at(i, j) = Gf256::pow(static_cast<std::uint8_t>(i), static_cast<unsigned>(j));
        }
    }
    return m;
}

Matrix cauchy(const std::vector<std::uint8_t>& xs, const std::vector<std::uint8_t>& ys) {
    Matrix m(static_cast<int>(xs.size()), static_cast<int>(ys.size()));
    for (int i = 0; i < m.rows(); ++i) {
        for (int j = 0; j < m.cols(); ++j) {
            const std::uint8_t s = Gf256::add(xs[static_cast<std::size_t>(i)], ys[static_cast<std::size_t>(j)]);
            assert(s != 0 && "Cauchy points must satisfy x_i != y_j");
            m.at(i, j) = Gf256::inv(s);
        }
    }
    return m;
}

Result<Matrix> cauchy_parity_block(int k, int m) {
    if (k <= 0 || m <= 0 || k + m > 256) {
        return Error::invalid("cauchy_parity_block requires 0 < k, 0 < m, k + m <= 256");
    }
    std::vector<std::uint8_t> xs(static_cast<std::size_t>(m));
    std::vector<std::uint8_t> ys(static_cast<std::size_t>(k));
    for (int i = 0; i < m; ++i) xs[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(k + i);
    for (int j = 0; j < k; ++j) ys[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(j);
    return cauchy(xs, ys);
}

Result<Matrix> systematize(const Matrix& generator) {
    const int k = generator.cols();
    if (generator.rows() < k) return Error::invalid("generator has fewer rows than columns");

    std::vector<int> top(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) top[static_cast<std::size_t>(i)] = i;
    auto inv = generator.select_rows(top).inverted();
    if (!inv.ok()) return Error::undecodable("top k x k block of generator is singular");
    return generator * inv.value();
}

}  // namespace ecfrm::matrix
