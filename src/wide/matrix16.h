// Dense matrices over GF(2^16) — the algebra for wide-stripe codes whose
// total width exceeds the 256-element ceiling of GF(2^8).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ecfrm::wide {

class Matrix16 {
  public:
    Matrix16() = default;
    Matrix16(int rows, int cols)
        : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, 0) {}

    static Matrix16 identity(int n);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    std::uint16_t& at(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
    std::uint16_t at(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }

    friend bool operator==(const Matrix16&, const Matrix16&) = default;

    Matrix16 operator*(const Matrix16& rhs) const;
    Matrix16 select_rows(const std::vector<int>& rows) const;
    Result<Matrix16> inverted() const;
    int rank() const;
    bool is_identity() const;
    void swap_rows(int a, int b);

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<std::uint16_t> data_;
};

}  // namespace ecfrm::wide
