// Reed-Solomon over GF(2^16): the wide-stripe substrate for arrays whose
// total width exceeds GF(2^8)'s 256-element ceiling. EC-FRM's layout math
// (Section IV-B) is field-independent — gcd geometry only — so pairing
// EcfrmLayout with this code extends the framework to hundreds of disks;
// the "arbitrary number of disks" property (Section V-B), made concrete.
//
// Element buffers are interpreted as little-endian 16-bit symbols and must
// have even length.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "wide/matrix16.h"

namespace ecfrm::wide {

class Rs16Code {
  public:
    /// Systematic Cauchy construction; requires k + m <= 65536.
    static Result<std::unique_ptr<Rs16Code>> make(int k, int m);

    int n() const { return generator_.rows(); }
    int k() const { return generator_.cols(); }
    int m() const { return n() - k(); }
    int fault_tolerance() const { return m(); }

    const Matrix16& generator() const { return generator_; }

    /// Compute the m parity buffers from the k data buffers. All spans
    /// share one even length.
    Status encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity) const;

    /// True when the data survives with only `available` positions left.
    bool decodable(const std::vector<int>& available) const;

    /// Rebuild `target` from the given sources (any k positions work).
    /// Writes the recovered payload into `out`.
    Status repair(int target, const std::vector<int>& sources,
                  const std::vector<ConstByteSpan>& source_payloads, ByteSpan out) const;

  private:
    explicit Rs16Code(Matrix16 generator) : generator_(std::move(generator)) {}

    Matrix16 generator_;
};

/// dst ^= c * src over GF(2^16) on 16-bit little-endian symbols.
void addmul16_region(ByteSpan dst, ConstByteSpan src, std::uint16_t c);

}  // namespace ecfrm::wide
