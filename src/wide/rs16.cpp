#include "wide/rs16.h"

#include <cassert>
#include <cstring>

#include "gf/gf65536.h"
#include "gf/kernels.h"
#include "gf/region.h"

namespace ecfrm::wide {

using gf::Gf65536;

void addmul16_region(ByteSpan dst, ConstByteSpan src, std::uint16_t c) {
    // Dispatched split-table kernel (scalar nibble tables up to AVX2
    // vpshufb) — the old per-symbol log/exp loop is gone.
    gf::addmul16_region(dst, src, c);
}

Result<std::unique_ptr<Rs16Code>> Rs16Code::make(int k, int m) {
    if (k <= 0 || m <= 0) return Error::invalid("RS16 requires k > 0 and m > 0");
    if (k + m > 65536) return Error::invalid("RS16 over GF(2^16) requires k + m <= 65536");

    Matrix16 gen(k + m, k);
    for (int i = 0; i < k; ++i) gen.at(i, i) = 1;
    // Cauchy block: x_i = k + i, y_j = j; x and y ranges are disjoint so
    // every square submatrix is invertible (MDS by construction).
    for (int p = 0; p < m; ++p) {
        for (int j = 0; j < k; ++j) {
            gen.at(k + p, j) = Gf65536::inv(static_cast<std::uint16_t>((k + p) ^ j));
        }
    }
    return std::unique_ptr<Rs16Code>(new Rs16Code(std::move(gen)));
}

Status Rs16Code::encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity) const {
    if (static_cast<int>(data.size()) != k() || static_cast<int>(parity.size()) != m()) {
        return Error::invalid("RS16 encode: buffer count mismatch");
    }
    if (!data.empty() && data[0].size() % 2 != 0) {
        return Error::invalid("RS16 encode: buffers must have even length");
    }
    // Fused cache-blocked pass over all m parities (coefficient block =
    // generator rows k..n-1, gathered row-major).
    std::vector<std::uint16_t> coeffs(static_cast<std::size_t>(m()) * static_cast<std::size_t>(k()));
    for (int p = 0; p < m(); ++p) {
        for (int j = 0; j < k(); ++j) {
            coeffs[static_cast<std::size_t>(p * k() + j)] = generator_.at(k() + p, j);
        }
    }
    gf::encode16_regions(data, parity, coeffs.data());
    return Status::success();
}

bool Rs16Code::decodable(const std::vector<int>& available) const {
    return generator_.select_rows(available).rank() == k();
}

Status Rs16Code::repair(int target, const std::vector<int>& sources,
                        const std::vector<ConstByteSpan>& source_payloads, ByteSpan out) const {
    if (sources.size() != source_payloads.size()) {
        return Error::invalid("RS16 repair: sources/payload count mismatch");
    }
    if (static_cast<int>(sources.size()) != k()) {
        return Error::invalid("RS16 repair expects exactly k sources");
    }
    // coefficients = G_target * inv(G_sources).
    auto inv = generator_.select_rows(sources).inverted();
    if (!inv.ok()) return Error::undecodable("RS16 repair: source set not invertible");

    std::vector<std::uint16_t> coeffs(static_cast<std::size_t>(k()), 0);
    for (int j = 0; j < k(); ++j) {
        std::uint16_t acc = 0;
        for (int l = 0; l < k(); ++l) {
            acc ^= Gf65536::mul(generator_.at(target, l), inv->at(l, j));
        }
        coeffs[static_cast<std::size_t>(j)] = acc;
    }

    gf::encode16_regions(source_payloads, {out}, coeffs.data());
    return Status::success();
}

}  // namespace ecfrm::wide
