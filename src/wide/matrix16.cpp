#include "wide/matrix16.h"

#include <cassert>

#include "gf/gf65536.h"

namespace ecfrm::wide {

using gf::Gf65536;

Matrix16 Matrix16::identity(int n) {
    Matrix16 m(n, n);
    for (int i = 0; i < n; ++i) m.at(i, i) = 1;
    return m;
}

Matrix16 Matrix16::operator*(const Matrix16& rhs) const {
    assert(cols_ == rhs.rows_);
    Matrix16 out(rows_, rhs.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int l = 0; l < cols_; ++l) {
            const std::uint16_t a = at(i, l);
            if (a == 0) continue;
            for (int j = 0; j < rhs.cols_; ++j) {
                out.at(i, j) ^= Gf65536::mul(a, rhs.at(l, j));
            }
        }
    }
    return out;
}

Matrix16 Matrix16::select_rows(const std::vector<int>& rows) const {
    Matrix16 out(static_cast<int>(rows.size()), cols_);
    for (int i = 0; i < out.rows_; ++i) {
        const int r = rows[static_cast<std::size_t>(i)];
        assert(r >= 0 && r < rows_);
        for (int j = 0; j < cols_; ++j) out.at(i, j) = at(r, j);
    }
    return out;
}

Result<Matrix16> Matrix16::inverted() const {
    assert(rows_ == cols_);
    const int n = rows_;
    Matrix16 a = *this;
    Matrix16 inv = identity(n);
    for (int col = 0; col < n; ++col) {
        int pivot = -1;
        for (int r = col; r < n; ++r) {
            if (a.at(r, col) != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) return Error::undecodable("singular matrix in GF(2^16) inversion");
        a.swap_rows(col, pivot);
        inv.swap_rows(col, pivot);
        const std::uint16_t pinv = Gf65536::inv(a.at(col, col));
        for (int j = 0; j < n; ++j) {
            a.at(col, j) = Gf65536::mul(pinv, a.at(col, j));
            inv.at(col, j) = Gf65536::mul(pinv, inv.at(col, j));
        }
        for (int r = 0; r < n; ++r) {
            if (r == col) continue;
            const std::uint16_t f = a.at(r, col);
            if (f == 0) continue;
            for (int j = 0; j < n; ++j) {
                a.at(r, j) ^= Gf65536::mul(f, a.at(col, j));
                inv.at(r, j) ^= Gf65536::mul(f, inv.at(col, j));
            }
        }
    }
    return inv;
}

int Matrix16::rank() const {
    Matrix16 a = *this;
    int rank = 0;
    for (int col = 0; col < cols_ && rank < rows_; ++col) {
        int pivot = -1;
        for (int r = rank; r < rows_; ++r) {
            if (a.at(r, col) != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) continue;
        a.swap_rows(rank, pivot);
        const std::uint16_t pinv = Gf65536::inv(a.at(rank, col));
        for (int j = 0; j < cols_; ++j) a.at(rank, j) = Gf65536::mul(pinv, a.at(rank, j));
        for (int r = 0; r < rows_; ++r) {
            if (r == rank) continue;
            const std::uint16_t f = a.at(r, col);
            if (f == 0) continue;
            for (int j = 0; j < cols_; ++j) a.at(r, j) ^= Gf65536::mul(f, a.at(rank, j));
        }
        ++rank;
    }
    return rank;
}

bool Matrix16::is_identity() const {
    if (rows_ != cols_) return false;
    for (int i = 0; i < rows_; ++i) {
        for (int j = 0; j < cols_; ++j) {
            if (at(i, j) != (i == j ? 1 : 0)) return false;
        }
    }
    return true;
}

void Matrix16::swap_rows(int a, int b) {
    if (a == b) return;
    for (int j = 0; j < cols_; ++j) std::swap(at(a, j), at(b, j));
}

}  // namespace ecfrm::wide
