// Disk service-time model calibrated to the paper's testbed class
// (Seagate Savvio 10K.3 SAS drives: 10 kRPM, ~4 ms average seek,
// ~125 MB/s media rate).
//
// A batch of element reads on one disk is priced as: per-extent positioning
// (seek with jitter + rotational latency) plus per-element transfer, where
// consecutive rows coalesce into one extent. The model is deliberately
// simple — the paper's effect rides on "parallel read latency equals the
// slowest disk's batch time", which this reproduces exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ecfrm::sim {

struct DiskProfile {
    double avg_seek_ms = 4.1;        // average seek (first positioning of a batch)
    double near_seek_ms = 1.0;       // short seek between extents of one batch
    double full_rotation_ms = 6.0;   // 10 kRPM -> 6 ms per rotation
    double transfer_mb_s = 60.0;     // effective end-to-end per-spindle rate
    double seek_jitter = 0.5;        // seek drawn uniform in avg*(1 +/- jitter)

    /// The paper's array class: Seagate Savvio 10K.3 (ST9300603SS) behind
    /// a file system; transfer_mb_s is the effective large-read rate, not
    /// the media peak.
    static DiskProfile savvio_10k3() { return DiskProfile{}; }

    /// An SSD-like profile for the ablation benches: negligible
    /// positioning, higher transfer rate.
    static DiskProfile generic_ssd() { return DiskProfile{0.05, 0.02, 0.0, 450.0, 0.2}; }
};

class DiskModel {
  public:
    DiskModel(DiskProfile profile, std::int64_t element_bytes)
        : profile_(profile), element_bytes_(element_bytes) {}

    std::int64_t element_bytes() const { return element_bytes_; }
    const DiskProfile& profile() const { return profile_; }

    /// Seconds to serve the given row set on one disk: a full positioning
    /// for the first extent, a short (near) seek plus rotational latency
    /// for each further extent, plus per-element transfer. `rows` need not
    /// be sorted; duplicates are the caller's bug (asserted in debug
    /// builds).
    double service_seconds(std::vector<RowId> rows, Rng& rng) const;

    /// Seconds to transfer one element (no positioning).
    double transfer_seconds() const {
        return static_cast<double>(element_bytes_) / (profile_.transfer_mb_s * 1e6);
    }

  private:
    double positioning_seconds(Rng& rng, bool first) const;

    DiskProfile profile_;
    std::int64_t element_bytes_;
};

}  // namespace ecfrm::sim
