// A minimal discrete-event simulation core: a time-ordered queue of
// callbacks with a virtual clock. Deterministic: ties break by insertion
// order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ecfrm::sim {

class EventQueue {
  public:
    using Handler = std::function<void()>;

    /// Current virtual time in seconds.
    double now() const { return now_; }

    /// Schedule `handler` at absolute time `when` (>= now()).
    void schedule_at(double when, Handler handler) {
        events_.push(Event{when, seq_++, std::move(handler)});
    }

    /// Schedule `handler` `delay` seconds from now.
    void schedule_in(double delay, Handler handler) { schedule_at(now_ + delay, std::move(handler)); }

    /// Run events until the queue drains. Returns the final clock value.
    double run() {
        while (!events_.empty()) {
            Event ev = std::move(const_cast<Event&>(events_.top()));
            events_.pop();
            now_ = ev.when;
            ev.handler();
        }
        return now_;
    }

    bool empty() const { return events_.empty(); }

  private:
    struct Event {
        double when;
        std::uint64_t seq;
        Handler handler;

        bool operator>(const Event& other) const {
            if (when != other.when) return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    double now_ = 0.0;
    std::uint64_t seq_ = 0;
};

}  // namespace ecfrm::sim
