// Per-request array simulation: price an AccessPlan against a disk array.
//
// The request is issued to all disks in parallel; it completes when the
// slowest involved disk finishes its batch — the mechanism the paper's
// measurements hinge on (Section III-A).
#pragma once

#include "common/rng.h"
#include "core/access_plan.h"
#include "obs/metrics.h"
#include "sim/disk_model.h"

namespace ecfrm::sim {

struct ReadTiming {
    double seconds = 0.0;
    std::int64_t requested_bytes = 0;

    /// Delivered user bandwidth in MB/s (the paper's "read speed").
    double mb_per_s() const {
        return seconds <= 0.0 ? 0.0 : static_cast<double>(requested_bytes) / 1e6 / seconds;
    }
};

/// Simulate one read request described by `plan`. With a registry
/// attached, each nonempty disk batch feeds its simulated service time
/// into ecfrm_sim_disk_service_seconds{disk=i} and its element count
/// into ecfrm_sim_disk_elements_total{disk=i}.
ReadTiming simulate_read(const core::AccessPlan& plan, const DiskModel& model, Rng& rng,
                         obs::MetricRegistry* metrics = nullptr);

/// Same, with a finite client network link: every fetched element (repair
/// traffic included) crosses one shared link, so completion time is
/// max(slowest disk batch, total fetched bytes / link rate). Models the
/// paper's "sufficient bandwidth" assumption breaking down (Section III).
ReadTiming simulate_read_with_network(const core::AccessPlan& plan, const DiskModel& model,
                                      double link_mb_s, Rng& rng,
                                      obs::MetricRegistry* metrics = nullptr);

}  // namespace ecfrm::sim
