#include "sim/disk_model.h"

#include <algorithm>
#include <cassert>

namespace ecfrm::sim {

double DiskModel::positioning_seconds(Rng& rng, bool first) const {
    const double base = first ? profile_.avg_seek_ms : profile_.near_seek_ms;
    const double seek_ms =
        base * (1.0 - profile_.seek_jitter + 2.0 * profile_.seek_jitter * rng.next_double());
    const double rot_ms = profile_.full_rotation_ms * rng.next_double();
    return (seek_ms + rot_ms) * 1e-3;
}

double DiskModel::service_seconds(std::vector<RowId> rows, Rng& rng) const {
    if (rows.empty()) return 0.0;
    std::sort(rows.begin(), rows.end());
    assert(std::adjacent_find(rows.begin(), rows.end()) == rows.end() && "duplicate row in disk batch");

    double seconds = 0.0;
    std::size_t i = 0;
    bool first = true;
    while (i < rows.size()) {
        // One positioning event per extent of consecutive rows: a full
        // seek to start the batch, short seeks between its extents.
        seconds += positioning_seconds(rng, first);
        first = false;
        std::size_t j = i + 1;
        while (j < rows.size() && rows[j] == rows[j - 1] + 1) ++j;
        seconds += static_cast<double>(j - i) * transfer_seconds();
        i = j;
    }
    return seconds;
}

}  // namespace ecfrm::sim
