// ClusterSim: discrete-event simulation of a disk array serving a STREAM
// of read requests with per-disk FIFO queues.
//
// This goes beyond the paper's one-request-at-a-time protocol: under
// concurrent load, a layout's per-disk balance shapes queueing delay, not
// just single-request latency. Used by the scale/queueing ablation bench
// and the cluster example.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/access_plan.h"
#include "core/write_plan.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "sim/disk_model.h"
#include "sim/event_queue.h"

namespace ecfrm::sim {

/// What a simulated job is doing. All kinds contend in the same per-disk
/// FIFO queues — a repair batch queues behind (and delays) foreground
/// read batches exactly as a real rebuild's writes share the devices —
/// but they are accounted to different forensic request classes
/// (read -> normal/degraded, write -> write, repair -> scrub).
enum class SimJobKind { read, write, repair };

struct ClusterRequest {
    double arrival_seconds = 0.0;
    core::AccessPlan plan{0};   // read jobs: the executor's fetch schedule
    SimJobKind kind = SimJobKind::read;
    core::WritePlan write{0};   // write/repair jobs: the executor's write schedule

    /// Factories for the mutation-side kinds (reads keep the historical
    /// `{arrival, plan}` aggregate shape).
    static ClusterRequest write_job(double arrival, core::WritePlan plan) {
        return ClusterRequest{arrival, core::AccessPlan{0}, SimJobKind::write, std::move(plan)};
    }
    static ClusterRequest repair_job(double arrival, core::WritePlan plan) {
        return ClusterRequest{arrival, core::AccessPlan{0}, SimJobKind::repair, std::move(plan)};
    }
};

struct RequestResult {
    double arrival_seconds = 0.0;
    double completion_seconds = 0.0;
    std::int64_t requested_bytes = 0;

    double latency_seconds() const { return completion_seconds - arrival_seconds; }
};

struct ClusterStats {
    std::vector<RequestResult> results;
    double makespan_seconds = 0.0;

    double mean_latency() const;
    double p99_latency() const;
    /// Aggregate delivered user bandwidth over the whole run, MB/s.
    double throughput_mb_s() const;
};

/// Run all requests through per-disk FIFO servers. Each request's disk
/// batch is serviced as one job; the request completes when its last batch
/// does. Read jobs price AccessPlan::batches(), write and repair jobs
/// price WritePlan::batches() — the exact submission units the real
/// executor issues on both paths. Deterministic given the RNG seed. With a registry attached, each
/// batch feeds ecfrm_sim_disk_service_seconds{disk=i} and the queue depth
/// it found on arrival (batches already queued or in service) into
/// ecfrm_sim_disk_queue_depth{disk=i}; whole-request latency goes to
/// ecfrm_sim_request_latency_seconds — all on the simulated clock.
///
/// With a `forensics` attached, every simulated request also records a
/// span tree on the simulated clock (root -> fetch phase -> per-disk
/// batch and queue-wait spans) and feeds the per-class SLO windows —
/// plans that decode count as degraded — so tail forensics work the same
/// against the simulator as against a real store.
///
/// With a `heat` model, every simulated batch feeds the live disk-heat
/// scoreboard on the *simulated* clock (issue at batch start, complete
/// with the batch's service time, plus each request's max batch load),
/// so balance/straggler queries read identically against sim output —
/// construct the model with the same clock domain in mind.
ClusterStats run_cluster(std::vector<ClusterRequest> requests, const DiskModel& model, int disks,
                         Rng& rng, obs::MetricRegistry* metrics = nullptr,
                         obs::RequestForensics* forensics = nullptr,
                         obs::DiskHeatModel* heat = nullptr);

}  // namespace ecfrm::sim
