#include "sim/array_sim.h"

#include <string>
#include <vector>

namespace ecfrm::sim {

ReadTiming simulate_read(const core::AccessPlan& plan, const DiskModel& model, Rng& rng,
                         obs::MetricRegistry* metrics) {
    const int disks = static_cast<int>(plan.per_disk_loads().size());
    std::vector<std::vector<RowId>> batches(static_cast<std::size_t>(disks));
    for (const auto& access : plan.fetches()) {
        batches[static_cast<std::size_t>(access.loc.disk)].push_back(access.loc.row);
    }

    double slowest = 0.0;
    for (std::size_t d = 0; d < batches.size(); ++d) {
        auto& rows = batches[d];
        if (rows.empty()) continue;
        const std::size_t elements = rows.size();
        const double t = model.service_seconds(std::move(rows), rng);
        slowest = std::max(slowest, t);
        if (metrics != nullptr) {
            const obs::Labels labels{{"disk", std::to_string(d)}};
            metrics->histogram("ecfrm_sim_disk_service_seconds", labels).record(t);
            metrics->counter("ecfrm_sim_disk_elements_total", labels)
                .add(static_cast<std::int64_t>(elements));
        }
    }

    ReadTiming timing;
    timing.seconds = slowest;
    timing.requested_bytes = plan.requested() * model.element_bytes();
    return timing;
}

ReadTiming simulate_read_with_network(const core::AccessPlan& plan, const DiskModel& model,
                                      double link_mb_s, Rng& rng, obs::MetricRegistry* metrics) {
    ReadTiming timing = simulate_read(plan, model, rng, metrics);
    const double wire_bytes = static_cast<double>(plan.total_fetched() * model.element_bytes());
    const double wire_seconds = wire_bytes / (link_mb_s * 1e6);
    timing.seconds = std::max(timing.seconds, wire_seconds);
    return timing;
}

}  // namespace ecfrm::sim
