#include "sim/array_sim.h"

#include <vector>

namespace ecfrm::sim {

ReadTiming simulate_read(const core::AccessPlan& plan, const DiskModel& model, Rng& rng) {
    const int disks = static_cast<int>(plan.per_disk_loads().size());
    std::vector<std::vector<RowId>> batches(static_cast<std::size_t>(disks));
    for (const auto& access : plan.fetches()) {
        batches[static_cast<std::size_t>(access.loc.disk)].push_back(access.loc.row);
    }

    double slowest = 0.0;
    for (auto& rows : batches) {
        if (rows.empty()) continue;
        const double t = model.service_seconds(std::move(rows), rng);
        slowest = std::max(slowest, t);
    }

    ReadTiming timing;
    timing.seconds = slowest;
    timing.requested_bytes = plan.requested() * model.element_bytes();
    return timing;
}

ReadTiming simulate_read_with_network(const core::AccessPlan& plan, const DiskModel& model,
                                      double link_mb_s, Rng& rng) {
    ReadTiming timing = simulate_read(plan, model, rng);
    const double wire_bytes = static_cast<double>(plan.total_fetched() * model.element_bytes());
    const double wire_seconds = wire_bytes / (link_mb_s * 1e6);
    timing.seconds = std::max(timing.seconds, wire_seconds);
    return timing;
}

}  // namespace ecfrm::sim
