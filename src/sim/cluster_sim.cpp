#include "sim/cluster_sim.h"

#include <algorithm>
#include <cassert>

#include "common/stats.h"

namespace ecfrm::sim {

double ClusterStats::mean_latency() const {
    OnlineStats stats;
    for (const auto& r : results) stats.add(r.latency_seconds());
    return stats.count() == 0 ? 0.0 : stats.mean();
}

double ClusterStats::p99_latency() const {
    std::vector<double> lat;
    lat.reserve(results.size());
    for (const auto& r : results) lat.push_back(r.latency_seconds());
    return percentile(std::move(lat), 0.99);
}

double ClusterStats::throughput_mb_s() const {
    if (makespan_seconds <= 0.0) return 0.0;
    std::int64_t bytes = 0;
    for (const auto& r : results) bytes += r.requested_bytes;
    return static_cast<double>(bytes) / 1e6 / makespan_seconds;
}

ClusterStats run_cluster(std::vector<ClusterRequest> requests, const DiskModel& model, int disks,
                         Rng& rng) {
    EventQueue queue;
    // Per-disk FIFO: the time at which the disk becomes free.
    std::vector<double> disk_free(static_cast<std::size_t>(disks), 0.0);

    ClusterStats stats;
    stats.results.resize(requests.size());

    // Pre-compute per-request, per-disk batches.
    struct Pending {
        std::vector<std::vector<RowId>> batches;
        int outstanding = 0;
    };
    std::vector<Pending> pending(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        auto& p = pending[i];
        p.batches.assign(static_cast<std::size_t>(disks), {});
        for (const auto& access : requests[i].plan.fetches()) {
            p.batches[static_cast<std::size_t>(access.loc.disk)].push_back(access.loc.row);
        }
        for (const auto& b : p.batches) {
            if (!b.empty()) ++p.outstanding;
        }
        stats.results[i].arrival_seconds = requests[i].arrival_seconds;
        stats.results[i].requested_bytes = requests[i].plan.requested() * model.element_bytes();
    }

    // Arrival events: enqueue each nonempty disk batch on its disk. FIFO
    // order is arrival order (EventQueue breaks ties by insertion).
    for (std::size_t i = 0; i < requests.size(); ++i) {
        queue.schedule_at(requests[i].arrival_seconds, [&, i] {
            auto& p = pending[i];
            if (p.outstanding == 0) {
                // Degenerate empty plan: completes instantly on arrival.
                stats.results[i].completion_seconds = queue.now();
                return;
            }
            for (int d = 0; d < disks; ++d) {
                auto& rows = p.batches[static_cast<std::size_t>(d)];
                if (rows.empty()) continue;
                const double start = std::max(queue.now(), disk_free[static_cast<std::size_t>(d)]);
                const double service = model.service_seconds(std::move(rows), rng);
                const double done = start + service;
                disk_free[static_cast<std::size_t>(d)] = done;
                queue.schedule_at(done, [&, i] {
                    auto& pi = pending[i];
                    assert(pi.outstanding > 0);
                    if (--pi.outstanding == 0) {
                        stats.results[i].completion_seconds = queue.now();
                    }
                });
            }
        });
    }

    stats.makespan_seconds = queue.run();
    return stats;
}

}  // namespace ecfrm::sim
