#include "sim/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>

#include "common/stats.h"

namespace ecfrm::sim {

double ClusterStats::mean_latency() const {
    OnlineStats stats;
    for (const auto& r : results) stats.add(r.latency_seconds());
    return stats.count() == 0 ? 0.0 : stats.mean();
}

double ClusterStats::p99_latency() const {
    std::vector<double> lat;
    lat.reserve(results.size());
    for (const auto& r : results) lat.push_back(r.latency_seconds());
    return percentile(std::move(lat), 0.99);
}

double ClusterStats::throughput_mb_s() const {
    if (makespan_seconds <= 0.0) return 0.0;
    std::int64_t bytes = 0;
    for (const auto& r : results) bytes += r.requested_bytes;
    return static_cast<double>(bytes) / 1e6 / makespan_seconds;
}

ClusterStats run_cluster(std::vector<ClusterRequest> requests, const DiskModel& model, int disks,
                         Rng& rng, obs::MetricRegistry* metrics,
                         obs::RequestForensics* forensics, obs::DiskHeatModel* heat) {
    EventQueue queue;
    // Per-disk FIFO: the time at which the disk becomes free.
    std::vector<double> disk_free(static_cast<std::size_t>(disks), 0.0);

    // Cached per-disk metric handles (registered once, recorded per batch).
    struct DiskMetrics {
        obs::Histogram* service = nullptr;
        obs::Histogram* queue_depth = nullptr;
    };
    std::vector<DiskMetrics> disk_metrics;
    obs::Histogram* request_latency = nullptr;
    if (metrics != nullptr) {
        disk_metrics.resize(static_cast<std::size_t>(disks));
        for (int d = 0; d < disks; ++d) {
            const obs::Labels labels{{"disk", std::to_string(d)}};
            disk_metrics[static_cast<std::size_t>(d)].service =
                &metrics->histogram("ecfrm_sim_disk_service_seconds", labels);
            disk_metrics[static_cast<std::size_t>(d)].queue_depth =
                &metrics->histogram("ecfrm_sim_disk_queue_depth", labels);
        }
        request_latency = &metrics->histogram("ecfrm_sim_request_latency_seconds");
    }
    // Batches queued or in service per disk, tracked on the simulated clock.
    std::vector<int> disk_outstanding(static_cast<std::size_t>(disks), 0);

    ClusterStats stats;
    stats.results.resize(requests.size());

    // Pre-compute per-request submission batches through the plan's own
    // schedule model — AccessPlan::batches() for reads,
    // WritePlan::batches() for writes and repairs: the exact units the
    // real executor issues, so simulated and real execution cannot drift.
    struct SimBatch {
        int disk = -1;
        std::vector<RowId> rows;
    };
    struct Pending {
        std::vector<SimBatch> batches;
        int outstanding = 0;
    };
    std::vector<Pending> pending(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        auto& p = pending[i];
        if (requests[i].kind == SimJobKind::read) {
            for (core::DiskBatch& b : requests[i].plan.batches()) {
                p.batches.push_back(SimBatch{b.disk, std::move(b.rows)});
            }
            stats.results[i].requested_bytes = requests[i].plan.requested() * model.element_bytes();
        } else {
            for (core::WriteBatch& b : requests[i].write.batches()) {
                p.batches.push_back(SimBatch{b.disk, std::move(b.rows)});
            }
            stats.results[i].requested_bytes =
                requests[i].write.total_writes() * model.element_bytes();
        }
        p.outstanding = static_cast<int>(p.batches.size());
        stats.results[i].arrival_seconds = requests[i].arrival_seconds;
    }

    // Per-request forensic traces on the simulated clock. Traces outlive
    // their arrival event (finish fires from the completion event), so
    // they live here, parallel to `pending`.
    std::vector<std::shared_ptr<obs::RequestTrace>> traces;
    std::vector<std::uint32_t> fetch_nodes;
    if (forensics != nullptr) {
        traces.resize(requests.size());
        fetch_nodes.assign(requests.size(), 0);
    }

    // Arrival events: enqueue each disk batch on its disk. FIFO order is
    // arrival order (EventQueue breaks ties by insertion).
    for (std::size_t i = 0; i < requests.size(); ++i) {
        queue.schedule_at(requests[i].arrival_seconds, [&, i] {
            auto& p = pending[i];
            const SimJobKind kind = requests[i].kind;
            obs::RequestTrace* rt = nullptr;
            std::uint32_t fetch_node = 0;
            if (forensics != nullptr) {
                const double arrival_us = queue.now() * 1e6;
                obs::RequestClass cls = obs::RequestClass::normal;
                const char* phase = "fetch";
                std::int64_t elements = 0;
                if (kind == SimJobKind::read) {
                    if (!requests[i].plan.decodes().empty()) cls = obs::RequestClass::degraded;
                    elements = requests[i].plan.requested();
                } else if (kind == SimJobKind::write) {
                    cls = obs::RequestClass::write;
                    phase = "write";
                    elements = requests[i].write.total_writes();
                } else {
                    // Repair traffic burns the scrub class's budget, not
                    // the foreground read classes it competes with.
                    cls = obs::RequestClass::scrub;
                    phase = "rebuild";
                    elements = requests[i].write.total_writes();
                }
                traces[i] = forensics->start_at(cls, arrival_us);
                rt = traces[i].get();
                rt->attr(obs::RequestTrace::kRoot, "batches",
                         static_cast<std::int64_t>(p.batches.size()));
                rt->attr(obs::RequestTrace::kRoot, "elements", elements);
                if (kind == SimJobKind::read) {
                    rt->add_decodes(static_cast<std::int64_t>(requests[i].plan.decodes().size()));
                }
                fetch_node = rt->begin(obs::RequestTrace::kRoot, phase, arrival_us);
                fetch_nodes[i] = fetch_node;
            }
            if (heat != nullptr && kind == SimJobKind::read && !p.batches.empty()) {
                // Only read requests feed measured_max_load: it is the
                // measured counterpart of the read-side closed-form
                // analysis, and the real store feeds it per fetch only.
                std::size_t max_load = 0;
                for (const auto& batch : p.batches) {
                    max_load = std::max(max_load, batch.rows.size());
                }
                heat->on_request(static_cast<std::int64_t>(max_load), queue.now());
            }
            if (p.outstanding == 0) {
                // Degenerate empty plan: completes instantly on arrival.
                stats.results[i].completion_seconds = queue.now();
                if (request_latency != nullptr) {
                    request_latency->record(stats.results[i].latency_seconds());
                }
                if (rt != nullptr) {
                    rt->end(fetch_node, queue.now() * 1e6);
                    forensics->finish_at(traces[i], true, queue.now() * 1e6);
                }
                return;
            }
            for (auto& batch : p.batches) {
                const int d = batch.disk;
                const std::size_t batch_elements = batch.rows.size();
                const double start = std::max(queue.now(), disk_free[static_cast<std::size_t>(d)]);
                const double service = model.service_seconds(std::move(batch.rows), rng);
                const double done = start + service;
                disk_free[static_cast<std::size_t>(d)] = done;
                if (metrics != nullptr) {
                    disk_metrics[static_cast<std::size_t>(d)].service->record(service);
                    disk_metrics[static_cast<std::size_t>(d)].queue_depth->record(
                        disk_outstanding[static_cast<std::size_t>(d)]);
                }
                if (rt != nullptr) {
                    // Queue wait shows up as its own span so a trace makes
                    // the FIFO delay visible, not just the service time.
                    if (start > queue.now()) {
                        rt->complete(fetch_node, "queue.wait", queue.now() * 1e6,
                                     (start - queue.now()) * 1e6, {{"disk", std::to_string(d)}});
                    }
                    rt->complete(
                        fetch_node, "disk.batch", start * 1e6, service * 1e6,
                        {{"disk", std::to_string(d)},
                         {"elements", std::to_string(batch_elements)},
                         {"depth", std::to_string(disk_outstanding[static_cast<std::size_t>(d)])}});
                }
                ++disk_outstanding[static_cast<std::size_t>(d)];
                const double submitted = queue.now();
                if (heat != nullptr) heat->on_issue(d);
                queue.schedule_at(done, [&, i, d, kind, submitted, batch_elements] {
                    if (heat != nullptr) {
                        if (kind == SimJobKind::read) {
                            heat->on_complete(d, static_cast<std::int64_t>(batch_elements),
                                              static_cast<std::int64_t>(batch_elements) *
                                                  model.element_bytes(),
                                              (queue.now() - submitted) * 1e6, queue.now());
                        } else {
                            // Same split as the real executor: write-side
                            // completions count load, never read latency.
                            heat->on_write_complete(d, static_cast<std::int64_t>(batch_elements),
                                                    static_cast<std::int64_t>(batch_elements) *
                                                        model.element_bytes(),
                                                    queue.now());
                        }
                    }
                    --disk_outstanding[static_cast<std::size_t>(d)];
                    auto& pi = pending[i];
                    assert(pi.outstanding > 0);
                    if (--pi.outstanding == 0) {
                        stats.results[i].completion_seconds = queue.now();
                        if (request_latency != nullptr) {
                            request_latency->record(stats.results[i].latency_seconds());
                        }
                        if (forensics != nullptr && traces[i] != nullptr) {
                            traces[i]->end(fetch_nodes[i], queue.now() * 1e6);
                            forensics->finish_at(traces[i], true, queue.now() * 1e6);
                        }
                    }
                });
            }
        });
    }

    stats.makespan_seconds = queue.run();
    return stats;
}

}  // namespace ecfrm::sim
