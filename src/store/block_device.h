// BlockDevice: the device abstraction under StripeStore. One device holds
// fixed-size element slots addressed by row. Implementations: the
// in-memory Disk (tests, benches, simulations) and the persistent
// FileDisk (CLI tool / durable archives).
#pragma once

#include <chrono>
#include <cstdint>

#include "common/result.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace ecfrm::store {

class BlockDevice {
  public:
    virtual ~BlockDevice() = default;

    /// Attach (or clear, with a default-constructed bundle) per-device
    /// I/O accounting. Not thread-safe against in-flight ops: attach
    /// before serving traffic. Implementations count one op per
    /// successful read/write, its payload bytes, and — only when the
    /// latency histograms are attached — wall-clock service time.
    void attach_io_stats(const obs::IoStats& io) { io_ = io; }
    const obs::IoStats& io_stats() const { return io_; }

    virtual std::int64_t element_bytes() const = 0;

    /// Overwrite the slot at `row` (grows the device as needed).
    virtual Status write(RowId row, ConstByteSpan data) = 0;

    /// Copy the slot at `row` into `out`.
    virtual Status read(RowId row, ByteSpan out) const = 0;

    /// Mark the device failed; its content is dropped.
    virtual void fail() = 0;

    /// Bring an empty replacement online.
    virtual void replace() = 0;

    virtual bool failed() const = 0;

    /// Rows allocated so far (write high-water mark).
    virtual RowId rows() const = 0;

    /// Silent-corruption injection hook (flips one stored byte).
    virtual Status corrupt_byte(RowId row, std::size_t offset) = 0;

  protected:
    /// Scoped I/O accounting for one device op: counts bytes/ops on
    /// success and, when the histogram is attached, the op's wall-clock
    /// seconds; failed ops land in the error counters instead. Cost when
    /// nothing is attached: a few null checks.
    class IoTimer {
      public:
        IoTimer(const obs::IoStats& io, bool is_read, std::int64_t bytes)
            : io_(io), is_read_(is_read), bytes_(bytes),
              timed_(is_read ? io.reads_timed() : io.writes_timed()) {
            if (timed_) start_ = std::chrono::steady_clock::now();
        }

        void done(const Status& status) {
            if (!status.ok()) {
                if (is_read_) {
                    io_.on_read_error(bytes_);
                } else {
                    io_.on_write_error(bytes_);
                }
                return;
            }
            const double seconds =
                timed_ ? std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count()
                       : 0.0;
            if (is_read_) {
                io_.on_read(bytes_, seconds);
            } else {
                io_.on_write(bytes_, seconds);
            }
        }

      private:
        const obs::IoStats& io_;
        bool is_read_;
        std::int64_t bytes_;
        bool timed_;
        std::chrono::steady_clock::time_point start_{};
    };

    obs::IoStats io_;
};

}  // namespace ecfrm::store
