// BlockDevice: the device abstraction under StripeStore. One device holds
// fixed-size element slots addressed by row. Implementations: the
// in-memory Disk (tests, benches, simulations) and the persistent
// FileDisk (CLI tool / durable archives).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace ecfrm::store {

class BlockDevice {
  public:
    virtual ~BlockDevice() = default;

    /// Attach (or clear, with a default-constructed bundle) per-device
    /// I/O accounting. Safe against in-flight ops: the bundle is
    /// published through an atomic pointer, so attaching mid-traffic is
    /// race-free — ops already running keep the bundle they loaded
    /// (every attached bundle stays alive until the device is
    /// destroyed). Implementations count one op per successful
    /// read/write, its payload bytes, and — only when the latency
    /// histograms are attached — wall-clock service time.
    void attach_io_stats(const obs::IoStats& io) {
        auto bundle = std::make_unique<const obs::IoStats>(io);
        const obs::IoStats* fresh = bundle.get();
        {
            std::lock_guard<std::mutex> lock(io_mu_);
            io_bundles_.push_back(std::move(bundle));
        }
        io_.store(fresh, std::memory_order_release);
    }

    /// The current accounting bundle (never null). The acquire load pairs
    /// with attach_io_stats' release store and is free on x86.
    const obs::IoStats& io_stats() const { return *io_.load(std::memory_order_acquire); }

    virtual std::int64_t element_bytes() const = 0;

    /// Overwrite the slot at `row` (grows the device as needed).
    virtual Status write(RowId row, ConstByteSpan data) = 0;

    /// Copy the slot at `row` into `out`.
    virtual Status read(RowId row, ByteSpan out) const = 0;

    /// Vectored batch read: copy the slot at rows[i] into outs[i], in
    /// order, stopping at the first failure. `*completed` (optional)
    /// reports how many leading ops succeeded — on error, ops past that
    /// prefix were not attempted. The base implementation is a
    /// per-element fallback; Disk overrides it to take its lock once per
    /// batch and FileDisk to coalesce adjacent rows into sequential file
    /// I/O. FaultDevice keeps the per-element path so fault schedules
    /// stay keyed to op sequence numbers.
    virtual Status read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                              std::size_t* completed = nullptr) const {
        if (completed != nullptr) *completed = 0;
        if (rows.size() != outs.size()) return Error::invalid("batch rows/buffers size mismatch");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            auto status = read(rows[i], outs[i]);
            if (!status.ok()) return status;
            if (completed != nullptr) *completed = i + 1;
        }
        return Status::success();
    }

    /// One in-flight asynchronous batch read. Obtained from
    /// submit_read_batch(); await() blocks until every op has settled and
    /// returns the batch's status. Call await() exactly once — the
    /// destructor of an un-awaited batch blocks until the I/O is safe to
    /// abandon (buffers may be written up to that point). `*completed`
    /// follows the read_batch prefix contract, with one async relaxation:
    /// on error, ops past the prefix MAY have been attempted (the kernel
    /// ran them concurrently); their buffer contents are unspecified.
    class AsyncBatch {
      public:
        virtual ~AsyncBatch() = default;
        virtual Status await(std::size_t* completed = nullptr) = 0;
    };

    /// Submit a batch read without waiting for it. The default adapter
    /// simply runs the synchronous read_batch() at submit time and hands
    /// back its result, so every existing device (Disk, FaultDevice,
    /// decorators) gets the async interface for free with unchanged
    /// semantics; truly asynchronous backends (UringDisk) override it to
    /// put the whole batch in flight and complete it in await(). `rows`
    /// and `outs` must stay valid until await() returns.
    virtual std::unique_ptr<AsyncBatch> submit_read_batch(
        std::span<const RowId> rows, std::span<const ByteSpan> outs) const {
        class SyncBatch final : public AsyncBatch {
          public:
            SyncBatch(Status status, std::size_t done) : status_(std::move(status)), done_(done) {}
            Status await(std::size_t* completed) override {
                if (completed != nullptr) *completed = done_;
                return status_;
            }

          private:
            Status status_;
            std::size_t done_;
        };
        std::size_t done = 0;
        Status status = read_batch(rows, outs, &done);
        return std::make_unique<SyncBatch>(std::move(status), done);
    }

    /// True when submit_read_batch genuinely overlaps I/O (submission
    /// returns before completion). The executor uses this to decide
    /// whether submitting every disk's batch up front buys overlap.
    virtual bool async_reads() const { return false; }

    /// Vectored batch write: write payloads[i] to rows[i], in order,
    /// stopping at the first failure. Same `*completed` contract as
    /// read_batch.
    virtual Status write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                               std::size_t* completed = nullptr) {
        if (completed != nullptr) *completed = 0;
        if (rows.size() != payloads.size()) return Error::invalid("batch rows/payloads size mismatch");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            auto status = write(rows[i], payloads[i]);
            if (!status.ok()) return status;
            if (completed != nullptr) *completed = i + 1;
        }
        return Status::success();
    }

    /// Mark the device failed; its content is dropped.
    virtual void fail() = 0;

    /// Bring an empty replacement online.
    virtual void replace() = 0;

    virtual bool failed() const = 0;

    /// Rows allocated so far (write high-water mark).
    virtual RowId rows() const = 0;

    /// Silent-corruption injection hook (flips one stored byte).
    virtual Status corrupt_byte(RowId row, std::size_t offset) = 0;

  protected:
    /// Scoped I/O accounting for one device op: counts bytes/ops on
    /// success and, when the histogram is attached, the op's wall-clock
    /// seconds; failed ops land in the error counters instead. Cost when
    /// nothing is attached: a few null checks.
    class IoTimer {
      public:
        IoTimer(const obs::IoStats& io, bool is_read, std::int64_t bytes)
            : io_(io), is_read_(is_read), bytes_(bytes),
              timed_(is_read ? io.reads_timed() : io.writes_timed()) {
            io.on_issue(1);
            if (timed_) start_ = std::chrono::steady_clock::now();
        }

        void done(const Status& status) {
            io_.on_settled(1);
            if (!status.ok()) {
                if (is_read_) {
                    io_.on_read_error(bytes_);
                } else {
                    io_.on_write_error(bytes_);
                }
                return;
            }
            const double seconds =
                timed_ ? std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count()
                       : 0.0;
            if (is_read_) {
                io_.on_read(bytes_, seconds);
            } else {
                io_.on_write(bytes_, seconds);
            }
        }

      private:
        const obs::IoStats& io_;
        bool is_read_;
        std::int64_t bytes_;
        bool timed_;
        std::chrono::steady_clock::time_point start_{};
    };

    /// Batch-granular accounting: one timed window over the whole batch,
    /// attributed evenly across its ops so per-op histograms stay
    /// meaningful when implementations hold one lock per batch.
    class BatchIoTimer {
      public:
        BatchIoTimer(const obs::IoStats& io, bool is_read, std::int64_t bytes_per_op,
                     std::size_t ops)
            : io_(io), is_read_(is_read), bytes_per_op_(bytes_per_op), ops_(ops),
              timed_(is_read ? io.reads_timed() : io.writes_timed()) {
            io.on_issue(static_cast<std::int64_t>(ops));
            if (timed_) start_ = std::chrono::steady_clock::now();
        }

        /// `ok_ops` ops succeeded; `failed` marks one trailing failed op.
        void done(std::size_t ok_ops, bool failed) {
            io_.on_settled(static_cast<std::int64_t>(ops_));
            const double seconds =
                timed_ ? std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count()
                       : 0.0;
            const double share = ok_ops > 0 ? seconds / static_cast<double>(ok_ops) : 0.0;
            for (std::size_t i = 0; i < ok_ops; ++i) {
                if (is_read_) {
                    io_.on_read(bytes_per_op_, share);
                } else {
                    io_.on_write(bytes_per_op_, share);
                }
            }
            if (failed) {
                if (is_read_) {
                    io_.on_read_error(bytes_per_op_);
                } else {
                    io_.on_write_error(bytes_per_op_);
                }
            }
        }

      private:
        const obs::IoStats& io_;
        bool is_read_;
        std::int64_t bytes_per_op_;
        std::size_t ops_;
        bool timed_;
        std::chrono::steady_clock::time_point start_{};
    };

  private:
    static const obs::IoStats* empty_io() {
        static const obs::IoStats none;
        return &none;
    }

    std::atomic<const obs::IoStats*> io_{empty_io()};
    mutable std::mutex io_mu_;  // guards io_bundles_
    std::vector<std::unique_ptr<const obs::IoStats>> io_bundles_;
};

}  // namespace ecfrm::store
