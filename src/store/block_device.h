// BlockDevice: the device abstraction under StripeStore. One device holds
// fixed-size element slots addressed by row. Implementations: the
// in-memory Disk (tests, benches, simulations) and the persistent
// FileDisk (CLI tool / durable archives).
#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/types.h"

namespace ecfrm::store {

class BlockDevice {
  public:
    virtual ~BlockDevice() = default;

    virtual std::int64_t element_bytes() const = 0;

    /// Overwrite the slot at `row` (grows the device as needed).
    virtual Status write(RowId row, ConstByteSpan data) = 0;

    /// Copy the slot at `row` into `out`.
    virtual Status read(RowId row, ByteSpan out) const = 0;

    /// Mark the device failed; its content is dropped.
    virtual void fail() = 0;

    /// Bring an empty replacement online.
    virtual void replace() = 0;

    virtual bool failed() const = 0;

    /// Rows allocated so far (write high-water mark).
    virtual RowId rows() const = 0;

    /// Silent-corruption injection hook (flips one stored byte).
    virtual Status corrupt_byte(RowId row, std::size_t offset) = 0;
};

}  // namespace ecfrm::store
