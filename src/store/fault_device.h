// FaultDevice: a BlockDevice decorator that injects faults from a seeded,
// scriptable schedule. Campaigns describe WHAT goes wrong in a FaultPlan
// (JSON-serialisable, replayable from a single seed); the decorator decides
// WHEN, deterministically, by counting the device's own read/write ops.
//
// Five fault kinds model the degraded realities of cloud disks:
//   fail_stop   — the device trips permanently (reads/writes return
//                 disk_failed, failed() reports true) until replace()d;
//   transient   — one op returns EIO, the retry sees a healthy device;
//   torn_write  — only a prefix of the payload lands before the write
//                 errors (a crash mid-write / partial sector run);
//   bit_flip    — a stored byte of the addressed row is flipped in place.
//                 Silent by default (the read still succeeds, scrub's
//                 problem); with detected=true the device's EDC catches it
//                 and every read of the row returns Error::corrupt;
//   latency     — the op completes correctly but only after a real
//                 wall-clock stall (exercises timeouts and hedged reads).
//
// Determinism: each device consumes its own Rng stream seeded from
// (plan.seed, disk), and rules trigger on per-device op sequence numbers
// (read rules count reads, write rules count writes, `any` rules count
// both). Run the store serially (no thread pool) and the whole fault
// sequence — including probabilistic rules — replays exactly from the
// seed. `max_burst` caps consecutive probabilistic injections per device
// so bounded retries are guaranteed to make progress.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/types.h"
#include "store/block_device.h"

namespace ecfrm::store {

enum class FaultKind { fail_stop, transient, torn_write, bit_flip, latency };

const char* to_string(FaultKind kind);
Result<FaultKind> parse_fault_kind(std::string_view name);

/// Which ops a rule's trigger window counts and matches.
enum class FaultOp { any, read, write };

const char* to_string(FaultOp op);

/// One scripted fault: fire `kind` on ops [first_op, first_op + count) of
/// the matching per-device op counter, each with `probability`.
struct FaultRule {
    FaultKind kind = FaultKind::transient;
    DiskId disk = -1;             // -1: applies to every disk
    FaultOp op = FaultOp::any;    // torn_write only matches writes,
                                  // bit_flip only reads, regardless
    std::int64_t first_op = 0;    // window start (op sequence number)
    std::int64_t count = 1;       // window length; fail_stop trips once
    double probability = 1.0;     // per-op chance inside the window
    double latency_ms = 0.0;      // latency: injected stall
    double torn_fraction = 0.5;   // torn_write: payload fraction that lands
    std::int64_t flip_offset = 0; // bit_flip: byte offset within the element
    bool detected = false;        // bit_flip: device EDC reports corrupt

    friend bool operator==(const FaultRule&, const FaultRule&) = default;
};

/// A replayable fault campaign: seed + rules ("ecfrm.faultplan.v1").
struct FaultPlan {
    std::uint64_t seed = 0;
    int max_burst = 0;  // >0: cap on consecutive probabilistic faults/device
    std::vector<FaultRule> rules;

    bool empty() const { return rules.empty(); }

    std::string to_json() const;
    static Result<FaultPlan> from_json(std::string_view text);

    friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

class FaultDevice final : public BlockDevice {
  public:
    /// One injected fault, as observed (test / campaign evidence log).
    struct Event {
        std::int64_t op = 0;  // matching-op sequence number that fired
        FaultKind kind = FaultKind::transient;
        bool is_read = false;
        RowId row = -1;
    };

    /// Wraps `inner`; only rules whose `disk` is -1 or equals `disk` apply.
    FaultDevice(std::unique_ptr<BlockDevice> inner, const FaultPlan& plan, DiskId disk);

    std::int64_t element_bytes() const override { return inner_->element_bytes(); }
    Status write(RowId row, ConstByteSpan data) override;
    Status read(RowId row, ByteSpan out) const override;

    /// Batch ops deliberately take the base-class per-element path: every
    /// element must pass through decide() as its own op so fault schedules
    /// stay keyed to per-device op sequence numbers and a FaultPlan replays
    /// byte-identically whether callers batch or not. (The inner device's
    /// native batching is bypassed on this decorated path by design.)
    Status read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                      std::size_t* completed = nullptr) const override {
        return BlockDevice::read_batch(rows, outs, completed);
    }
    Status write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                       std::size_t* completed = nullptr) override {
        return BlockDevice::write_batch(rows, payloads, completed);
    }

    void fail() override;
    void replace() override;
    bool failed() const override;
    RowId rows() const override { return inner_->rows(); }
    Status corrupt_byte(RowId row, std::size_t offset) override {
        return inner_->corrupt_byte(row, offset);
    }

    /// Every fault injected so far, in op order.
    std::vector<Event> events() const;

    std::int64_t read_ops() const;
    std::int64_t write_ops() const;

  private:
    /// The injection decided for one op (kind only meaningful when fired).
    struct Decision {
        bool fired = false;
        FaultKind kind = FaultKind::transient;
        const FaultRule* rule = nullptr;
    };

    Decision decide(bool is_read, RowId row, std::int64_t* op_seq) const;

    std::unique_ptr<BlockDevice> inner_;
    DiskId disk_;
    std::vector<FaultRule> rules_;
    int max_burst_;

    mutable std::mutex mu_;
    mutable Rng rng_;
    mutable std::int64_t read_ops_ = 0;
    mutable std::int64_t write_ops_ = 0;
    mutable int burst_ = 0;
    mutable bool tripped_ = false;  // fail_stop fired (cleared by replace())
    mutable std::set<RowId> detected_rows_;  // EDC-flagged rows
    mutable std::vector<Event> events_;
};

/// Convenience StripeStore::DeviceFactory: an in-memory Disk per index,
/// wrapped in a FaultDevice driven by `plan`.
std::function<Result<std::unique_ptr<BlockDevice>>(int)> faulty_memory_factory(
    std::int64_t element_bytes, const FaultPlan& plan);

}  // namespace ecfrm::store
