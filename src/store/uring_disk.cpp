#include "store/uring_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>

#if defined(ECFRM_HAVE_URING)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#include <atomic>
#endif

namespace ecfrm::store {

namespace fs = std::filesystem;

namespace {

off_t element_offset(RowId row, std::int64_t element_bytes) {
    return static_cast<off_t>(row) * static_cast<off_t>(element_bytes);
}

/// Same opt-in durability knob as FileDisk. This backend has no stdio
/// buffers, so with ECFRM_FSYNC unset a write batch needs no flush at all
/// (the page cache is the durability point, exactly as after fflush).
bool fsync_enabled() {
    static const bool enabled = []() {
        const char* v = std::getenv("ECFRM_FSYNC");
        return v != nullptr && v[0] != '\0' && v[0] != '0';
    }();
    return enabled;
}

Status pread_full(int fd, std::uint8_t* dst, std::size_t len, off_t offset) {
    while (len > 0) {
        const ssize_t n = ::pread(fd, dst, len, offset);
        if (n < 0) {
            if (errno == EINTR) continue;
            return Error::io("pread failed on data file");
        }
        if (n == 0) return Error::io("short read on data file");
        dst += n;
        len -= static_cast<std::size_t>(n);
        offset += n;
    }
    return Status::success();
}

Status pwrite_full(int fd, const std::uint8_t* src, std::size_t len, off_t offset) {
    while (len > 0) {
        const ssize_t n = ::pwrite(fd, src, len, offset);
        if (n < 0) {
            if (errno == EINTR) continue;
            return Error::io("pwrite failed on data file");
        }
        src += n;
        len -= static_cast<std::size_t>(n);
        offset += n;
    }
    return Status::success();
}

/// Vectored positional read that finishes every iovec (advances the list
/// across partial transfers). Mutates `iov`.
Status preadv_full(int fd, std::vector<::iovec>& iov, off_t offset) {
    std::size_t idx = 0;
    while (idx < iov.size()) {
        const int cnt = static_cast<int>(std::min<std::size_t>(iov.size() - idx, IOV_MAX));
        ssize_t n = ::preadv(fd, iov.data() + idx, cnt, offset);
        if (n < 0) {
            if (errno == EINTR) continue;
            return Error::io("preadv failed on data file");
        }
        if (n == 0) return Error::io("short read on data file");
        offset += n;
        while (n > 0 && idx < iov.size()) {
            if (static_cast<std::size_t>(n) >= iov[idx].iov_len) {
                n -= static_cast<ssize_t>(iov[idx].iov_len);
                ++idx;
            } else {
                iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + n;
                iov[idx].iov_len -= static_cast<std::size_t>(n);
                n = 0;
            }
        }
    }
    return Status::success();
}

}  // namespace

namespace uring_detail {

#if defined(ECFRM_HAVE_URING)

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
    return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
    return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                                      nullptr, std::size_t{0}));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
    return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

unsigned load_acquire(unsigned* p) {
    return std::atomic_ref<unsigned>(*p).load(std::memory_order_acquire);
}

void store_release(unsigned* p, unsigned v) {
    std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

/// One io_uring instance: raw-syscall setup, mmap'd SQ/CQ rings, the data
/// fd registered as fixed file 0 and (when possible) the BufferPool arena
/// registered as fixed buffer 0. No liburing — the ring protocol is small
/// enough that this shim is the whole dependency.
///
/// A Ring is driven by ONE batch at a time (leased from the RingPool), so
/// SQ tail advancement needs no userspace synchronization; the atomics
/// order the shared head/tail words against the kernel's view.
class Ring {
  public:
    static constexpr unsigned kEntries = 128;

    ~Ring() {
        if (sqe_mem_ != nullptr) ::munmap(sqe_mem_, sqe_len_);
        if (cq_mem_ != nullptr && cq_mem_ != sq_mem_) ::munmap(cq_mem_, cq_len_);
        if (sq_mem_ != nullptr) ::munmap(sq_mem_, sq_len_);
        if (fd_ >= 0) ::close(fd_);
    }

    /// nullptr when the kernel refuses the ring. File/buffer registration
    /// failures are NOT fatal — the ring degrades to plain-fd / plain-READ
    /// ops (RLIMIT_MEMLOCK commonly forbids buffer registration).
    static std::unique_ptr<Ring> create(int data_fd, const BufferPool* arena) {
        auto ring = std::unique_ptr<Ring>(new Ring);
        io_uring_params p{};
        ring->fd_ = sys_io_uring_setup(kEntries, &p);
        if (ring->fd_ < 0) return nullptr;

        ring->sq_len_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
        ring->cq_len_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
        const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
        if (single_mmap) ring->sq_len_ = ring->cq_len_ = std::max(ring->sq_len_, ring->cq_len_);

        ring->sq_mem_ = ::mmap(nullptr, ring->sq_len_, PROT_READ | PROT_WRITE,
                               MAP_SHARED | MAP_POPULATE, ring->fd_, IORING_OFF_SQ_RING);
        if (ring->sq_mem_ == MAP_FAILED) {
            ring->sq_mem_ = nullptr;
            return nullptr;
        }
        if (single_mmap) {
            ring->cq_mem_ = ring->sq_mem_;
        } else {
            ring->cq_mem_ = ::mmap(nullptr, ring->cq_len_, PROT_READ | PROT_WRITE,
                                   MAP_SHARED | MAP_POPULATE, ring->fd_, IORING_OFF_CQ_RING);
            if (ring->cq_mem_ == MAP_FAILED) {
                ring->cq_mem_ = nullptr;
                return nullptr;
            }
        }
        ring->sqe_len_ = p.sq_entries * sizeof(io_uring_sqe);
        ring->sqe_mem_ = ::mmap(nullptr, ring->sqe_len_, PROT_READ | PROT_WRITE,
                                MAP_SHARED | MAP_POPULATE, ring->fd_, IORING_OFF_SQES);
        if (ring->sqe_mem_ == MAP_FAILED) {
            ring->sqe_mem_ = nullptr;
            return nullptr;
        }

        auto* sq = static_cast<std::uint8_t*>(ring->sq_mem_);
        auto* cq = static_cast<std::uint8_t*>(ring->cq_mem_);
        ring->sq_entries_ = p.sq_entries;
        ring->cq_entries_ = p.cq_entries;
        ring->sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
        ring->sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
        ring->sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
        ring->sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
        ring->cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
        ring->cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
        ring->cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
        ring->cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
        ring->sqes_ = static_cast<io_uring_sqe*>(ring->sqe_mem_);

        const int fds[1] = {data_fd};
        ring->fixed_file_ = sys_io_uring_register(ring->fd_, IORING_REGISTER_FILES, fds, 1) == 0;
        if (arena != nullptr && arena->arena_bytes() > 0) {
            ::iovec iov{};
            iov.iov_base = const_cast<std::uint8_t*>(arena->arena());
            iov.iov_len = arena->arena_bytes();
            ring->fixed_buffers_ =
                sys_io_uring_register(ring->fd_, IORING_REGISTER_BUFFERS, &iov, 1) == 0;
            ring->arena_ = arena;
        }
        ring->data_fd_ = data_fd;
        return ring;
    }

    bool fixed_buffers() const { return fixed_buffers_; }
    bool fixed_file() const { return fixed_file_; }

    /// Queue one read of [dst, dst+len) at `offset`, tagged `user_data`.
    /// False when the SQ (or the CQ budget) is full — the caller must
    /// submit_and_wait() some completions first, then retry.
    bool prep_read(std::uint8_t* dst, std::size_t len, off_t offset, std::uint64_t user_data) {
        if (inflight_ + prepped_ >= cq_entries_) return false;
        const unsigned head = load_acquire(sq_head_);
        const unsigned tail = *sq_tail_;  // only this thread advances it
        if (tail - head >= sq_entries_) return false;
        const unsigned idx = tail & sq_mask_;
        io_uring_sqe* sqe = &sqes_[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        const bool fixed_buf = fixed_buffers_ && arena_ != nullptr && arena_->contains(dst, len);
        sqe->opcode = fixed_buf ? IORING_OP_READ_FIXED : IORING_OP_READ;
        if (fixed_file_) {
            sqe->fd = 0;  // fixed-file table slot 0 = the data fd
            sqe->flags = IOSQE_FIXED_FILE;
        } else {
            sqe->fd = data_fd_;
        }
        sqe->addr = reinterpret_cast<std::uint64_t>(dst);
        sqe->len = static_cast<unsigned>(len);
        sqe->off = static_cast<std::uint64_t>(offset);
        sqe->buf_index = 0;  // the whole arena is registered buffer 0
        sqe->user_data = user_data;
        sq_array_[idx] = idx;
        store_release(sq_tail_, tail + 1);
        ++prepped_;
        return true;
    }

    /// Submit everything prepped and wait until at least `min_complete`
    /// completions are reapable. False on an errno-level io_uring_enter
    /// failure (ops may be lost; the Ring is considered poisoned for the
    /// rest of the batch).
    bool submit_and_wait(unsigned min_complete) {
        const unsigned to_submit = prepped_;
        inflight_ += prepped_;
        prepped_ = 0;
        while (true) {
            const int n = sys_io_uring_enter(fd_, to_submit, std::min(min_complete, inflight_),
                                             IORING_ENTER_GETEVENTS);
            if (n >= 0) return true;
            if (errno == EINTR) continue;
            inflight_ = 0;
            return false;
        }
    }

    /// Pop one completion. False when the CQ is empty.
    bool reap(std::uint64_t* user_data, std::int32_t* res) {
        const unsigned head = *cq_head_;
        const unsigned tail = load_acquire(cq_tail_);
        if (head == tail) return false;
        const io_uring_cqe& cqe = cqes_[head & cq_mask_];
        *user_data = cqe.user_data;
        *res = cqe.res;
        store_release(cq_head_, head + 1);
        --inflight_;
        return true;
    }

    unsigned inflight() const { return inflight_; }

  private:
    Ring() = default;

    int fd_ = -1;
    int data_fd_ = -1;
    void* sq_mem_ = nullptr;
    void* cq_mem_ = nullptr;
    void* sqe_mem_ = nullptr;
    std::size_t sq_len_ = 0;
    std::size_t cq_len_ = 0;
    std::size_t sqe_len_ = 0;
    unsigned sq_entries_ = 0;
    unsigned cq_entries_ = 0;
    unsigned* sq_head_ = nullptr;
    unsigned* sq_tail_ = nullptr;
    unsigned sq_mask_ = 0;
    unsigned* sq_array_ = nullptr;
    unsigned* cq_head_ = nullptr;
    unsigned* cq_tail_ = nullptr;
    unsigned cq_mask_ = 0;
    io_uring_sqe* sqes_ = nullptr;
    io_uring_cqe* cqes_ = nullptr;
    bool fixed_file_ = false;
    bool fixed_buffers_ = false;
    const BufferPool* arena_ = nullptr;
    unsigned prepped_ = 0;
    unsigned inflight_ = 0;
};

/// A small pool of rings per device so several concurrent batches can
/// each drive their own in-kernel queue. Acquisition is non-blocking: a
/// batch that finds every ring busy takes the blocking preadv path
/// instead of waiting (the contended case is exactly when the disk is
/// already saturated).
class RingPool {
  public:
    static constexpr std::size_t kRings = 4;

    static std::unique_ptr<RingPool> create(int data_fd, const BufferPool* arena) {
        auto pool = std::unique_ptr<RingPool>(new RingPool);
        for (std::size_t i = 0; i < kRings; ++i) {
            auto ring = Ring::create(data_fd, arena);
            if (ring == nullptr) break;
            pool->rings_.push_back(std::move(ring));
        }
        if (pool->rings_.empty()) return nullptr;
        pool->free_.reserve(pool->rings_.size());
        for (auto& r : pool->rings_) pool->free_.push_back(r.get());
        return pool;
    }

    Ring* try_acquire() {
        std::lock_guard lk(mu_);
        if (free_.empty()) return nullptr;
        Ring* r = free_.back();
        free_.pop_back();
        return r;
    }

    void release(Ring* r) {
        std::lock_guard lk(mu_);
        free_.push_back(r);
    }

  private:
    RingPool() = default;

    std::vector<std::unique_ptr<Ring>> rings_;
    std::mutex mu_;
    std::vector<Ring*> free_;
};

#else  // !ECFRM_HAVE_URING

/// Stub so UringDisk compiles (and degrades to the pread path) on
/// toolchains without io_uring headers.
class RingPool {
  public:
    static std::unique_ptr<RingPool> create(int /*data_fd*/, const BufferPool* /*arena*/) {
        return nullptr;
    }
    void release(void*) {}
};

#endif  // ECFRM_HAVE_URING

}  // namespace uring_detail

// ---------------------------------------------------------------------------
// UringDisk
// ---------------------------------------------------------------------------

UringDisk::UringDisk(std::string data_path, std::string map_path, std::string failed_path,
                     std::int64_t element_bytes, Mode mode, BufferPool* arena)
    : data_path_(std::move(data_path)),
      map_path_(std::move(map_path)),
      failed_path_(std::move(failed_path)),
      element_bytes_(element_bytes),
      mode_(mode),
      arena_(arena) {}

UringDisk::~UringDisk() { close_files(); }

bool UringDisk::uring_available() {
#if defined(ECFRM_HAVE_URING)
    static const bool available = []() {
        io_uring_params p{};
        const int fd = uring_detail::sys_io_uring_setup(4, &p);
        if (fd < 0) return false;
        ::close(fd);
        return true;
    }();
    return available;
#else
    return false;
#endif
}

Result<std::unique_ptr<UringDisk>> UringDisk::open(const std::string& dir, int index,
                                                   std::int64_t element_bytes, Mode mode,
                                                   BufferPool* arena) {
    if (element_bytes <= 0) return Error::invalid("element_bytes must be positive");
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) return Error::io("not a directory: " + dir);

    const std::string stem = dir + "/disk_" + std::to_string(index);
    auto disk = std::unique_ptr<UringDisk>(
        new UringDisk(stem + ".dat", stem + ".map", stem + ".failed", element_bytes, mode, arena));
    disk->failed_ = fs::exists(disk->failed_path_, ec);
    if (!disk->failed_) {
        auto status = disk->open_files();
        if (!status.ok()) return status.error();
        status = disk->load_map();
        if (!status.ok()) return status.error();
    }
    return disk;
}

Status UringDisk::open_files() {
    data_fd_ = ::open(data_path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    map_fd_ = ::open(map_path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (data_fd_ < 0 || map_fd_ < 0) {
        close_files();
        return Error::io("cannot open device files under " + data_path_);
    }
    if (mode_ == Mode::uring && uring_available()) {
        rings_ = uring_detail::RingPool::create(data_fd_, arena_);
    }
    return Status::success();
}

void UringDisk::close_files() {
    rings_.reset();  // rings hold the registered data fd; tear down first
    if (data_fd_ >= 0) {
        ::close(data_fd_);
        data_fd_ = -1;
    }
    if (map_fd_ >= 0) {
        ::close(map_fd_);
        map_fd_ = -1;
    }
}

Status UringDisk::load_map() {
    written_.clear();
    struct stat st{};
    if (::fstat(map_fd_, &st) != 0) return Error::io("stat failed on map file");
    const auto size = static_cast<std::size_t>(st.st_size);
    std::vector<std::uint8_t> raw(size);
    if (size > 0) {
        auto status = pread_full(map_fd_, raw.data(), size, 0);
        if (!status.ok()) return Error::io("short read on map file");
    }
    written_.resize(size, false);
    for (std::size_t i = 0; i < size; ++i) written_[i] = raw[i] != 0;
    return Status::success();
}

Status UringDisk::flush_files() {
    // fd-based backend: nothing is buffered in userspace, so the page
    // cache is already the durability point; only the opt-in fsync costs
    // (and counts) anything.
    if (!fsync_enabled()) return Status::success();
    if (::fsync(data_fd_) != 0 || ::fsync(map_fd_) != 0) {
        return Error::io("fsync failed on device files");
    }
    io_stats().on_flush(2);
    return Status::success();
}

Status UringDisk::write(RowId row, ConstByteSpan data) {
    if (row < 0) return Error::range("negative row");
    if (static_cast<std::int64_t>(data.size()) != element_bytes_) {
        return Error::invalid("element size mismatch on write");
    }
    IoTimer timer(io_stats(), /*is_read=*/false, static_cast<std::int64_t>(data.size()));
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("write to failed disk");
        auto st =
            pwrite_full(data_fd_, data.data(), data.size(), element_offset(row, element_bytes_));
        if (!st.ok()) return st;
        // pwrite past EOF zero-fills the gap, so skipped map rows read
        // back as 0 with no explicit padding writes.
        const std::uint8_t one = 1;
        st = pwrite_full(map_fd_, &one, 1, static_cast<off_t>(row));
        if (!st.ok()) return Error::io("write failed on map file");
        if (static_cast<std::size_t>(row) >= written_.size()) {
            written_.resize(static_cast<std::size_t>(row) + 1, false);
        }
        written_[static_cast<std::size_t>(row)] = true;
        return flush_files();
    }();
    timer.done(status);
    return status;
}

Status UringDisk::read(RowId row, ByteSpan out) const {
    if (row < 0) return Error::range("negative row");
    if (static_cast<std::int64_t>(out.size()) != element_bytes_) {
        return Error::invalid("element size mismatch on read");
    }
    IoTimer timer(io_stats(), /*is_read=*/true, static_cast<std::int64_t>(out.size()));
    auto status = [&]() -> Status {
        std::shared_lock lk(mu_);
        if (failed_) return Error::disk_failed("read from failed disk");
        if (static_cast<std::size_t>(row) >= written_.size() ||
            !written_[static_cast<std::size_t>(row)]) {
            return Error::range("row never written");
        }
        return pread_full(data_fd_, out.data(), out.size(), element_offset(row, element_bytes_));
    }();
    timer.done(status);
    return status;
}

std::vector<UringDisk::Run> UringDisk::coalesce(std::span<const RowId> rows,
                                                std::span<const ByteSpan> outs,
                                                std::int64_t element_bytes) {
    std::vector<Run> runs;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (!runs.empty() && rows[i] == rows[i - 1] + 1) {
            Run& run = runs.back();
            if (run.contiguous && outs[i].data() != outs[i - 1].data() + outs[i - 1].size()) {
                run.contiguous = false;
            }
            ++run.count;
        } else {
            runs.push_back({i, 1, element_offset(rows[i], element_bytes), true});
        }
    }
    return runs;
}

Status UringDisk::read_run(const Run& run, std::span<const ByteSpan> outs) const {
    if (run.contiguous) {
        const std::size_t total = outs[run.first].size() * run.count;
        return pread_full(data_fd_, outs[run.first].data(), total, static_cast<off_t>(run.offset));
    }
    std::vector<::iovec> iov(run.count);
    for (std::size_t j = 0; j < run.count; ++j) {
        iov[j].iov_base = outs[run.first + j].data();
        iov[j].iov_len = outs[run.first + j].size();
    }
    return preadv_full(data_fd_, iov, static_cast<off_t>(run.offset));
}

#if defined(ECFRM_HAVE_URING)

/// One in-flight io_uring batch: holds the device's shared lock (keeping
/// fds open and failed() stable), a leased Ring, and the coalesced run
/// list. Every run's SQE goes into the kernel at submit time; await()
/// reaps. Contiguous runs become single READ/READ_FIXED SQEs; scattered
/// runs use the blocking vectored path inline (one preadv beats burning
/// a per-element SQE storm for what is one transfer either way).
class UringDisk::UringBatch final : public BlockDevice::AsyncBatch {
  public:
    UringBatch(const UringDisk* disk, std::shared_lock<std::shared_mutex> lock,
               uring_detail::Ring* ring, std::vector<Run> runs, std::vector<ByteSpan> outs)
        : disk_(disk),
          lock_(std::move(lock)),
          ring_(ring),
          runs_(std::move(runs)),
          outs_(std::move(outs)),
          run_ok_(runs_.size(), false),
          run_pending_(runs_.size(), true),
          timer_(disk->io_stats(), /*is_read=*/true, disk->element_bytes_, outs_.size()) {
        submit_all();
    }

    ~UringBatch() override {
        // An abandoned batch still has kernel writes targeting caller
        // buffers; drain them before those buffers can die.
        if (!awaited_) {
            (void)finish();
            timer_.done(prefix_elements(), !error_.ok());
        }
        disk_->rings_->release(ring_);
    }

    Status await(std::size_t* completed) override {
        Status status = finish();
        awaited_ = true;
        const std::size_t done = prefix_elements();
        timer_.done(done, !status.ok());
        if (completed != nullptr) *completed = done;
        return status;
    }

  private:
    /// Completed prefix implied by per-run outcomes: elements of leading
    /// fully-successful runs. Runs complete out of order under io_uring,
    /// so this is computed after every CQE has settled.
    std::size_t prefix_elements() const {
        std::size_t done = 0;
        for (std::size_t r = 0; r < runs_.size(); ++r) {
            if (!run_ok_[r]) break;
            done += runs_[r].count;
        }
        return done;
    }

    void submit_all() {
        std::size_t sqes = 0;
        for (std::size_t r = 0; r < runs_.size(); ++r) {
            const Run& run = runs_[r];
            if (!run.contiguous) {
                auto st = disk_->read_run(run, outs_);
                run_pending_[r] = false;
                run_ok_[r] = st.ok();
                if (!st.ok() && error_.ok()) error_ = st;
                continue;
            }
            std::uint8_t* dst = outs_[run.first].data();
            const std::size_t len = outs_[run.first].size() * run.count;
            // Batches larger than the ring still work: drain completions
            // whenever the SQ/CQ budget fills, then keep pushing.
            while (!ring_->prep_read(dst, len, static_cast<off_t>(run.offset), r)) {
                if (!drain(1)) return;
            }
            ++sqes;
        }
        if (ring_->submit_and_wait(0)) {
            // Opportunistically reap whatever already finished.
            std::uint64_t tag = 0;
            std::int32_t res = 0;
            while (ring_->reap(&tag, &res)) handle_cqe(tag, res);
        } else {
            if (error_.ok()) error_ = Error::io("io_uring_enter failed");
            fail_pending();
        }
        // In-kernel queue depth actually achieved by this batch.
        disk_->io_stats().on_batch_depth(static_cast<std::int64_t>(sqes));
    }

    /// Submit anything prepped, wait for ≥`min` completions, reap them.
    bool drain(unsigned min) {
        if (!ring_->submit_and_wait(min)) {
            if (error_.ok()) error_ = Error::io("io_uring_enter failed");
            fail_pending();
            return false;
        }
        std::uint64_t tag = 0;
        std::int32_t res = 0;
        while (ring_->reap(&tag, &res)) handle_cqe(tag, res);
        return true;
    }

    void handle_cqe(std::uint64_t tag, std::int32_t res) {
        const auto r = static_cast<std::size_t>(tag);
        const Run& run = runs_[r];
        if (!run_pending_[r]) return;
        run_pending_[r] = false;
        const auto want = static_cast<std::int64_t>(outs_[run.first].size()) *
                          static_cast<std::int64_t>(run.count);
        if (res >= 0 && static_cast<std::int64_t>(res) == want) {
            run_ok_[r] = true;
            return;
        }
        if (res > 0) {
            // Short read (signal, racing truncate): redo the run with the
            // blocking path — re-reading the whole run is idempotent.
            auto st = disk_->read_run(run, outs_);
            run_ok_[r] = st.ok();
            if (!st.ok() && error_.ok()) error_ = st;
            return;
        }
        if (error_.ok()) {
            error_ = res == 0 ? Error::io("short read on data file")
                              : Error::io("io_uring read failed on data file");
        }
    }

    void fail_pending() {
        for (std::size_t r = 0; r < runs_.size(); ++r) run_pending_[r] = false;
    }

    Status finish() {
        while (ring_->inflight() > 0) {
            if (!drain(1)) break;
        }
        return error_;
    }

    const UringDisk* disk_;
    std::shared_lock<std::shared_mutex> lock_;
    uring_detail::Ring* ring_;
    std::vector<Run> runs_;
    std::vector<ByteSpan> outs_;
    std::vector<bool> run_ok_;
    std::vector<bool> run_pending_;
    BlockDevice::BatchIoTimer timer_;
    Status error_ = Status::success();
    bool awaited_ = false;
};

#endif  // ECFRM_HAVE_URING

std::unique_ptr<BlockDevice::AsyncBatch> UringDisk::submit_read_batch(
    std::span<const RowId> rows, std::span<const ByteSpan> outs) const {
    // Immediate-result batch: validation errors and the blocking path.
    class DoneBatch final : public AsyncBatch {
      public:
        DoneBatch(Status status, std::size_t done) : status_(std::move(status)), done_(done) {}
        Status await(std::size_t* completed) override {
            if (completed != nullptr) *completed = done_;
            return status_;
        }

      private:
        Status status_;
        std::size_t done_;
    };

    if (rows.size() != outs.size()) {
        return std::make_unique<DoneBatch>(Error::invalid("batch rows/buffers size mismatch"), 0);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] < 0) return std::make_unique<DoneBatch>(Error::range("negative row"), 0);
        if (static_cast<std::int64_t>(outs[i].size()) != element_bytes_) {
            return std::make_unique<DoneBatch>(Error::invalid("element size mismatch on read"), 0);
        }
    }

    std::shared_lock lk(mu_);
    if (failed_) {
        BatchIoTimer timer(io_stats(), /*is_read=*/true, element_bytes_, rows.size());
        timer.done(0, true);
        return std::make_unique<DoneBatch>(Error::disk_failed("read from failed disk"), 0);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto row = static_cast<std::size_t>(rows[i]);
        if (row >= written_.size() || !written_[row]) {
            BatchIoTimer timer(io_stats(), /*is_read=*/true, element_bytes_, rows.size());
            timer.done(0, true);
            return std::make_unique<DoneBatch>(Error::range("row never written"), 0);
        }
    }

#if defined(ECFRM_HAVE_URING)
    if (rings_ != nullptr && !rows.empty()) {
        if (uring_detail::Ring* ring = rings_->try_acquire()) {
            auto runs = coalesce(rows, outs, element_bytes_);
            return std::make_unique<UringBatch>(this, std::move(lk), ring, std::move(runs),
                                                std::vector<ByteSpan>(outs.begin(), outs.end()));
        }
    }
#endif

    // Blocking positional path (pread mode, uring unavailable, or every
    // ring busy). Still batched: one shared-lock hold, coalesced runs.
    BatchIoTimer timer(io_stats(), /*is_read=*/true, element_bytes_, rows.size());
    std::size_t done = 0;
    auto status = [&]() -> Status {
        const auto runs = coalesce(rows, outs, element_bytes_);
        for (const Run& run : runs) {
            auto st = read_run(run, outs);
            if (!st.ok()) return st;
            done += run.count;
        }
        io_stats().on_batch_depth(static_cast<std::int64_t>(runs.size()));
        return Status::success();
    }();
    timer.done(done, !status.ok());
    return std::make_unique<DoneBatch>(std::move(status), done);
}

Status UringDisk::read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                             std::size_t* completed) const {
    // One implementation for both entry points: the sync form is just
    // submit + immediate await.
    return submit_read_batch(rows, outs)->await(completed);
}

bool UringDisk::async_reads() const { return uring_active(); }

bool UringDisk::uring_active() const {
    std::shared_lock lk(mu_);
    return rings_ != nullptr;
}

Status UringDisk::write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                              std::size_t* completed) {
    if (completed != nullptr) *completed = 0;
    if (rows.size() != payloads.size()) return Error::invalid("batch rows/payloads size mismatch");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] < 0) return Error::range("negative row");
        if (static_cast<std::int64_t>(payloads[i].size()) != element_bytes_) {
            return Error::invalid("element size mismatch on write");
        }
    }
    BatchIoTimer timer(io_stats(), /*is_read=*/false, element_bytes_, rows.size());
    std::size_t done = 0;
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("write to failed disk");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            auto st = pwrite_full(data_fd_, payloads[i].data(), payloads[i].size(),
                                  element_offset(rows[i], element_bytes_));
            if (!st.ok()) return st;
            const std::uint8_t one = 1;
            st = pwrite_full(map_fd_, &one, 1, static_cast<off_t>(rows[i]));
            if (!st.ok()) return Error::io("write failed on map file");
            const auto row = static_cast<std::size_t>(rows[i]);
            if (row >= written_.size()) written_.resize(row + 1, false);
            written_[row] = true;
            done = i + 1;
        }
        // One durability point per batch (counted only under ECFRM_FSYNC).
        return flush_files();
    }();
    timer.done(done, !status.ok());
    if (completed != nullptr) *completed = done;
    return status;
}

void UringDisk::fail() {
    std::lock_guard lk(mu_);
    failed_ = true;
    close_files();
    std::error_code ec;
    fs::remove(data_path_, ec);
    fs::remove(map_path_, ec);
    std::FILE* marker = std::fopen(failed_path_.c_str(), "wb");
    if (marker != nullptr) std::fclose(marker);
    written_.clear();
}

void UringDisk::replace() {
    std::lock_guard lk(mu_);
    failed_ = false;
    std::error_code ec;
    fs::remove(failed_path_, ec);
    fs::remove(data_path_, ec);
    fs::remove(map_path_, ec);
    written_.clear();
    close_files();
    (void)open_files();
}

bool UringDisk::failed() const {
    std::shared_lock lk(mu_);
    return failed_;
}

RowId UringDisk::rows() const {
    std::shared_lock lk(mu_);
    return static_cast<RowId>(written_.size());
}

Status UringDisk::corrupt_byte(RowId row, std::size_t offset) {
    std::lock_guard lk(mu_);
    if (failed_) return Error::disk_failed("corrupting a failed disk");
    if (row < 0 || static_cast<std::size_t>(row) >= written_.size() ||
        !written_[static_cast<std::size_t>(row)]) {
        return Error::range("row never written");
    }
    if (offset >= static_cast<std::size_t>(element_bytes_)) {
        return Error::range("offset beyond element");
    }
    const off_t pos = element_offset(row, element_bytes_) + static_cast<off_t>(offset);
    std::uint8_t byte = 0;
    auto st = pread_full(data_fd_, &byte, 1, pos);
    if (!st.ok()) return Error::io("read failed during corruption");
    byte ^= 0xff;
    st = pwrite_full(data_fd_, &byte, 1, pos);
    if (!st.ok()) return Error::io("write failed during corruption");
    return Status::success();
}

}  // namespace ecfrm::store
