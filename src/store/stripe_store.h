// StripeStore: an in-memory erasure-coded storage node array holding real
// bytes, exercising the full write/encode, normal-read, degraded-read and
// reconstruction paths of a Scheme.
//
// Write model matches the paper's cloud-storage assumption: append-only,
// buffered until a full stripe is available, then erasure-coded as a full
// stripe write (Section I). Reads are planned by the core planners and the
// resulting plan is executed by exec::PlanExecutor against the disks — the
// store itself is a thin façade (plan -> execute -> decode -> assemble) —
// so every experiment's access plan is also validated by actually decoding
// real data in tests.
//
// Concurrency: read paths take a shared lock, mutating paths an exclusive
// one, so N threads can read (normal or degraded) concurrently while
// writes, failures and reconstruction serialise against them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/read_planner.h"
#include "core/scheme.h"
#include "exec/plan_executor.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "store/block_device.h"
#include "store/disk.h"
#include "store/extent.h"

namespace ecfrm::store {

struct ReconstructStats {
    std::int64_t elements_rebuilt = 0;
    std::int64_t elements_read = 0;
};

/// Self-healing knobs now live with the execution engine; the alias keeps
/// the store-level spelling working.
using RecoveryOptions = exec::RecoveryOptions;

struct ScrubReport {
    std::int64_t groups_scanned = 0;
    std::int64_t groups_inconsistent = 0;
    std::int64_t elements_repaired = 0;
    std::int64_t unrecoverable_groups = 0;

    bool clean() const { return groups_inconsistent == 0; }
};

class StripeStore {
  public:
    /// Builds one BlockDevice per disk index. Used to plug in persistent
    /// FileDisks (or anything else) instead of the default in-memory Disk.
    using DeviceFactory = std::function<Result<std::unique_ptr<BlockDevice>>(int index)>;

    /// In-memory store. `pool` may be null (serial execution); when
    /// provided, encode, reconstruction and fetch queues parallelise.
    StripeStore(core::Scheme scheme, std::int64_t element_bytes, ThreadPool* pool = nullptr);

    /// Orphaned hedge queues (straggling fetches abandoned at their hedge
    /// deadline) still reference the devices; drain them before the
    /// devices are destroyed.
    ~StripeStore() { executor_.drain_orphans(); }

    /// Store over caller-provided devices. Fails if any device cannot be
    /// built or reports the wrong element size.
    static Result<std::unique_ptr<StripeStore>> open(core::Scheme scheme, std::int64_t element_bytes,
                                                     const DeviceFactory& factory,
                                                     ThreadPool* pool = nullptr);

    /// Adopt pre-existing content (reopening a persistent store): declares
    /// that `stripes` full stripes are already on the devices, with user
    /// bytes laid out as described by `extents`.
    Status restore(std::vector<Extent> extents, StripeId stripes);

    /// Single-extent convenience: all `logical_bytes` user bytes stored
    /// contiguously from element 0 (one append run, one final flush).
    Status restore(std::int64_t logical_bytes, StripeId stripes);

    const core::Scheme& scheme() const { return scheme_; }
    std::int64_t element_bytes() const { return element_bytes_; }

    /// Append user bytes. Full stripes are encoded and written eagerly;
    /// the tail is buffered until flush().
    Status append(ConstByteSpan data);

    /// Zero-pad the buffered tail to a stripe boundary and encode it.
    Status flush();

    /// Overwrite committed bytes in place with read-modify-write parity
    /// updates: for each touched data element the store reads the old
    /// payload, writes the new one, and folds the delta into every parity
    /// of the element's group (parity_p ^= coeff_p * delta) — no full
    /// stripe re-encode. Requires every touched element's home disk and
    /// all its group parities to be online.
    Status overwrite(std::int64_t offset, ConstByteSpan data);

    /// User bytes appended so far (committed + buffered tail).
    std::int64_t logical_bytes() const;

    /// User bytes already encoded onto the devices and thus readable.
    std::int64_t committed_bytes() const;

    /// Committed extents, in logical order. The reference is only stable
    /// while no writer (append/flush/restore) runs.
    const std::vector<Extent>& extents() const { return extents_; }

    /// Data elements stored (after flush; includes padding elements).
    std::int64_t stored_data_elements() const;

    /// Read `length` bytes at `offset` of the logical byte stream,
    /// transparently decoding around failed disks. Only committed bytes
    /// are readable; flush() first to read a buffered tail. Thread-safe:
    /// any number of reads may run concurrently.
    Result<std::vector<std::uint8_t>> read_bytes(std::int64_t offset, std::int64_t length);

    /// Element-granular read into `out` (size count * element_bytes).
    Status read_elements(ElementId start, std::int64_t count, ByteSpan out);

    /// Inject a disk failure (content dropped, reads fail).
    Status fail_disk(DiskId disk);

    /// Rebuild every element of a failed disk onto a replacement device.
    Result<ReconstructStats> reconstruct_disk(DiskId disk);

    std::vector<DiskId> failed_disks() const;

    /// Recompute every parity element from data and compare with what is
    /// stored. Fails on the first mismatch. (Test/diagnostic hook.)
    Status verify_parity();

    /// Silent-corruption injection hook: flip a byte of the element at
    /// (disk, row) without any error signal from the device.
    Status corrupt_element(DiskId disk, RowId row, std::size_t byte_offset);

    /// Lifetime count of elements the assemble stage had to copy out of
    /// executor staging. Zero-copy reads (the healthy path, and degraded
    /// paths whose decode targets the caller buffer) leave it untouched;
    /// hedged or recovery-staged elements increment it. Test/diagnostic
    /// hook for the zero-staging-copy guarantee.
    std::int64_t assemble_staging_copies() const {
        return assemble_copies_.load(std::memory_order_relaxed);
    }

    /// Configure the self-healing I/O behaviour (retries, timeouts,
    /// hedging, replans, queue depth). Takes effect for subsequent
    /// operations; safe to call while requests are in flight.
    void set_recovery(const RecoveryOptions& options) { executor_.set_recovery(options); }
    RecoveryOptions recovery() const { return executor_.recovery(); }

    /// Attach (or detach, with nulls) observability: per-disk I/O
    /// accounting under ecfrm_disk_*{disk=i}, store-level counters under
    /// ecfrm_store_*, and request-scoped read-path spans (plan ->
    /// per-disk batch -> decode -> assemble) on `tracer`. With a
    /// `forensics`, every read (and scrub pass) additionally gets a
    /// per-request causal span tree, feeds the per-class SLO windows,
    /// and is captured when slow or recovery-active. With a `heat`
    /// model, every fetch queue feeds the live per-disk scoreboard, the
    /// degraded planner's health tie-break consumes its straggler mask,
    /// and the executor's auto_hedge policy derives deadlines from its
    /// windowed p99s. Race-free against in-flight operations: sinks are
    /// published as atomically swapped bundles, so attaching mid-traffic
    /// is safe; detached paths cost an atomic load and a null check.
    void attach_observability(obs::MetricRegistry* metrics, obs::Tracer* tracer = nullptr,
                              obs::RequestForensics* forensics = nullptr,
                              obs::DiskHeatModel* heat = nullptr);

    /// Scrub pass: audit every group's parity equations and repair
    /// single-element silent corruptions. A corrupt element is identified
    /// by hypothesis testing — rebuild each candidate position from the
    /// others and accept the unique hypothesis that restores full
    /// consistency. Groups with more damage than the code can pin down are
    /// counted unrecoverable and left untouched. Requires all disks alive.
    Result<ScrubReport> scrub();

  private:
    /// Store-level observability sinks, bundled so attach_observability
    /// can swap them atomically under live traffic (the executor and the
    /// devices hold their own bundles).
    struct StoreObs {
        obs::Tracer* tracer = nullptr;
        obs::RequestForensics* forensics = nullptr;
        obs::DiskHeatModel* heat = nullptr;
        obs::Counter* reads_total = nullptr;
        obs::Counter* degraded_reads_total = nullptr;
        obs::Counter* read_elements_total = nullptr;
        obs::Histogram* read_fanout = nullptr;
        obs::Histogram* read_max_load = nullptr;
    };

    const StoreObs& store_obs() const { return *obs_.load(std::memory_order_acquire); }
    static const StoreObs* empty_obs() {
        static const StoreObs none;
        return &none;
    }

    void bind_executor();

    Status restore_locked(std::vector<Extent> extents, StripeId stripes);
    Status encode_stripe(StripeId stripe, ConstByteSpan stripe_data);
    Status encode_group(StripeId stripe, int group, ConstByteSpan stripe_data);
    Status commit_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes);
    Status read_elements_locked(ElementId start, std::int64_t count, ByteSpan out);
    Status execute_read(ElementId start, std::int64_t count, ByteSpan out,
                        std::vector<DiskId> excluded);
    Status execute_read_traced(ElementId start, std::int64_t count, ByteSpan out,
                               std::vector<DiskId> excluded, obs::RequestTrace* rt);
    Result<ScrubReport> scrub_locked(obs::RequestTrace* rt, std::uint32_t scan_node);
    std::vector<DiskId> failed_disks_locked() const;
    std::int64_t committed_bytes_locked() const {
        return extents_.empty() ? 0 : extents_.back().logical_start + extents_.back().bytes;
    }
    std::int64_t stored_data_elements_locked() const {
        return stripes_ * scheme_.layout().data_per_stripe();
    }

    core::Scheme scheme_;
    std::int64_t element_bytes_;
    ThreadPool* pool_;
    exec::PlanExecutor executor_;

    std::atomic<const StoreObs*> obs_{empty_obs()};
    std::mutex obs_mu_;  // guards retired_obs_
    std::vector<std::unique_ptr<const StoreObs>> retired_obs_;

    /// Readers (read_bytes/read_elements and the const accessors) hold
    /// this shared; every mutator holds it exclusive. Device objects have
    /// their own internal locking, so holding the shared lock across
    /// device I/O is safe and keeps plans consistent with extents.
    mutable std::shared_mutex mu_;

    std::atomic<std::int64_t> assemble_copies_{0};

    std::vector<std::unique_ptr<BlockDevice>> disks_;
    std::vector<std::uint8_t> pending_;  // buffered tail, < one stripe of data
    std::vector<Extent> extents_;        // committed user-byte runs
    StripeId stripes_ = 0;
    std::int64_t logical_bytes_ = 0;
};

}  // namespace ecfrm::store
