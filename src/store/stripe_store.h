// StripeStore: an in-memory erasure-coded storage node array holding real
// bytes, exercising the full write/encode, normal-read, degraded-read and
// reconstruction paths of a Scheme.
//
// Write model matches the paper's cloud-storage assumption: append-only,
// buffered until a full stripe is available, then erasure-coded as a full
// stripe write (Section I). Both directions of device I/O flow through
// exec::PlanExecutor: reads execute an AccessPlan, writes execute a
// WritePlan — so stripe commits, parity flushes, overwrites, rebuild and
// scrub repairs all get batched submission, the retry/backoff policy and
// request-trace spans from one engine.
//
// Concurrency: mutators serialise on a writer mutex, but hold the
// reader/writer lock exclusively only for the manifest/commit window —
// encode compute and device I/O of a stripe commit run with readers
// admitted, because writers only touch rows no committed plan can reach.
// Overwrite is the exception (it mutates committed rows and their
// parities in place) and excludes readers for its whole, now batched,
// read-modify-write. Online rebuild is chunked: begin_rebuild swaps in
// the replacement and keeps the disk out of read planning, rebuild_rows
// restores row ranges under the shared lock (readers proceed, planning
// around the mid-rebuild disk), finish_rebuild re-admits it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/read_planner.h"
#include "core/scheme.h"
#include "core/write_plan.h"
#include "exec/plan_executor.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "store/block_device.h"
#include "store/disk.h"
#include "store/extent.h"

namespace ecfrm::store {

struct ReconstructStats {
    std::int64_t elements_rebuilt = 0;
    std::int64_t elements_read = 0;
};

/// Self-healing knobs now live with the execution engine; the alias keeps
/// the store-level spelling working.
using RecoveryOptions = exec::RecoveryOptions;

struct ScrubReport {
    std::int64_t groups_scanned = 0;
    std::int64_t groups_inconsistent = 0;
    std::int64_t elements_repaired = 0;
    std::int64_t unrecoverable_groups = 0;

    bool clean() const { return groups_inconsistent == 0; }
};

class StripeStore {
  public:
    /// Builds one BlockDevice per disk index. Used to plug in persistent
    /// FileDisks (or anything else) instead of the default in-memory Disk.
    using DeviceFactory = std::function<Result<std::unique_ptr<BlockDevice>>(int index)>;

    /// In-memory store. `pool` may be null (serial execution); when
    /// provided, encode, reconstruction and fetch queues parallelise.
    StripeStore(core::Scheme scheme, std::int64_t element_bytes, ThreadPool* pool = nullptr);

    /// Orphaned hedge queues (straggling fetches abandoned at their hedge
    /// deadline) still reference the devices; drain them before the
    /// devices are destroyed.
    ~StripeStore() { executor_.drain_orphans(); }

    /// Store over caller-provided devices. Fails if any device cannot be
    /// built or reports the wrong element size.
    static Result<std::unique_ptr<StripeStore>> open(core::Scheme scheme, std::int64_t element_bytes,
                                                     const DeviceFactory& factory,
                                                     ThreadPool* pool = nullptr);

    /// Adopt pre-existing content (reopening a persistent store): declares
    /// that `stripes` full stripes are already on the devices, with user
    /// bytes laid out as described by `extents`.
    Status restore(std::vector<Extent> extents, StripeId stripes);

    /// Single-extent convenience: all `logical_bytes` user bytes stored
    /// contiguously from element 0 (one append run, one final flush).
    Status restore(std::int64_t logical_bytes, StripeId stripes);

    const core::Scheme& scheme() const { return scheme_; }
    std::int64_t element_bytes() const { return element_bytes_; }
    /// User-data bytes per full stripe.
    std::int64_t stripe_data_bytes() const {
        return scheme_.layout().data_per_stripe() * element_bytes_;
    }

    /// Append user bytes. Full stripes are encoded and written eagerly;
    /// the tail is buffered until flush(). Readers are only excluded
    /// during each committed stripe's manifest window, not its encode or
    /// device I/O.
    Status append(ConstByteSpan data);

    /// Zero-pad the buffered tail to a stripe boundary and encode it.
    Status flush();

    /// Commit one full stripe of user data WITHOUT its parity: the data
    /// elements are written through the executor and the manifest
    /// extended, with the stripe marked parity-pending. Healthy-path
    /// reads serve it immediately; degraded reads that would need its
    /// parity fail typed (beyond_tolerance) until encode_stripe_parity
    /// lands. Building block of the EcPipeline online-encode stage.
    Result<StripeId> commit_data_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes);

    /// Encode and flush the parity of a parity-pending stripe from the
    /// caller-retained stripe buffer, then clear its pending mark. Safe
    /// concurrently with appends and reads (parity rows of a pending
    /// stripe are unreachable by any read plan).
    Status encode_stripe_parity(StripeId stripe, ConstByteSpan stripe_data);

    /// Stripes committed data-only whose parity flush is still pending.
    std::int64_t unencoded_stripes() const;

    /// Overwrite committed bytes in place with read-modify-write parity
    /// updates: old data and touched parities are fetched as one batched
    /// executor plan, parity deltas are folded with the fused GF kernels
    /// (parity_p ^= sum_j coeff_pj * delta_j per group, one cache-blocked
    /// pass), and new data + updated parities go back out as one batched
    /// WritePlan — no full stripe re-encode and no per-element serial
    /// I/O. Requires every touched element's home disk and all its group
    /// parities to be online and not mid-rebuild, and the touched
    /// stripes' parity to be encoded.
    Status overwrite(std::int64_t offset, ConstByteSpan data);

    /// User bytes appended so far (committed + buffered tail).
    std::int64_t logical_bytes() const;

    /// User bytes already encoded onto the devices and thus readable.
    std::int64_t committed_bytes() const;

    /// Committed extents, in logical order. The reference is only stable
    /// while no writer (append/flush/restore) runs.
    const std::vector<Extent>& extents() const { return extents_; }

    /// Data elements stored (after flush; includes padding elements).
    std::int64_t stored_data_elements() const;

    /// Read `length` bytes at `offset` of the logical byte stream,
    /// transparently decoding around failed disks. Only committed bytes
    /// are readable; flush() first to read a buffered tail. Thread-safe:
    /// any number of reads may run concurrently.
    Result<std::vector<std::uint8_t>> read_bytes(std::int64_t offset, std::int64_t length);

    /// Element-granular read into `out` (size count * element_bytes).
    Status read_elements(ElementId start, std::int64_t count, ByteSpan out);

    /// Inject a disk failure (content dropped, reads fail).
    Status fail_disk(DiskId disk);

    /// Rebuild every element of a failed disk onto a replacement device.
    /// Composition of the chunked online API below; readers proceed
    /// concurrently, planning around the mid-rebuild disk.
    Result<ReconstructStats> reconstruct_disk(DiskId disk);

    /// Online rebuild, chunked. begin_rebuild swaps in an empty
    /// replacement but keeps the disk excluded from read planning;
    /// rebuild_rows (callable repeatedly, any order, pool-parallel
    /// inside) restores `[first, first + count)` clamped to the row
    /// count snapshotted at begin; finish_rebuild re-admits the disk.
    /// Stripes committed while a rebuild runs write to the replacement
    /// directly, so only the snapshot rows ever need rebuilding.
    /// abort_rebuild re-fails the disk and discards rebuild state (the
    /// recovery path when the replacement itself dies mid-rebuild).
    Status begin_rebuild(DiskId disk);
    Result<RowId> rebuild_target_rows(DiskId disk) const;
    Result<ReconstructStats> rebuild_rows(DiskId disk, RowId first, RowId count);
    Status finish_rebuild(DiskId disk);
    Status abort_rebuild(DiskId disk);

    std::vector<DiskId> failed_disks() const;
    /// Disks online but mid-rebuild (excluded from read planning).
    std::vector<DiskId> rebuilding_disks() const;

    /// Recompute every parity element from data and compare with what is
    /// stored. Fails on the first mismatch; parity-pending stripes are
    /// skipped. (Test/diagnostic hook.)
    Status verify_parity();

    /// Silent-corruption injection hook: flip a byte of the element at
    /// (disk, row) without any error signal from the device.
    Status corrupt_element(DiskId disk, RowId row, std::size_t byte_offset);

    /// Lifetime count of elements the assemble stage had to copy out of
    /// executor staging. Zero-copy reads (the healthy path, and degraded
    /// paths whose decode targets the caller buffer) leave it untouched;
    /// hedged or recovery-staged elements increment it. Test/diagnostic
    /// hook for the zero-staging-copy guarantee.
    std::int64_t assemble_staging_copies() const {
        return assemble_copies_.load(std::memory_order_relaxed);
    }

    /// Configure the self-healing I/O behaviour (retries, timeouts,
    /// hedging, replans, queue depth). Takes effect for subsequent
    /// operations; safe to call while requests are in flight.
    void set_recovery(const RecoveryOptions& options) { executor_.set_recovery(options); }
    RecoveryOptions recovery() const { return executor_.recovery(); }

    /// Attach (or detach, with nulls) observability: per-disk I/O
    /// accounting under ecfrm_disk_*{disk=i}, store-level counters under
    /// ecfrm_store_*, and request-scoped read-path spans (plan ->
    /// per-disk batch -> decode -> assemble) on `tracer`. With a
    /// `forensics`, every read (and scrub pass) additionally gets a
    /// per-request causal span tree, feeds the per-class SLO windows,
    /// and is captured when slow or recovery-active; stripe commits and
    /// overwrites record write-class requests with encode/write/commit
    /// phase spans. With a `heat` model, every fetch and write queue
    /// feeds the live per-disk scoreboard, the degraded planner's health
    /// tie-break consumes its straggler mask, and the executor's
    /// auto_hedge policy derives deadlines from its windowed p99s.
    /// Race-free against in-flight operations: sinks are published as
    /// atomically swapped bundles, so attaching mid-traffic is safe;
    /// detached paths cost an atomic load and a null check.
    void attach_observability(obs::MetricRegistry* metrics, obs::Tracer* tracer = nullptr,
                              obs::RequestForensics* forensics = nullptr,
                              obs::DiskHeatModel* heat = nullptr);

    /// Scrub pass: audit every group's parity equations and repair
    /// single-element silent corruptions. A corrupt element is identified
    /// by hypothesis testing — rebuild each candidate position from the
    /// others and accept the unique hypothesis that restores full
    /// consistency. Groups with more damage than the code can pin down are
    /// counted unrecoverable and left untouched. Parity-pending stripes
    /// are skipped. Requires all disks alive and no rebuild in flight.
    Result<ScrubReport> scrub();

  private:
    /// Store-level observability sinks, bundled so attach_observability
    /// can swap them atomically under live traffic (the executor and the
    /// devices hold their own bundles).
    struct StoreObs {
        obs::Tracer* tracer = nullptr;
        obs::RequestForensics* forensics = nullptr;
        obs::DiskHeatModel* heat = nullptr;
        obs::Counter* reads_total = nullptr;
        obs::Counter* degraded_reads_total = nullptr;
        obs::Counter* read_elements_total = nullptr;
        obs::Counter* writes_total = nullptr;
        obs::Counter* overwrites_total = nullptr;
        obs::Histogram* read_fanout = nullptr;
        obs::Histogram* read_max_load = nullptr;
        obs::Histogram* write_max_load = nullptr;
    };

    /// Per-disk state of one in-flight chunked rebuild (guarded by mu_).
    struct RebuildState {
        RowId target_rows = 0;
        std::vector<char> avoid;  // failure snapshot at begin_rebuild
    };

    const StoreObs& store_obs() const { return *obs_.load(std::memory_order_acquire); }
    static const StoreObs* empty_obs() {
        static const StoreObs none;
        return &none;
    }

    void bind_executor();

    Status restore_locked(std::vector<Extent> extents, StripeId stripes);
    /// Compute every group's parity of one stripe (groups * m buffers,
    /// group-major), pool-parallel across groups.
    Status compute_stripe_parity(ConstByteSpan stripe_data,
                                 std::vector<AlignedBuffer>& parity_bufs) const;
    /// Encode (optionally) + write + commit one stripe. Caller holds
    /// writer_mu_ and NOT mu_; only the manifest update takes mu_
    /// exclusively. with_parity=false commits data-only and marks the
    /// stripe parity-pending.
    Result<StripeId> commit_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes,
                                   bool with_parity);
    Status read_elements_locked(ElementId start, std::int64_t count, ByteSpan out);
    Status execute_read(ElementId start, std::int64_t count, ByteSpan out,
                        std::vector<DiskId> excluded);
    Status execute_read_traced(ElementId start, std::int64_t count, ByteSpan out,
                               std::vector<DiskId> excluded, obs::RequestTrace* rt);
    Result<ScrubReport> scrub_locked(obs::RequestTrace* rt, std::uint32_t scan_node);
    std::vector<DiskId> failed_disks_locked() const;
    /// Disks a read plan must route around: failed plus mid-rebuild.
    std::vector<DiskId> unavailable_disks_locked() const;
    std::int64_t committed_bytes_locked() const {
        return extents_.empty() ? 0 : extents_.back().logical_start + extents_.back().bytes;
    }
    std::int64_t stored_data_elements_locked() const {
        return stripes_ * scheme_.layout().data_per_stripe();
    }

    core::Scheme scheme_;
    std::int64_t element_bytes_;
    ThreadPool* pool_;
    exec::PlanExecutor executor_;

    std::atomic<const StoreObs*> obs_{empty_obs()};
    std::mutex obs_mu_;  // guards retired_obs_
    std::vector<std::unique_ptr<const StoreObs>> retired_obs_;

    /// Serialises mutators (append/flush/overwrite/restore and the
    /// rebuild lifecycle) against each other. Held across a whole stripe
    /// commit — including encode and device I/O — WITHOUT excluding
    /// readers: a committing writer only touches rows beyond every
    /// committed plan's reach, so readers keep flowing until the
    /// manifest window below.
    std::mutex writer_mu_;

    /// Readers (read_bytes/read_elements and the const accessors) hold
    /// this shared; held exclusively only for windows that change what
    /// readers may observe: the manifest/commit update, overwrite's RMW,
    /// restore, failure/rebuild transitions and scrub. Device objects
    /// have their own internal locking, so holding the shared lock
    /// across device I/O is safe and keeps plans consistent with
    /// extents.
    mutable std::shared_mutex mu_;

    /// Writer-preference gate over mu_. The pthread-backed shared_mutex
    /// keeps admitting new readers while an exclusive acquirer waits, so
    /// a steady stream of overlapping readers (eight threads re-reading
    /// the committed prefix back to back) can starve the manifest window
    /// forever. Exclusive acquirers announce themselves here before
    /// blocking on mu_; incoming readers hold back until no writer is
    /// waiting, while readers already inside drain naturally — the
    /// writer's wait is then bounded by the in-flight reads.
    mutable std::atomic<int> writers_waiting_{0};
    mutable std::mutex gate_mu_;
    mutable std::condition_variable gate_cv_;

    /// Gated shared acquisition of mu_ (readers + const accessors).
    std::shared_lock<std::shared_mutex> reader_lock() const;
    /// Announced exclusive acquisition of mu_ (manifest windows).
    std::unique_lock<std::shared_mutex> exclusive_lock() const;

    std::atomic<std::int64_t> assemble_copies_{0};

    std::vector<std::unique_ptr<BlockDevice>> disks_;
    std::vector<std::uint8_t> pending_;  // buffered tail; writers only (writer_mu_)
    std::vector<Extent> extents_;        // committed user-byte runs
    StripeId stripes_ = 0;
    std::int64_t logical_bytes_ = 0;
    std::set<StripeId> unencoded_;            // committed data-only, parity pending
    std::vector<char> rebuilding_;            // online but mid-rebuild, by DiskId
    std::map<DiskId, RebuildState> rebuilds_;  // active chunked rebuilds
};

}  // namespace ecfrm::store
