#include "store/manifest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace ecfrm::store {

Result<layout::LayoutKind> parse_layout_kind(const std::string& name) {
    if (name == "standard") return layout::LayoutKind::standard;
    if (name == "rotated") return layout::LayoutKind::rotated;
    if (name == "ecfrm") return layout::LayoutKind::ecfrm;
    return Error::invalid("unknown layout kind: " + name);
}

Status Manifest::save(const std::string& dir) const {
    const std::string tmp = dir + "/MANIFEST.tmp";
    const std::string final_path = dir + "/MANIFEST";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) return Error::io("cannot write " + tmp);
        out << "code=" << code_spec << "\n";
        out << "layout=" << layout::to_string(kind) << "\n";
        out << "element_bytes=" << element_bytes << "\n";
        out << "logical_bytes=" << logical_bytes << "\n";
        out << "stripes=" << stripes << "\n";
        for (const Extent& e : extents) {
            out << "extent=" << e.logical_start << ":" << e.element_start << ":" << e.bytes << "\n";
        }
        for (const ObjectRecord& o : objects) {
            if (o.name.find(':') != std::string::npos || o.name.find('\n') != std::string::npos) {
                return Error::invalid("object name may not contain ':' or newline: " + o.name);
            }
            out << "object=" << o.name << ":" << o.offset << ":" << o.bytes << "\n";
        }
        if (!out.good()) return Error::io("write failed on " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, final_path, ec);
    if (ec) return Error::io("rename failed: " + ec.message());
    return Status::success();
}

Result<Manifest> Manifest::load(const std::string& dir) {
    std::ifstream in(dir + "/MANIFEST");
    if (!in) return Error::io("cannot open " + dir + "/MANIFEST");
    std::map<std::string, std::string> kv;
    std::vector<Extent> extents;
    std::vector<ObjectRecord> objects;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) continue;
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        if (key == "extent") {
            long long logical = 0, element = 0, bytes = 0;
            if (std::sscanf(value.c_str(), "%lld:%lld:%lld", &logical, &element, &bytes) != 3) {
                return Error::invalid("malformed extent line in manifest");
            }
            extents.push_back({logical, element, bytes});
            continue;
        }
        if (key == "object") {
            // name:offset:bytes — the name may not contain ':'.
            const std::size_t c1 = value.find(':');
            const std::size_t c2 = c1 == std::string::npos ? std::string::npos : value.find(':', c1 + 1);
            if (c1 == std::string::npos || c2 == std::string::npos || c1 == 0) {
                return Error::invalid("malformed object line in manifest");
            }
            try {
                objects.push_back({value.substr(0, c1), std::stoll(value.substr(c1 + 1, c2 - c1 - 1)),
                                   std::stoll(value.substr(c2 + 1))});
            } catch (const std::exception&) {
                return Error::invalid("malformed object numbers in manifest");
            }
            continue;
        }
        kv[key] = value;
    }
    for (const char* key : {"code", "layout", "element_bytes", "logical_bytes", "stripes"}) {
        if (kv.count(key) == 0) return Error::invalid(std::string("manifest missing key: ") + key);
    }

    Manifest m;
    m.code_spec = kv["code"];
    auto kind = parse_layout_kind(kv["layout"]);
    if (!kind.ok()) return kind.error();
    m.kind = kind.value();
    try {
        m.element_bytes = std::stoll(kv["element_bytes"]);
        m.logical_bytes = std::stoll(kv["logical_bytes"]);
        m.stripes = std::stoll(kv["stripes"]);
    } catch (const std::exception&) {
        return Error::invalid("malformed numeric field in manifest");
    }
    if (m.element_bytes <= 0 || m.logical_bytes < 0 || m.stripes < 0) {
        return Error::invalid("nonsensical manifest values");
    }
    m.extents = std::move(extents);
    m.objects = std::move(objects);
    // Manifests written before extent tracking carry none: synthesise the
    // single contiguous run they imply.
    if (m.extents.empty() && m.logical_bytes > 0) {
        m.extents.push_back({0, 0, m.logical_bytes});
    }
    return m;
}

const ObjectRecord* Manifest::find_object(const std::string& name) const {
    for (const auto& o : objects) {
        if (o.name == name) return &o;
    }
    return nullptr;
}

}  // namespace ecfrm::store
