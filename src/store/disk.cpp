#include "store/disk.h"

#include <cstring>

namespace ecfrm::store {

Status Disk::write(RowId row, ConstByteSpan data) {
    if (row < 0) return Error::range("negative row");
    if (static_cast<std::int64_t>(data.size()) != element_bytes_) {
        return Error::invalid("element size mismatch on write");
    }
    IoTimer timer(io_stats(), /*is_read=*/false, static_cast<std::int64_t>(data.size()));
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("write to failed disk");
        if (static_cast<std::size_t>(row) >= slots_.size()) {
            slots_.resize(static_cast<std::size_t>(row) + 1);
            written_.resize(static_cast<std::size_t>(row) + 1, false);
        }
        auto& slot = slots_[static_cast<std::size_t>(row)];
        if (slot.size() == 0) slot = AlignedBuffer(static_cast<std::size_t>(element_bytes_));
        std::memcpy(slot.data(), data.data(), data.size());
        written_[static_cast<std::size_t>(row)] = true;
        return Status::success();
    }();
    timer.done(status);
    return status;
}

Status Disk::read(RowId row, ByteSpan out) const {
    if (row < 0) return Error::range("negative row");
    if (static_cast<std::int64_t>(out.size()) != element_bytes_) {
        return Error::invalid("element size mismatch on read");
    }
    IoTimer timer(io_stats(), /*is_read=*/true, static_cast<std::int64_t>(out.size()));
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("read from failed disk");
        if (static_cast<std::size_t>(row) >= slots_.size() || !written_[static_cast<std::size_t>(row)]) {
            return Error::range("row never written");
        }
        std::memcpy(out.data(), slots_[static_cast<std::size_t>(row)].data(), out.size());
        return Status::success();
    }();
    timer.done(status);
    return status;
}

Status Disk::read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                        std::size_t* completed) const {
    if (completed != nullptr) *completed = 0;
    if (rows.size() != outs.size()) return Error::invalid("batch rows/buffers size mismatch");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] < 0) return Error::range("negative row");
        if (static_cast<std::int64_t>(outs[i].size()) != element_bytes_) {
            return Error::invalid("element size mismatch on read");
        }
    }
    BatchIoTimer timer(io_stats(), /*is_read=*/true, element_bytes_, rows.size());
    std::size_t done = 0;
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("read from failed disk");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto row = static_cast<std::size_t>(rows[i]);
            if (row >= slots_.size() || !written_[row]) return Error::range("row never written");
            std::memcpy(outs[i].data(), slots_[row].data(), outs[i].size());
            done = i + 1;
        }
        return Status::success();
    }();
    timer.done(done, !status.ok());
    if (completed != nullptr) *completed = done;
    return status;
}

Status Disk::write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                         std::size_t* completed) {
    if (completed != nullptr) *completed = 0;
    if (rows.size() != payloads.size()) return Error::invalid("batch rows/payloads size mismatch");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] < 0) return Error::range("negative row");
        if (static_cast<std::int64_t>(payloads[i].size()) != element_bytes_) {
            return Error::invalid("element size mismatch on write");
        }
    }
    BatchIoTimer timer(io_stats(), /*is_read=*/false, element_bytes_, rows.size());
    std::size_t done = 0;
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("write to failed disk");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto row = static_cast<std::size_t>(rows[i]);
            if (row >= slots_.size()) {
                slots_.resize(row + 1);
                written_.resize(row + 1, false);
            }
            auto& slot = slots_[row];
            if (slot.size() == 0) slot = AlignedBuffer(static_cast<std::size_t>(element_bytes_));
            std::memcpy(slot.data(), payloads[i].data(), payloads[i].size());
            written_[row] = true;
            done = i + 1;
        }
        return Status::success();
    }();
    timer.done(done, !status.ok());
    if (completed != nullptr) *completed = done;
    return status;
}

Status Disk::corrupt_byte(RowId row, std::size_t offset) {
    std::lock_guard lk(mu_);
    if (failed_) return Error::disk_failed("corrupting a failed disk");
    if (row < 0 || static_cast<std::size_t>(row) >= slots_.size() || !written_[static_cast<std::size_t>(row)]) {
        return Error::range("row never written");
    }
    if (offset >= static_cast<std::size_t>(element_bytes_)) return Error::range("offset beyond element");
    slots_[static_cast<std::size_t>(row)][offset] ^= 0xff;
    return Status::success();
}

void Disk::fail() {
    std::lock_guard lk(mu_);
    failed_ = true;
    slots_.clear();
    written_.clear();
}

void Disk::replace() {
    std::lock_guard lk(mu_);
    failed_ = false;
    slots_.clear();
    written_.clear();
}

bool Disk::failed() const {
    std::lock_guard lk(mu_);
    return failed_;
}

RowId Disk::rows() const {
    std::lock_guard lk(mu_);
    return static_cast<RowId>(slots_.size());
}

}  // namespace ecfrm::store
