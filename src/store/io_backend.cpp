#include "store/io_backend.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "store/file_disk.h"
#include "store/uring_disk.h"

namespace ecfrm::store {

const char* to_string(IoBackend backend) {
    switch (backend) {
        case IoBackend::stdio: return "stdio";
        case IoBackend::pread: return "pread";
        case IoBackend::uring: return "uring";
    }
    return "unknown";
}

std::optional<IoBackend> parse_io_backend(const std::string& name) {
    if (name == "stdio") return IoBackend::stdio;
    if (name == "pread") return IoBackend::pread;
    if (name == "uring") return IoBackend::uring;
    return std::nullopt;
}

IoBackend default_io_backend() {
    static const IoBackend backend = []() {
        if (const char* v = std::getenv("ECFRM_IO_BACKEND")) {
            if (auto parsed = parse_io_backend(v)) return *parsed;
        }
        return UringDisk::uring_available() ? IoBackend::uring : IoBackend::pread;
    }();
    return backend;
}

BufferPool* element_arena(std::int64_t element_bytes) {
    // Process-lifetime pools, one per element size: the arena address
    // must stay stable for as long as any ring has it registered, and
    // devices of different archives share registration-eligible memory.
    // 256 slabs covers several in-flight stripes of staging buffers; the
    // pool's heap fallback absorbs bursts beyond that.
    static std::mutex mu;
    static std::map<std::int64_t, std::unique_ptr<BufferPool>>* pools =
        new std::map<std::int64_t, std::unique_ptr<BufferPool>>();
    std::lock_guard lk(mu);
    auto& pool = (*pools)[element_bytes];
    if (pool == nullptr) {
        pool = std::make_unique<BufferPool>(static_cast<std::size_t>(element_bytes), 256);
    }
    return pool.get();
}

Result<std::unique_ptr<BlockDevice>> open_file_device(const std::string& dir, int index,
                                                      std::int64_t element_bytes,
                                                      std::optional<IoBackend> backend) {
    const IoBackend chosen = backend.value_or(default_io_backend());
    switch (chosen) {
        case IoBackend::stdio: {
            auto disk = FileDisk::open(dir, index, element_bytes);
            if (!disk.ok()) return disk.error();
            return std::unique_ptr<BlockDevice>(std::move(disk.value()));
        }
        case IoBackend::pread:
        case IoBackend::uring: {
            const auto mode =
                chosen == IoBackend::uring ? UringDisk::Mode::uring : UringDisk::Mode::pread;
            BufferPool* arena =
                chosen == IoBackend::uring ? element_arena(element_bytes) : nullptr;
            auto disk = UringDisk::open(dir, index, element_bytes, mode, arena);
            if (!disk.ok()) return disk.error();
            return std::unique_ptr<BlockDevice>(std::move(disk.value()));
        }
    }
    return Error::invalid("unknown I/O backend");
}

}  // namespace ecfrm::store
