#include "store/stripe_store.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <optional>

#include "common/aligned_buffer.h"
#include "gf/kernels.h"
#include "gf/region.h"
#include "store/io_backend.h"

namespace ecfrm::store {

using core::AccessPlan;
using layout::GroupCoord;

StripeStore::StripeStore(core::Scheme scheme, std::int64_t element_bytes, ThreadPool* pool)
    : scheme_(std::move(scheme)),
      element_bytes_(element_bytes),
      pool_(pool),
      executor_(&scheme_, element_bytes, pool) {
    disks_.reserve(static_cast<std::size_t>(scheme_.disks()));
    for (int d = 0; d < scheme_.disks(); ++d) {
        disks_.push_back(std::make_unique<Disk>(element_bytes_));
    }
    bind_executor();
}

Result<std::unique_ptr<StripeStore>> StripeStore::open(core::Scheme scheme, std::int64_t element_bytes,
                                                       const DeviceFactory& factory, ThreadPool* pool) {
    auto store = std::unique_ptr<StripeStore>(new StripeStore(std::move(scheme), element_bytes, pool));
    store->disks_.clear();
    for (int d = 0; d < store->scheme_.disks(); ++d) {
        auto device = factory(d);
        if (!device.ok()) return device.error();
        if (device.value()->element_bytes() != element_bytes) {
            return Error::invalid("device " + std::to_string(d) + " has mismatched element size");
        }
        store->disks_.push_back(std::move(device).take());
    }
    store->bind_executor();
    return store;
}

void StripeStore::bind_executor() {
    std::vector<BlockDevice*> devices;
    devices.reserve(disks_.size());
    for (auto& disk : disks_) devices.push_back(disk.get());
    executor_.bind(std::move(devices));
    // Staging buffers come from the process-lifetime element arena: when
    // the devices are uring-backed the same arena is registered with
    // their rings, so staged reads are READ_FIXED-eligible, and orphaned
    // hedge queues can hold arena buffers past this store's lifetime.
    executor_.set_buffer_pool(element_arena(element_bytes_));
}

void StripeStore::attach_observability(obs::MetricRegistry* metrics, obs::Tracer* tracer,
                                       obs::RequestForensics* forensics,
                                       obs::DiskHeatModel* heat) {
    StoreObs fresh;
    exec::ExecutorMetrics exec_metrics;
    fresh.tracer = tracer;
    fresh.forensics = forensics;
    fresh.heat = heat;
    if (metrics == nullptr) {
        for (auto& disk : disks_) disk->attach_io_stats({});
    } else {
        for (int d = 0; d < scheme_.disks(); ++d) {
            disks_[static_cast<std::size_t>(d)]->attach_io_stats(metrics->disk_io_stats(d));
        }
        fresh.reads_total = &metrics->counter("ecfrm_store_reads_total");
        fresh.degraded_reads_total = &metrics->counter("ecfrm_store_degraded_reads_total");
        fresh.read_elements_total = &metrics->counter("ecfrm_store_read_elements_total");
        fresh.read_fanout = &metrics->histogram("ecfrm_store_read_fanout_disks");
        fresh.read_max_load = &metrics->histogram("ecfrm_store_read_max_disk_load");
        exec_metrics.decodes = &metrics->counter("ecfrm_store_decodes_total");
        exec_metrics.retries = &metrics->counter("ecfrm_store_retries_total");
        exec_metrics.timeouts = &metrics->counter("ecfrm_store_timeouts_total");
        exec_metrics.replans = &metrics->counter("ecfrm_store_replans_total");
        exec_metrics.hedged_reads = &metrics->counter("ecfrm_store_hedged_reads_total");
    }
    executor_.attach(exec_metrics, tracer, heat);
    auto bundle = std::make_unique<const StoreObs>(fresh);
    const StoreObs* published = bundle.get();
    {
        std::lock_guard<std::mutex> lock(obs_mu_);
        retired_obs_.push_back(std::move(bundle));
    }
    obs_.store(published, std::memory_order_release);
}

Status StripeStore::restore(std::vector<Extent> extents, StripeId stripes) {
    std::unique_lock lk(mu_);
    return restore_locked(std::move(extents), stripes);
}

Status StripeStore::restore_locked(std::vector<Extent> extents, StripeId stripes) {
    if (stripes < 0) return Error::invalid("negative stripe count");
    if (!pending_.empty()) return Error::invalid("restore on a store with buffered writes");
    const std::int64_t capacity_elems = stripes * scheme_.layout().data_per_stripe();

    std::int64_t logical = 0;
    ElementId min_element = 0;
    for (const auto& e : extents) {
        if (e.logical_start != logical || e.bytes < 0 || e.element_start < min_element) {
            return Error::invalid("extents must be non-negative, logically contiguous and non-overlapping");
        }
        const std::int64_t elems = (e.bytes + element_bytes_ - 1) / element_bytes_;
        if (e.element_start + elems > capacity_elems) {
            return Error::invalid("extent exceeds stripe capacity");
        }
        logical += e.bytes;
        min_element = e.element_start + elems;
    }
    extents_ = std::move(extents);
    logical_bytes_ = logical;
    stripes_ = stripes;
    return Status::success();
}

Status StripeStore::restore(std::int64_t logical_bytes, StripeId stripes) {
    if (logical_bytes < 0) return Error::invalid("negative restore state");
    std::vector<Extent> extents;
    if (logical_bytes > 0) extents.push_back({0, 0, logical_bytes});
    std::unique_lock lk(mu_);
    return restore_locked(std::move(extents), stripes);
}

std::int64_t StripeStore::logical_bytes() const {
    std::shared_lock lk(mu_);
    return logical_bytes_;
}

std::int64_t StripeStore::committed_bytes() const {
    std::shared_lock lk(mu_);
    return committed_bytes_locked();
}

std::int64_t StripeStore::stored_data_elements() const {
    std::shared_lock lk(mu_);
    return stored_data_elements_locked();
}

Status StripeStore::append(ConstByteSpan data) {
    std::unique_lock lk(mu_);
    const std::int64_t stripe_bytes = scheme_.layout().data_per_stripe() * element_bytes_;
    pending_.insert(pending_.end(), data.begin(), data.end());
    logical_bytes_ += static_cast<std::int64_t>(data.size());
    while (static_cast<std::int64_t>(pending_.size()) >= stripe_bytes) {
        auto status = commit_stripe(ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)),
                                    stripe_bytes);
        if (!status.ok()) return status;
        pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(stripe_bytes));
    }
    return Status::success();
}

Status StripeStore::flush() {
    std::unique_lock lk(mu_);
    if (pending_.empty()) return Status::success();
    const std::int64_t stripe_bytes = scheme_.layout().data_per_stripe() * element_bytes_;
    const auto user_bytes = static_cast<std::int64_t>(pending_.size());
    pending_.resize(static_cast<std::size_t>(stripe_bytes), 0);
    auto status = commit_stripe(ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)),
                                user_bytes);
    if (!status.ok()) return status;
    pending_.clear();
    return Status::success();
}

Status StripeStore::commit_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes) {
    auto status = encode_stripe(stripes_, stripe_data);
    if (!status.ok()) return status;
    const ElementId first = stripes_ * scheme_.layout().data_per_stripe();
    // Extend the previous extent when it ends exactly on this stripe's
    // first element (no padding gap in between).
    bool extended = false;
    if (!extents_.empty()) {
        Extent& last = extents_.back();
        if (last.bytes % element_bytes_ == 0 &&
            last.element_start + last.bytes / element_bytes_ == first) {
            last.bytes += user_bytes;
            extended = true;
        }
    }
    if (!extended) extents_.push_back({committed_bytes_locked(), first, user_bytes});
    ++stripes_;
    return Status::success();
}

Status StripeStore::encode_stripe(StripeId stripe, ConstByteSpan stripe_data) {
    const int groups = scheme_.layout().groups_per_stripe();
    if (pool_ != nullptr && groups > 1) {
        std::atomic<bool> failed{false};
        parallel_for(*pool_, static_cast<std::size_t>(groups), [&](std::size_t g) {
            if (!encode_group(stripe, static_cast<int>(g), stripe_data).ok()) failed.store(true);
        });
        if (failed.load()) return Error::io("group encode failed");
        return Status::success();
    }
    for (int g = 0; g < groups; ++g) {
        auto status = encode_group(stripe, g, stripe_data);
        if (!status.ok()) return status;
    }
    return Status::success();
}

Status StripeStore::encode_group(StripeId stripe, int group, ConstByteSpan stripe_data) {
    const auto& code = scheme_.code();
    const int k = code.k();
    const int m = code.m();

    // A write to a failed device is skipped (degraded write): the element
    // stays recoverable through the group's parity, and reconstruction
    // restores it onto the replacement device.
    auto write_slot = [&](const Location& loc, ConstByteSpan payload) -> Status {
        auto status = executor_.device_write(loc.disk, loc.row, payload);
        if (!status.ok() && status.error().code == Error::Code::disk_failed) return Status::success();
        return status;
    };

    // Gather the group's k data elements from the stripe buffer and write
    // them to their home slots.
    std::vector<ConstByteSpan> data(static_cast<std::size_t>(k));
    for (int t = 0; t < k; ++t) {
        const std::int64_t idx = static_cast<std::int64_t>(group) * k + t;
        data[static_cast<std::size_t>(t)] =
            stripe_data.subspan(static_cast<std::size_t>(idx * element_bytes_),
                                static_cast<std::size_t>(element_bytes_));
        const Location loc = scheme_.layout().locate({stripe, group, t});
        auto status = write_slot(loc, data[static_cast<std::size_t>(t)]);
        if (!status.ok()) return status;
    }

    // Compute and place the parities.
    std::vector<AlignedBuffer> parity_bufs;
    parity_bufs.reserve(static_cast<std::size_t>(m));
    std::vector<ByteSpan> parity(static_cast<std::size_t>(m));
    for (int p = 0; p < m; ++p) {
        parity_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
        parity[static_cast<std::size_t>(p)] = parity_bufs.back().span();
    }
    code.encode(data, parity, pool_);
    for (int p = 0; p < m; ++p) {
        const Location loc = scheme_.layout().locate({stripe, group, code.k() + p});
        auto status = write_slot(loc, parity[static_cast<std::size_t>(p)]);
        if (!status.ok()) return status;
    }
    return Status::success();
}

Status StripeStore::overwrite(std::int64_t offset, ConstByteSpan data) {
    std::unique_lock lk(mu_);
    const auto length = static_cast<std::int64_t>(data.size());
    if (offset < 0) return Error::range("negative offset");
    if (offset + length > committed_bytes_locked()) {
        return Error::range("overwrite must stay within committed bytes");
    }
    if (length == 0) return Status::success();
    const auto& code = scheme_.code();
    const auto& gen = code.generator();

    std::int64_t consumed = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        for (std::int64_t pos = lo; pos < hi;) {
            const ElementId elem = e.element_start + pos / element_bytes_;
            const std::int64_t in_elem = pos % element_bytes_;
            const std::int64_t chunk = std::min(element_bytes_ - in_elem, hi - pos);

            const GroupCoord coord = scheme_.layout().coord_of_data(elem);
            const Location loc = scheme_.layout().locate(coord);

            // Read-modify-write the data element.
            AlignedBuffer old_payload(static_cast<std::size_t>(element_bytes_));
            auto status = executor_.device_read(loc.disk, loc.row, old_payload.span());
            if (!status.ok()) return status;
            AlignedBuffer new_payload = old_payload;
            std::memcpy(new_payload.data() + in_elem, data.data() + consumed,
                        static_cast<std::size_t>(chunk));
            status = executor_.device_write(loc.disk, loc.row, new_payload.span());
            if (!status.ok()) return status;

            // delta = old ^ new; every parity folds in coeff * delta.
            AlignedBuffer delta = std::move(old_payload);
            gf::xor_region(delta.span(), new_payload.span());
            for (int p = code.k(); p < code.n(); ++p) {
                const std::uint8_t coeff = gen.at(p, coord.position);
                if (coeff == 0) continue;
                const Location ploc = scheme_.layout().locate({coord.stripe, coord.group, p});
                AlignedBuffer parity(static_cast<std::size_t>(element_bytes_));
                status = executor_.device_read(ploc.disk, ploc.row, parity.span());
                if (!status.ok()) return status;
                gf::addmul_region(parity.span(), delta.span(), coeff);
                status = executor_.device_write(ploc.disk, ploc.row, parity.span());
                if (!status.ok()) return status;
            }

            pos += chunk;
            consumed += chunk;
        }
    }
    if (consumed != length) return Error::internal("overwrite extent walk consumed wrong byte count");
    return Status::success();
}

Result<std::vector<std::uint8_t>> StripeStore::read_bytes(std::int64_t offset, std::int64_t length) {
    std::shared_lock lk(mu_);
    if (offset < 0 || length < 0) return Error::range("negative read range");
    if (offset + length > committed_bytes_locked()) {
        if (offset + length <= logical_bytes_) {
            return Error::invalid("range still buffered; call flush() before reading");
        }
        return Error::range("read beyond logical size");
    }
    std::vector<std::uint8_t> out(static_cast<std::size_t>(length));
    if (length == 0) return out;

    // Walk the committed extents overlapping [offset, offset + length).
    std::int64_t produced = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        const ElementId first = e.element_start + lo / element_bytes_;
        const ElementId last = e.element_start + (hi - 1) / element_bytes_;
        const std::int64_t count = last - first + 1;

        std::vector<std::uint8_t> elems(static_cast<std::size_t>(count * element_bytes_));
        auto status = read_elements_locked(first, count, ByteSpan(elems.data(), elems.size()));
        if (!status.ok()) return status.error();

        const std::int64_t skip = lo - (first - e.element_start) * element_bytes_;
        std::memcpy(out.data() + produced, elems.data() + skip, static_cast<std::size_t>(hi - lo));
        produced += hi - lo;
    }
    if (produced != length) return Error::internal("extent walk produced wrong byte count");
    return out;
}

Status StripeStore::read_elements(ElementId start, std::int64_t count, ByteSpan out) {
    std::shared_lock lk(mu_);
    return read_elements_locked(start, count, out);
}

Status StripeStore::read_elements_locked(ElementId start, std::int64_t count, ByteSpan out) {
    if (start < 0 || count < 0 || start + count > stored_data_elements_locked()) {
        return Error::range("element range beyond stored data");
    }
    if (static_cast<std::int64_t>(out.size()) != count * element_bytes_) {
        return Error::invalid("output buffer size mismatch");
    }
    if (count == 0) return Status::success();

    const StoreObs& o = store_obs();
    obs::Span read_span(o.tracer, "store.read_elements", "store");
    read_span.arg("start", start);
    read_span.arg("count", count);
    if (o.reads_total != nullptr) o.reads_total->add(1);
    if (o.read_elements_total != nullptr) o.read_elements_total->add(count);

    return execute_read(start, count, out, failed_disks_locked());
}

Status StripeStore::execute_read(ElementId start, std::int64_t count, ByteSpan out,
                                 std::vector<DiskId> excluded) {
    const StoreObs& o = store_obs();

    // Request forensics: give the read a traced identity. The executor
    // appends contiguous plan/fetch phase spans per round; decode and
    // assemble are added below, so the root's direct children tile the
    // request end to end and phase attribution sums to its latency.
    std::shared_ptr<obs::RequestTrace> rt;
    if (o.forensics != nullptr) {
        rt = o.forensics->start(excluded.empty() ? obs::RequestClass::normal
                                                 : obs::RequestClass::degraded);
        rt->attr_all(obs::RequestTrace::kRoot, {{"start", start}, {"count", count}});
        if (!excluded.empty()) {
            rt->attr(obs::RequestTrace::kRoot, "excluded",
                     static_cast<std::int64_t>(excluded.size()));
        }
    }
    auto status = execute_read_traced(start, count, out, std::move(excluded), rt.get());
    if (rt != nullptr) {
        if (!status.ok()) rt->attr(obs::RequestTrace::kRoot, "error", status.error().message);
        if (status.ok()) {
            // Close the root on the last phase's boundary so the phase
            // durations sum exactly to the request's end-to-end latency.
            o.forensics->finish_at(rt, true, rt->phase_cursor_us());
        } else {
            o.forensics->finish(rt, false);
        }
    }
    return status;
}

Status StripeStore::execute_read_traced(ElementId start, std::int64_t count, ByteSpan out,
                                        std::vector<DiskId> excluded, obs::RequestTrace* rt) {
    const StoreObs& o = store_obs();

    // Plan against the current exclusion set; a pattern the code cannot
    // decode is the read path's terminal "beyond tolerance" diagnosis.
    // Load-shape histograms and the plan span describe the intended plan
    // (first round); the recovery rounds are accounted by the executor's
    // retry/replan counters.
    bool first_plan = true;
    auto replanner = [&](const std::vector<DiskId>& excl) -> Result<AccessPlan> {
        std::optional<obs::Span> plan_span;
        if (first_plan) plan_span.emplace(o.tracer, "store.plan", "store");
        auto planned = [&]() -> Result<AccessPlan> {
            if (excl.empty()) return core::plan_normal_read(scheme_, start, count);
            if (o.degraded_reads_total != nullptr) o.degraded_reads_total->add(1);
            // Health-aware planning: flagged stragglers lose repair-source
            // ties, so degraded reads drift off slow disks as the heat
            // window observes them.
            std::vector<char> straggler_mask;
            if (o.heat != nullptr) {
                straggler_mask = o.heat->straggler_mask(obs::DiskHeatModel::now_seconds());
            }
            auto degraded = core::plan_degraded_read(
                scheme_, start, count, excl, core::DegradedPolicy::local_first,
                straggler_mask.empty() ? nullptr : &straggler_mask);
            if (!degraded.ok()) {
                if (degraded.error().code == Error::Code::undecodable) {
                    return Error::beyond_tolerance(
                        "read cannot be planned around " + std::to_string(excl.size()) +
                        " unavailable disks: " + degraded.error().message);
                }
                return degraded.error();
            }
            return degraded;
        }();
        if (first_plan && planned.ok()) {
            first_plan = false;
            if (plan_span.has_value()) {
                plan_span->arg("fetches", planned.value().total_fetched());
                plan_span->arg("max_load", static_cast<std::int64_t>(planned.value().max_load()));
            }
            if (o.read_max_load != nullptr) o.read_max_load->record(planned.value().max_load());
            if (o.read_fanout != nullptr) {
                o.read_fanout->record(static_cast<double>(planned.value().batches().size()));
            }
        }
        return planned;
    };

    // Zero-copy sink: a requested data element lands directly in the
    // caller's output slice — fetched there by the device, or decoded
    // there — so the healthy path's assemble stage has nothing to copy.
    // Repair sources, parities and hedge-owned buffers stay in executor
    // staging (the sink returns an empty span for them).
    std::map<exec::PlanExecutor::Key, std::int64_t> dest;
    for (std::int64_t i = 0; i < count; ++i) {
        dest.emplace(exec::PlanExecutor::key_of(scheme_.layout().coord_of_data(start + i)), i);
    }
    auto sink = [&](const exec::PlanExecutor::Key& key) -> ByteSpan {
        auto it = dest.find(key);
        if (it == dest.end()) return {};
        return out.subspan(static_cast<std::size_t>(it->second * element_bytes_),
                           static_cast<std::size_t>(element_bytes_));
    };

    auto fetched = executor_.fetch(replanner, std::move(excluded), rt, sink);
    if (!fetched.ok()) return fetched.error();
    exec::PlanExecutor::FetchResult& result = fetched.value();

    // A read that grew its exclusion set mid-flight (or started with
    // one) is a degraded read, whatever class it started as.
    if (rt != nullptr && (!result.excluded.empty() || rt->replans() > 0)) {
        rt->set_class(obs::RequestClass::degraded);
    }

    // Run the decode recipes to materialise failed elements. Phase spans
    // (decode, assemble) chain off the previous phase's end via
    // begin_phase, so attribution tiles the request even when the thread
    // is preempted between two spans.
    {
        obs::Span decode_span(o.tracer, "store.decode", "store");
        decode_span.arg("decodes", static_cast<std::int64_t>(result.plan.decodes().size()));
        const std::uint32_t decode_node = rt != nullptr ? rt->begin_phase("decode") : 0;
        auto status = executor_.decode(result.plan, result.elements, {rt, decode_node}, sink);
        if (rt != nullptr) {
            rt->end_with(decode_node,
                         {{"decodes", static_cast<std::int64_t>(result.plan.decodes().size())}});
        }
        if (!status.ok()) return status;
    }

    // Assemble the user range in logical order. Elements routed through
    // the sink already sit in place; only staged elements (hedged reads,
    // elements a recovery round landed in executor buffers) still copy.
    obs::Span assemble_span(o.tracer, "store.assemble", "store");
    const std::uint32_t assemble_node = rt != nullptr ? rt->begin_phase("assemble") : 0;
    std::int64_t copies = 0;
    for (std::int64_t i = 0; i < count; ++i) {
        const GroupCoord coord = scheme_.layout().coord_of_data(start + i);
        auto it = result.elements.find(exec::PlanExecutor::key_of(coord));
        if (it == result.elements.end()) {
            if (rt != nullptr) rt->end(assemble_node);
            return Error::internal("requested element missing after decode");
        }
        std::uint8_t* const dst = out.data() + static_cast<std::size_t>(i * element_bytes_);
        if (it->second.data() != dst) {
            std::memcpy(dst, it->second.data(), static_cast<std::size_t>(element_bytes_));
            ++copies;
        }
    }
    if (copies > 0) assemble_copies_.fetch_add(copies, std::memory_order_relaxed);
    if (rt != nullptr) {
        rt->end_with(assemble_node, {{"elements", count}, {"staging_copies", copies}});
    }
    return Status::success();
}

Status StripeStore::fail_disk(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    std::unique_lock lk(mu_);
    disks_[static_cast<std::size_t>(disk)]->fail();
    return Status::success();
}

std::vector<DiskId> StripeStore::failed_disks() const {
    std::shared_lock lk(mu_);
    return failed_disks_locked();
}

std::vector<DiskId> StripeStore::failed_disks_locked() const {
    std::vector<DiskId> failed;
    for (int d = 0; d < scheme_.disks(); ++d) {
        if (disks_[static_cast<std::size_t>(d)]->failed()) failed.push_back(d);
    }
    return failed;
}

Result<ReconstructStats> StripeStore::reconstruct_disk(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    std::unique_lock lk(mu_);
    if (!disks_[static_cast<std::size_t>(disk)]->failed()) {
        return Error::invalid("disk is not failed; nothing to reconstruct");
    }

    const StoreObs& o = store_obs();
    obs::Span span(o.tracer, "store.reconstruct", "store");
    span.arg("disk", static_cast<std::int64_t>(disk));

    // Snapshot the failure set before bringing the replacement online:
    // sources must avoid every disk that is down right now, including the
    // one being rebuilt.
    std::vector<char> avoid(static_cast<std::size_t>(scheme_.disks()), 0);
    for (DiskId d : failed_disks_locked()) avoid[static_cast<std::size_t>(d)] = 1;

    disks_[static_cast<std::size_t>(disk)]->replace();
    const RowId rows = scheme_.rows_for(stripes_);

    std::atomic<std::int64_t> rebuilt{0};
    std::atomic<std::int64_t> reads{0};
    std::atomic<bool> error_flag{false};

    auto rebuild_row = [&](RowId row) {
        if (error_flag.load()) return;
        const GroupCoord coord = scheme_.layout().coord_at({disk, row});
        AlignedBuffer target(static_cast<std::size_t>(element_bytes_));
        auto sources = executor_.rebuild_element(coord, avoid, target.span());
        if (!sources.ok()) {
            error_flag.store(true);
            return;
        }
        reads.fetch_add(sources.value());
        if (!executor_.device_write(disk, row, target.span()).ok()) {
            error_flag.store(true);
            return;
        }
        rebuilt.fetch_add(1);
    };

    if (pool_ != nullptr && rows > 1) {
        parallel_for(*pool_, static_cast<std::size_t>(rows),
                     [&](std::size_t r) { rebuild_row(static_cast<RowId>(r)); });
    } else {
        for (RowId r = 0; r < rows; ++r) rebuild_row(r);
    }

    if (error_flag.load()) return Error::undecodable("reconstruction failed (too many concurrent failures?)");
    return ReconstructStats{rebuilt.load(), reads.load()};
}

Status StripeStore::corrupt_element(DiskId disk, RowId row, std::size_t byte_offset) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    std::unique_lock lk(mu_);
    return disks_[static_cast<std::size_t>(disk)]->corrupt_byte(row, byte_offset);
}

namespace {

/// True when the group's parity equations all hold for these buffers
/// (buffers[i] = payload of code position i).
bool group_consistent(const codes::ErasureCode& code, const std::vector<AlignedBuffer>& bufs,
                      std::int64_t element_bytes) {
    std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
    for (int j = 0; j < code.k(); ++j) data[static_cast<std::size_t>(j)] = bufs[static_cast<std::size_t>(j)].span();
    std::vector<AlignedBuffer> expect_bufs;
    std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
    for (int p = 0; p < code.m(); ++p) {
        expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes));
        expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
    }
    code.encode(data, expect);
    for (int p = 0; p < code.m(); ++p) {
        if (std::memcmp(expect_bufs[static_cast<std::size_t>(p)].data(),
                        bufs[static_cast<std::size_t>(code.k() + p)].data(),
                        static_cast<std::size_t>(element_bytes)) != 0) {
            return false;
        }
    }
    return true;
}

}  // namespace

Result<ScrubReport> StripeStore::scrub() {
    std::unique_lock lk(mu_);
    if (!failed_disks_locked().empty()) return Error::disk_failed("scrub requires all disks online");

    // A scrub pass is one scrub-class request: the whole scan is its
    // single phase, with a span per inconsistent group under it.
    const StoreObs& o = store_obs();
    std::shared_ptr<obs::RequestTrace> rt;
    std::uint32_t scan_node = 0;
    if (o.forensics != nullptr) {
        rt = o.forensics->start(obs::RequestClass::scrub);
        scan_node = rt->begin_phase("scan");
    }
    auto result = scrub_locked(rt.get(), scan_node);
    if (rt != nullptr) {
        if (result.ok()) {
            rt->attr(scan_node, "groups", result.value().groups_scanned);
            rt->attr(scan_node, "inconsistent", result.value().groups_inconsistent);
            rt->attr(scan_node, "repaired", result.value().elements_repaired);
        } else {
            rt->attr(obs::RequestTrace::kRoot, "error", result.error().message);
        }
        rt->end(scan_node);
        if (result.ok()) {
            o.forensics->finish_at(rt, true, rt->phase_cursor_us());
        } else {
            o.forensics->finish(rt, false);
        }
    }
    return result;
}

Result<ScrubReport> StripeStore::scrub_locked(obs::RequestTrace* rt, std::uint32_t scan_node) {
    const auto& code = scheme_.code();
    ScrubReport report;

    for (StripeId s = 0; s < stripes_; ++s) {
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            ++report.groups_scanned;

            std::vector<AlignedBuffer> bufs;
            std::vector<ByteSpan> spans(static_cast<std::size_t>(code.n()));
            bufs.reserve(static_cast<std::size_t>(code.n()));
            for (int p = 0; p < code.n(); ++p) {
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                spans[static_cast<std::size_t>(p)] = bufs.back().span();
            }
            auto status = executor_.read_group(s, g, spans);
            if (!status.ok()) return status.error();
            if (group_consistent(code, bufs, element_bytes_)) continue;
            ++report.groups_inconsistent;
            const double repair_t0 = rt != nullptr ? obs::forensic_now_us() : 0.0;

            // Hypothesis test: rebuild each position from the other n-1
            // and accept the unique hypothesis that restores consistency.
            // (Unique for a single corruption because our codes have
            // element-level distance >= 3.)
            bool repaired = false;
            for (int z = 0; z < code.n() && !repaired; ++z) {
                std::vector<int> sources;
                for (int p = 0; p < code.n(); ++p) {
                    if (p != z) sources.push_back(p);
                }
                auto repair = code.solve_repair(z, sources);
                if (!repair.ok()) continue;

                std::vector<AlignedBuffer> trial = bufs;
                std::vector<ByteSpan> trial_spans(static_cast<std::size_t>(code.n()));
                for (int p = 0; p < code.n(); ++p) trial_spans[static_cast<std::size_t>(p)] = trial[static_cast<std::size_t>(p)].span();
                codes::DecodePlan one;
                one.repairs.push_back(repair.value());
                codes::ErasureCode::apply_plan(one, trial_spans);

                if (!group_consistent(code, trial, element_bytes_)) continue;

                // Hypothesis accepted: persist the corrected element.
                const Location loc = scheme_.layout().locate({s, g, z});
                auto write_status = executor_.device_write(
                    loc.disk, loc.row, trial[static_cast<std::size_t>(z)].span());
                if (!write_status.ok()) return write_status.error();
                ++report.elements_repaired;
                repaired = true;
            }
            if (!repaired) ++report.unrecoverable_groups;
            if (rt != nullptr) {
                rt->complete(scan_node, "scrub.repair", repair_t0,
                             obs::forensic_now_us() - repair_t0,
                             {{"stripe", std::to_string(s)},
                              {"group", std::to_string(g)},
                              {"repaired", repaired ? "true" : "false"}});
            }
        }
    }
    return report;
}

Status StripeStore::verify_parity() {
    std::shared_lock lk(mu_);
    const auto& code = scheme_.code();
    for (StripeId s = 0; s < stripes_; ++s) {
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            std::vector<AlignedBuffer> bufs;
            std::vector<ByteSpan> spans(static_cast<std::size_t>(code.n()));
            std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
            bufs.reserve(static_cast<std::size_t>(code.n()));
            for (int p = 0; p < code.n(); ++p) {
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                spans[static_cast<std::size_t>(p)] = bufs.back().span();
            }
            auto status = executor_.read_group(s, g, spans);
            if (!status.ok()) return status;
            for (int p = 0; p < code.k(); ++p) data[static_cast<std::size_t>(p)] = bufs[static_cast<std::size_t>(p)].span();
            std::vector<AlignedBuffer> expect_bufs;
            std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
            for (int p = 0; p < code.m(); ++p) {
                expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
            }
            code.encode(data, expect);
            for (int p = 0; p < code.m(); ++p) {
                const auto& stored = bufs[static_cast<std::size_t>(code.k() + p)];
                if (std::memcmp(stored.data(), expect_bufs[static_cast<std::size_t>(p)].data(),
                                static_cast<std::size_t>(element_bytes_)) != 0) {
                    return Error::internal("parity mismatch at stripe " + std::to_string(s) + " group " +
                                           std::to_string(g) + " parity " + std::to_string(p));
                }
            }
        }
    }
    return Status::success();
}

}  // namespace ecfrm::store
