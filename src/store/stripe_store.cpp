#include "store/stripe_store.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <map>
#include <optional>
#include <tuple>

#include "common/aligned_buffer.h"
#include "gf/region.h"

namespace ecfrm::store {

using core::AccessPlan;
using layout::GroupCoord;

namespace {
using Key = std::tuple<StripeId, int, int>;
Key key_of(const GroupCoord& c) { return {c.stripe, c.group, c.position}; }
}  // namespace

StripeStore::StripeStore(core::Scheme scheme, std::int64_t element_bytes, ThreadPool* pool)
    : scheme_(std::move(scheme)), element_bytes_(element_bytes), pool_(pool) {
    disks_.reserve(static_cast<std::size_t>(scheme_.disks()));
    for (int d = 0; d < scheme_.disks(); ++d) {
        disks_.push_back(std::make_unique<Disk>(element_bytes_));
    }
}

Result<std::unique_ptr<StripeStore>> StripeStore::open(core::Scheme scheme, std::int64_t element_bytes,
                                                       const DeviceFactory& factory, ThreadPool* pool) {
    auto store = std::unique_ptr<StripeStore>(new StripeStore(std::move(scheme), element_bytes, pool));
    store->disks_.clear();
    for (int d = 0; d < store->scheme_.disks(); ++d) {
        auto device = factory(d);
        if (!device.ok()) return device.error();
        if (device.value()->element_bytes() != element_bytes) {
            return Error::invalid("device " + std::to_string(d) + " has mismatched element size");
        }
        store->disks_.push_back(std::move(device).take());
    }
    return store;
}

void StripeStore::attach_observability(obs::MetricRegistry* metrics, obs::Tracer* tracer) {
    tracer_ = tracer;
    if (metrics == nullptr) {
        for (auto& disk : disks_) disk->attach_io_stats({});
        reads_total_ = nullptr;
        degraded_reads_total_ = nullptr;
        read_elements_total_ = nullptr;
        decodes_total_ = nullptr;
        read_fanout_ = nullptr;
        read_max_load_ = nullptr;
        return;
    }
    for (int d = 0; d < scheme_.disks(); ++d) {
        disks_[static_cast<std::size_t>(d)]->attach_io_stats(metrics->disk_io_stats(d));
    }
    reads_total_ = &metrics->counter("ecfrm_store_reads_total");
    degraded_reads_total_ = &metrics->counter("ecfrm_store_degraded_reads_total");
    read_elements_total_ = &metrics->counter("ecfrm_store_read_elements_total");
    decodes_total_ = &metrics->counter("ecfrm_store_decodes_total");
    read_fanout_ = &metrics->histogram("ecfrm_store_read_fanout_disks");
    read_max_load_ = &metrics->histogram("ecfrm_store_read_max_disk_load");
}

Status StripeStore::restore(std::vector<Extent> extents, StripeId stripes) {
    if (stripes < 0) return Error::invalid("negative stripe count");
    if (!pending_.empty()) return Error::invalid("restore on a store with buffered writes");
    const std::int64_t capacity_elems = stripes * scheme_.layout().data_per_stripe();

    std::int64_t logical = 0;
    ElementId min_element = 0;
    for (const auto& e : extents) {
        if (e.logical_start != logical || e.bytes < 0 || e.element_start < min_element) {
            return Error::invalid("extents must be non-negative, logically contiguous and non-overlapping");
        }
        const std::int64_t elems = (e.bytes + element_bytes_ - 1) / element_bytes_;
        if (e.element_start + elems > capacity_elems) {
            return Error::invalid("extent exceeds stripe capacity");
        }
        logical += e.bytes;
        min_element = e.element_start + elems;
    }
    extents_ = std::move(extents);
    logical_bytes_ = logical;
    stripes_ = stripes;
    return Status::success();
}

Status StripeStore::restore(std::int64_t logical_bytes, StripeId stripes) {
    if (logical_bytes < 0) return Error::invalid("negative restore state");
    std::vector<Extent> extents;
    if (logical_bytes > 0) extents.push_back({0, 0, logical_bytes});
    return restore(std::move(extents), stripes);
}

Status StripeStore::append(ConstByteSpan data) {
    const std::int64_t stripe_bytes = scheme_.layout().data_per_stripe() * element_bytes_;
    pending_.insert(pending_.end(), data.begin(), data.end());
    logical_bytes_ += static_cast<std::int64_t>(data.size());
    while (static_cast<std::int64_t>(pending_.size()) >= stripe_bytes) {
        auto status = commit_stripe(ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)),
                                    stripe_bytes);
        if (!status.ok()) return status;
        pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(stripe_bytes));
    }
    return Status::success();
}

Status StripeStore::flush() {
    if (pending_.empty()) return Status::success();
    const std::int64_t stripe_bytes = scheme_.layout().data_per_stripe() * element_bytes_;
    const auto user_bytes = static_cast<std::int64_t>(pending_.size());
    pending_.resize(static_cast<std::size_t>(stripe_bytes), 0);
    auto status = commit_stripe(ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)),
                                user_bytes);
    if (!status.ok()) return status;
    pending_.clear();
    return Status::success();
}

Status StripeStore::commit_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes) {
    auto status = encode_stripe(stripes_, stripe_data);
    if (!status.ok()) return status;
    const ElementId first = stripes_ * scheme_.layout().data_per_stripe();
    // Extend the previous extent when it ends exactly on this stripe's
    // first element (no padding gap in between).
    bool extended = false;
    if (!extents_.empty()) {
        Extent& last = extents_.back();
        if (last.bytes % element_bytes_ == 0 &&
            last.element_start + last.bytes / element_bytes_ == first) {
            last.bytes += user_bytes;
            extended = true;
        }
    }
    if (!extended) extents_.push_back({committed_bytes(), first, user_bytes});
    ++stripes_;
    return Status::success();
}

Status StripeStore::encode_stripe(StripeId stripe, ConstByteSpan stripe_data) {
    const int groups = scheme_.layout().groups_per_stripe();
    if (pool_ != nullptr && groups > 1) {
        std::atomic<bool> failed{false};
        parallel_for(*pool_, static_cast<std::size_t>(groups), [&](std::size_t g) {
            if (!encode_group(stripe, static_cast<int>(g), stripe_data).ok()) failed.store(true);
        });
        if (failed.load()) return Error::io("group encode failed");
        return Status::success();
    }
    for (int g = 0; g < groups; ++g) {
        auto status = encode_group(stripe, g, stripe_data);
        if (!status.ok()) return status;
    }
    return Status::success();
}

Status StripeStore::encode_group(StripeId stripe, int group, ConstByteSpan stripe_data) {
    const auto& code = scheme_.code();
    const int k = code.k();
    const int m = code.m();

    // A write to a failed device is skipped (degraded write): the element
    // stays recoverable through the group's parity, and reconstruction
    // restores it onto the replacement device.
    auto write_slot = [&](const Location& loc, ConstByteSpan payload) -> Status {
        auto status = disks_[static_cast<std::size_t>(loc.disk)]->write(loc.row, payload);
        if (!status.ok() && status.error().code == Error::Code::disk_failed) return Status::success();
        return status;
    };

    // Gather the group's k data elements from the stripe buffer and write
    // them to their home slots.
    std::vector<ConstByteSpan> data(static_cast<std::size_t>(k));
    for (int t = 0; t < k; ++t) {
        const std::int64_t idx = static_cast<std::int64_t>(group) * k + t;
        data[static_cast<std::size_t>(t)] =
            stripe_data.subspan(static_cast<std::size_t>(idx * element_bytes_),
                                static_cast<std::size_t>(element_bytes_));
        const Location loc = scheme_.layout().locate({stripe, group, t});
        auto status = write_slot(loc, data[static_cast<std::size_t>(t)]);
        if (!status.ok()) return status;
    }

    // Compute and place the parities.
    std::vector<AlignedBuffer> parity_bufs;
    parity_bufs.reserve(static_cast<std::size_t>(m));
    std::vector<ByteSpan> parity(static_cast<std::size_t>(m));
    for (int p = 0; p < m; ++p) {
        parity_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
        parity[static_cast<std::size_t>(p)] = parity_bufs.back().span();
    }
    code.encode(data, parity);
    for (int p = 0; p < m; ++p) {
        const Location loc = scheme_.layout().locate({stripe, group, code.k() + p});
        auto status = write_slot(loc, parity[static_cast<std::size_t>(p)]);
        if (!status.ok()) return status;
    }
    return Status::success();
}

Status StripeStore::overwrite(std::int64_t offset, ConstByteSpan data) {
    const auto length = static_cast<std::int64_t>(data.size());
    if (offset < 0) return Error::range("negative offset");
    if (offset + length > committed_bytes()) {
        return Error::range("overwrite must stay within committed bytes");
    }
    if (length == 0) return Status::success();
    const auto& code = scheme_.code();
    const auto& gen = code.generator();

    std::int64_t consumed = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        for (std::int64_t pos = lo; pos < hi;) {
            const ElementId elem = e.element_start + pos / element_bytes_;
            const std::int64_t in_elem = pos % element_bytes_;
            const std::int64_t chunk = std::min(element_bytes_ - in_elem, hi - pos);

            const GroupCoord coord = scheme_.layout().coord_of_data(elem);
            const Location loc = scheme_.layout().locate(coord);

            // Read-modify-write the data element.
            AlignedBuffer old_payload(static_cast<std::size_t>(element_bytes_));
            auto status = disks_[static_cast<std::size_t>(loc.disk)]->read(loc.row, old_payload.span());
            if (!status.ok()) return status;
            AlignedBuffer new_payload = old_payload;
            std::memcpy(new_payload.data() + in_elem, data.data() + consumed,
                        static_cast<std::size_t>(chunk));
            status = disks_[static_cast<std::size_t>(loc.disk)]->write(loc.row, new_payload.span());
            if (!status.ok()) return status;

            // delta = old ^ new; every parity folds in coeff * delta.
            AlignedBuffer delta = std::move(old_payload);
            gf::xor_region(delta.span(), new_payload.span());
            for (int p = code.k(); p < code.n(); ++p) {
                const std::uint8_t coeff = gen.at(p, coord.position);
                if (coeff == 0) continue;
                const Location ploc = scheme_.layout().locate({coord.stripe, coord.group, p});
                AlignedBuffer parity(static_cast<std::size_t>(element_bytes_));
                status = disks_[static_cast<std::size_t>(ploc.disk)]->read(ploc.row, parity.span());
                if (!status.ok()) return status;
                gf::addmul_region(parity.span(), delta.span(), coeff);
                status = disks_[static_cast<std::size_t>(ploc.disk)]->write(ploc.row, parity.span());
                if (!status.ok()) return status;
            }

            pos += chunk;
            consumed += chunk;
        }
    }
    if (consumed != length) return Error::internal("overwrite extent walk consumed wrong byte count");
    return Status::success();
}

Result<std::vector<std::uint8_t>> StripeStore::read_bytes(std::int64_t offset, std::int64_t length) {
    if (offset < 0 || length < 0) return Error::range("negative read range");
    if (offset + length > committed_bytes()) {
        if (offset + length <= logical_bytes_) {
            return Error::invalid("range still buffered; call flush() before reading");
        }
        return Error::range("read beyond logical size");
    }
    std::vector<std::uint8_t> out(static_cast<std::size_t>(length));
    if (length == 0) return out;

    // Walk the committed extents overlapping [offset, offset + length).
    std::int64_t produced = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        const ElementId first = e.element_start + lo / element_bytes_;
        const ElementId last = e.element_start + (hi - 1) / element_bytes_;
        const std::int64_t count = last - first + 1;

        std::vector<std::uint8_t> elems(static_cast<std::size_t>(count * element_bytes_));
        auto status = read_elements(first, count, ByteSpan(elems.data(), elems.size()));
        if (!status.ok()) return status.error();

        const std::int64_t skip = lo - (first - e.element_start) * element_bytes_;
        std::memcpy(out.data() + produced, elems.data() + skip, static_cast<std::size_t>(hi - lo));
        produced += hi - lo;
    }
    if (produced != length) return Error::internal("extent walk produced wrong byte count");
    return out;
}

Status StripeStore::read_elements(ElementId start, std::int64_t count, ByteSpan out) {
    if (start < 0 || count < 0 || start + count > stored_data_elements()) {
        return Error::range("element range beyond stored data");
    }
    if (static_cast<std::int64_t>(out.size()) != count * element_bytes_) {
        return Error::invalid("output buffer size mismatch");
    }
    if (count == 0) return Status::success();

    obs::Span read_span(tracer_, "store.read_elements", "store");
    read_span.arg("start", start);
    read_span.arg("count", count);
    if (reads_total_ != nullptr) reads_total_->add(1);
    if (read_elements_total_ != nullptr) read_elements_total_->add(count);

    const std::vector<DiskId> failed = failed_disks();
    std::optional<core::AccessPlan> plan;
    {
        obs::Span plan_span(tracer_, "store.plan", "store");
        if (failed.empty()) {
            plan.emplace(core::plan_normal_read(scheme_, start, count));
        } else {
            if (degraded_reads_total_ != nullptr) degraded_reads_total_->add(1);
            auto degraded = core::plan_degraded_read(scheme_, start, count, failed);
            if (!degraded.ok()) return degraded.error();
            plan.emplace(std::move(degraded).take());
        }
        plan_span.arg("fetches", plan->total_fetched());
        plan_span.arg("max_load", static_cast<std::int64_t>(plan->max_load()));
    }
    if (read_max_load_ != nullptr) read_max_load_->record(plan->max_load());
    if (read_fanout_ != nullptr) {
        int fanout = 0;
        for (int load : plan->per_disk_loads()) fanout += load > 0 ? 1 : 0;
        read_fanout_->record(fanout);
    }
    return execute_plan(*plan, start, count, out);
}

Status StripeStore::execute_plan(const AccessPlan& plan, ElementId start, std::int64_t count, ByteSpan out) {
    // Fetch every planned element, batched per device — in parallel
    // across devices when a thread pool is attached (devices serialise
    // internally, so one batch per device is the natural unit, and it is
    // also the granularity the tracer reports: the request finishes when
    // the slowest batch does).
    std::map<Key, AlignedBuffer> fetched;
    for (const auto& access : plan.fetches()) {
        fetched.emplace(key_of(access.coord), AlignedBuffer(static_cast<std::size_t>(element_bytes_)));
    }
    const auto& fetches = plan.fetches();
    std::vector<std::vector<std::size_t>> batches(disks_.size());
    for (std::size_t i = 0; i < fetches.size(); ++i) {
        batches[static_cast<std::size_t>(fetches[i].loc.disk)].push_back(i);
    }
    std::vector<std::size_t> active;  // disks with a nonempty batch
    for (std::size_t d = 0; d < batches.size(); ++d) {
        if (!batches[d].empty()) active.push_back(d);
    }

    std::atomic<bool> fetch_failed{false};
    auto fetch_batch = [&](std::size_t a) {
        const std::size_t d = active[a];
        const double issue_us = tracer_ != nullptr ? tracer_->now_us() : 0.0;
        for (std::size_t i : batches[d]) {
            const auto& access = fetches[i];
            auto it = fetched.find(key_of(access.coord));
            auto status = disks_[d]->read(access.loc.row, it->second.span());
            if (!status.ok()) {
                fetch_failed.store(true);
                return;
            }
        }
        if (tracer_ != nullptr) {
            tracer_->complete("disk.batch", "io", issue_us, tracer_->now_us() - issue_us,
                              {{"disk", std::to_string(d)},
                               {"elements", std::to_string(batches[d].size())}});
        }
    };
    if (pool_ != nullptr && active.size() > 1) {
        parallel_for(*pool_, active.size(), fetch_batch);
    } else {
        for (std::size_t a = 0; a < active.size(); ++a) fetch_batch(a);
    }
    if (fetch_failed.load()) return Error::io("element fetch failed during plan execution");

    // Run the decode recipes to materialise failed elements.
    {
        obs::Span decode_span(tracer_, "store.decode", "store");
        decode_span.arg("decodes", static_cast<std::int64_t>(plan.decodes().size()));
        if (decodes_total_ != nullptr) decodes_total_->add(static_cast<std::int64_t>(plan.decodes().size()));
        for (const auto& decode : plan.decodes()) {
            AlignedBuffer target(static_cast<std::size_t>(element_bytes_));
            std::vector<ByteSpan> buffers(static_cast<std::size_t>(scheme_.code().n()));
            for (const auto& term : decode.repair.terms) {
                auto it = fetched.find({decode.stripe, decode.group, term.source_position});
                if (it == fetched.end()) return Error::internal("decode source missing from plan");
                buffers[static_cast<std::size_t>(term.source_position)] = it->second.span();
            }
            buffers[static_cast<std::size_t>(decode.repair.target_position)] = target.span();
            codes::DecodePlan one;
            one.repairs.push_back(decode.repair);
            codes::ErasureCode::apply_plan(one, buffers);
            fetched.emplace(Key{decode.stripe, decode.group, decode.repair.target_position},
                            std::move(target));
        }
    }

    // Assemble the user range in logical order.
    obs::Span assemble_span(tracer_, "store.assemble", "store");
    for (std::int64_t i = 0; i < count; ++i) {
        const GroupCoord coord = scheme_.layout().coord_of_data(start + i);
        auto it = fetched.find(key_of(coord));
        if (it == fetched.end()) return Error::internal("requested element missing after decode");
        std::memcpy(out.data() + static_cast<std::size_t>(i * element_bytes_), it->second.data(),
                    static_cast<std::size_t>(element_bytes_));
    }
    return Status::success();
}

Status StripeStore::fail_disk(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    disks_[static_cast<std::size_t>(disk)]->fail();
    return Status::success();
}

std::vector<DiskId> StripeStore::failed_disks() const {
    std::vector<DiskId> failed;
    for (int d = 0; d < scheme_.disks(); ++d) {
        if (disks_[static_cast<std::size_t>(d)]->failed()) failed.push_back(d);
    }
    return failed;
}

Result<ReconstructStats> StripeStore::reconstruct_disk(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    if (!disks_[static_cast<std::size_t>(disk)]->failed()) {
        return Error::invalid("disk is not failed; nothing to reconstruct");
    }

    obs::Span span(tracer_, "store.reconstruct", "store");
    span.arg("disk", static_cast<std::int64_t>(disk));

    std::vector<bool> disk_failed(static_cast<std::size_t>(scheme_.disks()), false);
    for (DiskId d : failed_disks()) disk_failed[static_cast<std::size_t>(d)] = true;

    disks_[static_cast<std::size_t>(disk)]->replace();
    const auto& code = scheme_.code();
    const RowId rows = scheme_.rows_for(stripes_);

    std::atomic<std::int64_t> rebuilt{0};
    std::atomic<std::int64_t> reads{0};
    std::atomic<bool> error_flag{false};

    auto rebuild_row = [&](RowId row) {
        if (error_flag.load()) return;
        const GroupCoord coord = scheme_.layout().coord_at({disk, row});
        std::vector<int> available;
        for (int p = 0; p < code.n(); ++p) {
            if (p == coord.position) continue;
            const Location ploc = scheme_.layout().locate({coord.stripe, coord.group, p});
            if (!disk_failed[static_cast<std::size_t>(ploc.disk)]) available.push_back(p);
        }
        auto repair = code.solve_repair(coord.position, available);
        if (!repair.ok()) {
            error_flag.store(true);
            return;
        }
        AlignedBuffer target(static_cast<std::size_t>(element_bytes_));
        std::vector<AlignedBuffer> srcs;
        std::vector<ByteSpan> buffers(static_cast<std::size_t>(code.n()));
        srcs.reserve(repair->terms.size());
        for (const auto& term : repair->terms) {
            const Location sloc = scheme_.layout().locate({coord.stripe, coord.group, term.source_position});
            srcs.emplace_back(static_cast<std::size_t>(element_bytes_));
            if (!disks_[static_cast<std::size_t>(sloc.disk)]->read(sloc.row, srcs.back().span()).ok()) {
                error_flag.store(true);
                return;
            }
            buffers[static_cast<std::size_t>(term.source_position)] = srcs.back().span();
        }
        reads.fetch_add(static_cast<std::int64_t>(repair->terms.size()));
        buffers[static_cast<std::size_t>(coord.position)] = target.span();
        codes::DecodePlan one;
        one.repairs.push_back(repair.value());
        codes::ErasureCode::apply_plan(one, buffers);
        if (!disks_[static_cast<std::size_t>(disk)]->write(row, target.span()).ok()) {
            error_flag.store(true);
            return;
        }
        rebuilt.fetch_add(1);
    };

    if (pool_ != nullptr && rows > 1) {
        parallel_for(*pool_, static_cast<std::size_t>(rows),
                     [&](std::size_t r) { rebuild_row(static_cast<RowId>(r)); });
    } else {
        for (RowId r = 0; r < rows; ++r) rebuild_row(r);
    }

    if (error_flag.load()) return Error::undecodable("reconstruction failed (too many concurrent failures?)");
    return ReconstructStats{rebuilt.load(), reads.load()};
}

Status StripeStore::corrupt_element(DiskId disk, RowId row, std::size_t byte_offset) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    return disks_[static_cast<std::size_t>(disk)]->corrupt_byte(row, byte_offset);
}

namespace {

/// True when the group's parity equations all hold for these buffers
/// (buffers[i] = payload of code position i).
bool group_consistent(const codes::ErasureCode& code, const std::vector<AlignedBuffer>& bufs,
                      std::int64_t element_bytes) {
    std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
    for (int j = 0; j < code.k(); ++j) data[static_cast<std::size_t>(j)] = bufs[static_cast<std::size_t>(j)].span();
    std::vector<AlignedBuffer> expect_bufs;
    std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
    for (int p = 0; p < code.m(); ++p) {
        expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes));
        expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
    }
    code.encode(data, expect);
    for (int p = 0; p < code.m(); ++p) {
        if (std::memcmp(expect_bufs[static_cast<std::size_t>(p)].data(),
                        bufs[static_cast<std::size_t>(code.k() + p)].data(),
                        static_cast<std::size_t>(element_bytes)) != 0) {
            return false;
        }
    }
    return true;
}

}  // namespace

Result<ScrubReport> StripeStore::scrub() {
    if (!failed_disks().empty()) return Error::disk_failed("scrub requires all disks online");
    const auto& code = scheme_.code();
    ScrubReport report;

    for (StripeId s = 0; s < stripes_; ++s) {
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            ++report.groups_scanned;

            std::vector<AlignedBuffer> bufs;
            bufs.reserve(static_cast<std::size_t>(code.n()));
            for (int p = 0; p < code.n(); ++p) {
                const Location loc = scheme_.layout().locate({s, g, p});
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                auto status = disks_[static_cast<std::size_t>(loc.disk)]->read(loc.row, bufs.back().span());
                if (!status.ok()) return status.error();
            }
            if (group_consistent(code, bufs, element_bytes_)) continue;
            ++report.groups_inconsistent;

            // Hypothesis test: rebuild each position from the other n-1
            // and accept the unique hypothesis that restores consistency.
            // (Unique for a single corruption because our codes have
            // element-level distance >= 3.)
            bool repaired = false;
            for (int z = 0; z < code.n() && !repaired; ++z) {
                std::vector<int> sources;
                for (int p = 0; p < code.n(); ++p) {
                    if (p != z) sources.push_back(p);
                }
                auto repair = code.solve_repair(z, sources);
                if (!repair.ok()) continue;

                std::vector<AlignedBuffer> trial = bufs;
                std::vector<ByteSpan> spans(static_cast<std::size_t>(code.n()));
                for (int p = 0; p < code.n(); ++p) spans[static_cast<std::size_t>(p)] = trial[static_cast<std::size_t>(p)].span();
                codes::DecodePlan one;
                one.repairs.push_back(repair.value());
                codes::ErasureCode::apply_plan(one, spans);

                if (!group_consistent(code, trial, element_bytes_)) continue;

                // Hypothesis accepted: persist the corrected element.
                const Location loc = scheme_.layout().locate({s, g, z});
                auto status = disks_[static_cast<std::size_t>(loc.disk)]->write(
                    loc.row, trial[static_cast<std::size_t>(z)].span());
                if (!status.ok()) return status.error();
                ++report.elements_repaired;
                repaired = true;
            }
            if (!repaired) ++report.unrecoverable_groups;
        }
    }
    return report;
}

Status StripeStore::verify_parity() {
    const auto& code = scheme_.code();
    for (StripeId s = 0; s < stripes_; ++s) {
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            std::vector<AlignedBuffer> bufs;
            bufs.reserve(static_cast<std::size_t>(code.n()));
            std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
            for (int p = 0; p < code.n(); ++p) {
                const Location loc = scheme_.layout().locate({s, g, p});
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                auto status = disks_[static_cast<std::size_t>(loc.disk)]->read(loc.row, bufs.back().span());
                if (!status.ok()) return status;
                if (p < code.k()) data[static_cast<std::size_t>(p)] = bufs.back().span();
            }
            std::vector<AlignedBuffer> expect_bufs;
            std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
            for (int p = 0; p < code.m(); ++p) {
                expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
            }
            code.encode(data, expect);
            for (int p = 0; p < code.m(); ++p) {
                const auto& stored = bufs[static_cast<std::size_t>(code.k() + p)];
                if (std::memcmp(stored.data(), expect_bufs[static_cast<std::size_t>(p)].data(),
                                static_cast<std::size_t>(element_bytes_)) != 0) {
                    return Error::internal("parity mismatch at stripe " + std::to_string(s) + " group " +
                                           std::to_string(g) + " parity " + std::to_string(p));
                }
            }
        }
    }
    return Status::success();
}

}  // namespace ecfrm::store
