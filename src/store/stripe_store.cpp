#include "store/stripe_store.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <tuple>

#include "common/aligned_buffer.h"
#include "gf/kernels.h"
#include "gf/region.h"

namespace ecfrm::store {

using core::AccessPlan;
using layout::GroupCoord;

namespace {
using Key = std::tuple<StripeId, int, int>;
Key key_of(const GroupCoord& c) { return {c.stripe, c.group, c.position}; }
}  // namespace

StripeStore::StripeStore(core::Scheme scheme, std::int64_t element_bytes, ThreadPool* pool)
    : scheme_(std::move(scheme)), element_bytes_(element_bytes), pool_(pool) {
    disks_.reserve(static_cast<std::size_t>(scheme_.disks()));
    for (int d = 0; d < scheme_.disks(); ++d) {
        disks_.push_back(std::make_unique<Disk>(element_bytes_));
    }
}

Result<std::unique_ptr<StripeStore>> StripeStore::open(core::Scheme scheme, std::int64_t element_bytes,
                                                       const DeviceFactory& factory, ThreadPool* pool) {
    auto store = std::unique_ptr<StripeStore>(new StripeStore(std::move(scheme), element_bytes, pool));
    store->disks_.clear();
    for (int d = 0; d < store->scheme_.disks(); ++d) {
        auto device = factory(d);
        if (!device.ok()) return device.error();
        if (device.value()->element_bytes() != element_bytes) {
            return Error::invalid("device " + std::to_string(d) + " has mismatched element size");
        }
        store->disks_.push_back(std::move(device).take());
    }
    return store;
}

void StripeStore::attach_observability(obs::MetricRegistry* metrics, obs::Tracer* tracer) {
    tracer_ = tracer;
    if (metrics == nullptr) {
        for (auto& disk : disks_) disk->attach_io_stats({});
        reads_total_ = nullptr;
        degraded_reads_total_ = nullptr;
        read_elements_total_ = nullptr;
        decodes_total_ = nullptr;
        retries_total_ = nullptr;
        timeouts_total_ = nullptr;
        replans_total_ = nullptr;
        hedged_reads_total_ = nullptr;
        read_fanout_ = nullptr;
        read_max_load_ = nullptr;
        return;
    }
    for (int d = 0; d < scheme_.disks(); ++d) {
        disks_[static_cast<std::size_t>(d)]->attach_io_stats(metrics->disk_io_stats(d));
    }
    reads_total_ = &metrics->counter("ecfrm_store_reads_total");
    degraded_reads_total_ = &metrics->counter("ecfrm_store_degraded_reads_total");
    read_elements_total_ = &metrics->counter("ecfrm_store_read_elements_total");
    decodes_total_ = &metrics->counter("ecfrm_store_decodes_total");
    retries_total_ = &metrics->counter("ecfrm_store_retries_total");
    timeouts_total_ = &metrics->counter("ecfrm_store_timeouts_total");
    replans_total_ = &metrics->counter("ecfrm_store_replans_total");
    hedged_reads_total_ = &metrics->counter("ecfrm_store_hedged_reads_total");
    read_fanout_ = &metrics->histogram("ecfrm_store_read_fanout_disks");
    read_max_load_ = &metrics->histogram("ecfrm_store_read_max_disk_load");
}

Status StripeStore::device_read(DiskId disk, RowId row, ByteSpan out) {
    const bool timed = recovery_.op_timeout_ms > 0.0;
    for (int attempt = 0;; ++attempt) {
        const auto t0 = timed ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
        Status status = disks_[static_cast<std::size_t>(disk)]->read(row, out);
        if (timed) {
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
            if (status.ok() && elapsed_ms > recovery_.op_timeout_ms) {
                // Too slow to trust: discard the payload and route around
                // the device rather than retrying into the same stall.
                if (timeouts_total_ != nullptr) timeouts_total_->add(1);
                return Error::timeout("disk " + std::to_string(disk) + " read exceeded " +
                                      std::to_string(recovery_.op_timeout_ms) + " ms deadline");
            }
        }
        if (status.ok()) return status;
        if (status.error().code != Error::Code::io_error || attempt >= recovery_.max_retries) {
            return status;
        }
        if (retries_total_ != nullptr) retries_total_->add(1);
        if (recovery_.backoff_ms > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                recovery_.backoff_ms * static_cast<double>(1 << attempt)));
        }
    }
}

Status StripeStore::device_write(DiskId disk, RowId row, ConstByteSpan data) {
    for (int attempt = 0;; ++attempt) {
        Status status = disks_[static_cast<std::size_t>(disk)]->write(row, data);
        if (status.ok()) return status;
        if (status.error().code != Error::Code::io_error || attempt >= recovery_.max_retries) {
            return status;
        }
        if (retries_total_ != nullptr) retries_total_->add(1);
        if (recovery_.backoff_ms > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                recovery_.backoff_ms * static_cast<double>(1 << attempt)));
        }
    }
}

Status StripeStore::restore(std::vector<Extent> extents, StripeId stripes) {
    if (stripes < 0) return Error::invalid("negative stripe count");
    if (!pending_.empty()) return Error::invalid("restore on a store with buffered writes");
    const std::int64_t capacity_elems = stripes * scheme_.layout().data_per_stripe();

    std::int64_t logical = 0;
    ElementId min_element = 0;
    for (const auto& e : extents) {
        if (e.logical_start != logical || e.bytes < 0 || e.element_start < min_element) {
            return Error::invalid("extents must be non-negative, logically contiguous and non-overlapping");
        }
        const std::int64_t elems = (e.bytes + element_bytes_ - 1) / element_bytes_;
        if (e.element_start + elems > capacity_elems) {
            return Error::invalid("extent exceeds stripe capacity");
        }
        logical += e.bytes;
        min_element = e.element_start + elems;
    }
    extents_ = std::move(extents);
    logical_bytes_ = logical;
    stripes_ = stripes;
    return Status::success();
}

Status StripeStore::restore(std::int64_t logical_bytes, StripeId stripes) {
    if (logical_bytes < 0) return Error::invalid("negative restore state");
    std::vector<Extent> extents;
    if (logical_bytes > 0) extents.push_back({0, 0, logical_bytes});
    return restore(std::move(extents), stripes);
}

Status StripeStore::append(ConstByteSpan data) {
    const std::int64_t stripe_bytes = scheme_.layout().data_per_stripe() * element_bytes_;
    pending_.insert(pending_.end(), data.begin(), data.end());
    logical_bytes_ += static_cast<std::int64_t>(data.size());
    while (static_cast<std::int64_t>(pending_.size()) >= stripe_bytes) {
        auto status = commit_stripe(ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)),
                                    stripe_bytes);
        if (!status.ok()) return status;
        pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(stripe_bytes));
    }
    return Status::success();
}

Status StripeStore::flush() {
    if (pending_.empty()) return Status::success();
    const std::int64_t stripe_bytes = scheme_.layout().data_per_stripe() * element_bytes_;
    const auto user_bytes = static_cast<std::int64_t>(pending_.size());
    pending_.resize(static_cast<std::size_t>(stripe_bytes), 0);
    auto status = commit_stripe(ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)),
                                user_bytes);
    if (!status.ok()) return status;
    pending_.clear();
    return Status::success();
}

Status StripeStore::commit_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes) {
    auto status = encode_stripe(stripes_, stripe_data);
    if (!status.ok()) return status;
    const ElementId first = stripes_ * scheme_.layout().data_per_stripe();
    // Extend the previous extent when it ends exactly on this stripe's
    // first element (no padding gap in between).
    bool extended = false;
    if (!extents_.empty()) {
        Extent& last = extents_.back();
        if (last.bytes % element_bytes_ == 0 &&
            last.element_start + last.bytes / element_bytes_ == first) {
            last.bytes += user_bytes;
            extended = true;
        }
    }
    if (!extended) extents_.push_back({committed_bytes(), first, user_bytes});
    ++stripes_;
    return Status::success();
}

Status StripeStore::encode_stripe(StripeId stripe, ConstByteSpan stripe_data) {
    const int groups = scheme_.layout().groups_per_stripe();
    if (pool_ != nullptr && groups > 1) {
        std::atomic<bool> failed{false};
        parallel_for(*pool_, static_cast<std::size_t>(groups), [&](std::size_t g) {
            if (!encode_group(stripe, static_cast<int>(g), stripe_data).ok()) failed.store(true);
        });
        if (failed.load()) return Error::io("group encode failed");
        return Status::success();
    }
    for (int g = 0; g < groups; ++g) {
        auto status = encode_group(stripe, g, stripe_data);
        if (!status.ok()) return status;
    }
    return Status::success();
}

Status StripeStore::encode_group(StripeId stripe, int group, ConstByteSpan stripe_data) {
    const auto& code = scheme_.code();
    const int k = code.k();
    const int m = code.m();

    // A write to a failed device is skipped (degraded write): the element
    // stays recoverable through the group's parity, and reconstruction
    // restores it onto the replacement device.
    auto write_slot = [&](const Location& loc, ConstByteSpan payload) -> Status {
        auto status = device_write(loc.disk, loc.row, payload);
        if (!status.ok() && status.error().code == Error::Code::disk_failed) return Status::success();
        return status;
    };

    // Gather the group's k data elements from the stripe buffer and write
    // them to their home slots.
    std::vector<ConstByteSpan> data(static_cast<std::size_t>(k));
    for (int t = 0; t < k; ++t) {
        const std::int64_t idx = static_cast<std::int64_t>(group) * k + t;
        data[static_cast<std::size_t>(t)] =
            stripe_data.subspan(static_cast<std::size_t>(idx * element_bytes_),
                                static_cast<std::size_t>(element_bytes_));
        const Location loc = scheme_.layout().locate({stripe, group, t});
        auto status = write_slot(loc, data[static_cast<std::size_t>(t)]);
        if (!status.ok()) return status;
    }

    // Compute and place the parities.
    std::vector<AlignedBuffer> parity_bufs;
    parity_bufs.reserve(static_cast<std::size_t>(m));
    std::vector<ByteSpan> parity(static_cast<std::size_t>(m));
    for (int p = 0; p < m; ++p) {
        parity_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
        parity[static_cast<std::size_t>(p)] = parity_bufs.back().span();
    }
    code.encode(data, parity, pool_);
    for (int p = 0; p < m; ++p) {
        const Location loc = scheme_.layout().locate({stripe, group, code.k() + p});
        auto status = write_slot(loc, parity[static_cast<std::size_t>(p)]);
        if (!status.ok()) return status;
    }
    return Status::success();
}

Status StripeStore::overwrite(std::int64_t offset, ConstByteSpan data) {
    const auto length = static_cast<std::int64_t>(data.size());
    if (offset < 0) return Error::range("negative offset");
    if (offset + length > committed_bytes()) {
        return Error::range("overwrite must stay within committed bytes");
    }
    if (length == 0) return Status::success();
    const auto& code = scheme_.code();
    const auto& gen = code.generator();

    std::int64_t consumed = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        for (std::int64_t pos = lo; pos < hi;) {
            const ElementId elem = e.element_start + pos / element_bytes_;
            const std::int64_t in_elem = pos % element_bytes_;
            const std::int64_t chunk = std::min(element_bytes_ - in_elem, hi - pos);

            const GroupCoord coord = scheme_.layout().coord_of_data(elem);
            const Location loc = scheme_.layout().locate(coord);

            // Read-modify-write the data element.
            AlignedBuffer old_payload(static_cast<std::size_t>(element_bytes_));
            auto status = device_read(loc.disk, loc.row, old_payload.span());
            if (!status.ok()) return status;
            AlignedBuffer new_payload = old_payload;
            std::memcpy(new_payload.data() + in_elem, data.data() + consumed,
                        static_cast<std::size_t>(chunk));
            status = device_write(loc.disk, loc.row, new_payload.span());
            if (!status.ok()) return status;

            // delta = old ^ new; every parity folds in coeff * delta.
            AlignedBuffer delta = std::move(old_payload);
            gf::xor_region(delta.span(), new_payload.span());
            for (int p = code.k(); p < code.n(); ++p) {
                const std::uint8_t coeff = gen.at(p, coord.position);
                if (coeff == 0) continue;
                const Location ploc = scheme_.layout().locate({coord.stripe, coord.group, p});
                AlignedBuffer parity(static_cast<std::size_t>(element_bytes_));
                status = device_read(ploc.disk, ploc.row, parity.span());
                if (!status.ok()) return status;
                gf::addmul_region(parity.span(), delta.span(), coeff);
                status = device_write(ploc.disk, ploc.row, parity.span());
                if (!status.ok()) return status;
            }

            pos += chunk;
            consumed += chunk;
        }
    }
    if (consumed != length) return Error::internal("overwrite extent walk consumed wrong byte count");
    return Status::success();
}

Result<std::vector<std::uint8_t>> StripeStore::read_bytes(std::int64_t offset, std::int64_t length) {
    if (offset < 0 || length < 0) return Error::range("negative read range");
    if (offset + length > committed_bytes()) {
        if (offset + length <= logical_bytes_) {
            return Error::invalid("range still buffered; call flush() before reading");
        }
        return Error::range("read beyond logical size");
    }
    std::vector<std::uint8_t> out(static_cast<std::size_t>(length));
    if (length == 0) return out;

    // Walk the committed extents overlapping [offset, offset + length).
    std::int64_t produced = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        const ElementId first = e.element_start + lo / element_bytes_;
        const ElementId last = e.element_start + (hi - 1) / element_bytes_;
        const std::int64_t count = last - first + 1;

        std::vector<std::uint8_t> elems(static_cast<std::size_t>(count * element_bytes_));
        auto status = read_elements(first, count, ByteSpan(elems.data(), elems.size()));
        if (!status.ok()) return status.error();

        const std::int64_t skip = lo - (first - e.element_start) * element_bytes_;
        std::memcpy(out.data() + produced, elems.data() + skip, static_cast<std::size_t>(hi - lo));
        produced += hi - lo;
    }
    if (produced != length) return Error::internal("extent walk produced wrong byte count");
    return out;
}

Status StripeStore::read_elements(ElementId start, std::int64_t count, ByteSpan out) {
    if (start < 0 || count < 0 || start + count > stored_data_elements()) {
        return Error::range("element range beyond stored data");
    }
    if (static_cast<std::int64_t>(out.size()) != count * element_bytes_) {
        return Error::invalid("output buffer size mismatch");
    }
    if (count == 0) return Status::success();

    obs::Span read_span(tracer_, "store.read_elements", "store");
    read_span.arg("start", start);
    read_span.arg("count", count);
    if (reads_total_ != nullptr) reads_total_->add(1);
    if (read_elements_total_ != nullptr) read_elements_total_->add(count);

    return execute_read(start, count, out, failed_disks());
}

/// One fetch round's outcome: which disks newly misbehaved and the most
/// recent typed error, so the replan loop can route around them (or give
/// up with the right diagnosis).
struct StripeStore::FetchOutcome {
    bool complete = true;
    std::vector<DiskId> bad_disks;
    std::optional<Error> last_error;
};

Status StripeStore::execute_read(ElementId start, std::int64_t count, ByteSpan out,
                                 std::vector<DiskId> excluded) {
    // Plan against the current exclusion set; a pattern the code cannot
    // decode is the read path's terminal "beyond tolerance" diagnosis.
    auto make_plan = [&](const std::vector<DiskId>& excl) -> Result<AccessPlan> {
        if (excl.empty()) return core::plan_normal_read(scheme_, start, count);
        if (degraded_reads_total_ != nullptr) degraded_reads_total_->add(1);
        auto degraded = core::plan_degraded_read(scheme_, start, count, excl);
        if (!degraded.ok()) {
            if (degraded.error().code == Error::Code::undecodable) {
                return Error::beyond_tolerance(
                    "read cannot be planned around " + std::to_string(excl.size()) +
                    " unavailable disks: " + degraded.error().message);
            }
            return degraded.error();
        }
        return degraded;
    };

    std::optional<AccessPlan> plan;
    {
        obs::Span plan_span(tracer_, "store.plan", "store");
        auto first = make_plan(excluded);
        if (!first.ok()) return first.error();
        plan.emplace(std::move(first).take());
        plan_span.arg("fetches", plan->total_fetched());
        plan_span.arg("max_load", static_cast<std::int64_t>(plan->max_load()));
    }
    // Load-shape histograms describe the intended plan (first round); the
    // recovery rounds below are accounted by the retry/replan counters.
    if (read_max_load_ != nullptr) read_max_load_->record(plan->max_load());
    if (read_fanout_ != nullptr) {
        int fanout = 0;
        for (int load : plan->per_disk_loads()) fanout += load > 0 ? 1 : 0;
        read_fanout_->record(fanout);
    }

    // Elements fetched (or hedge-decoded) so far, kept across replan
    // rounds so recovery never re-reads what it already holds.
    std::map<Key, AlignedBuffer> fetched;

    // Decode one element directly from alive source disks into `target`,
    // bypassing the in-flight batch machinery — the hedge path for
    // elements stuck behind a straggling disk. `avoid` marks disks that
    // must not be touched (stragglers and excluded disks).
    auto hedge_fetch = [&](const GroupCoord& coord, const std::vector<char>& avoid,
                           AlignedBuffer& target) -> bool {
        const auto& code = scheme_.code();
        std::vector<int> sources;
        for (int p = 0; p < code.n(); ++p) {
            if (p == coord.position) continue;
            const Location sloc = scheme_.layout().locate({coord.stripe, coord.group, p});
            if (!avoid[static_cast<std::size_t>(sloc.disk)]) sources.push_back(p);
        }
        auto repair = code.solve_repair(coord.position, sources);
        if (!repair.ok()) return false;
        std::vector<AlignedBuffer> srcs;
        std::vector<ByteSpan> buffers(static_cast<std::size_t>(code.n()));
        srcs.reserve(repair->terms.size());
        for (const auto& term : repair->terms) {
            const Location sloc =
                scheme_.layout().locate({coord.stripe, coord.group, term.source_position});
            srcs.emplace_back(static_cast<std::size_t>(element_bytes_));
            if (!disks_[static_cast<std::size_t>(sloc.disk)]->read(sloc.row, srcs.back().span()).ok()) {
                return false;
            }
            buffers[static_cast<std::size_t>(term.source_position)] = srcs.back().span();
        }
        buffers[static_cast<std::size_t>(coord.position)] = target.span();
        codes::DecodePlan one;
        one.repairs.push_back(repair.value());
        codes::ErasureCode::apply_plan(one, buffers);
        return true;
    };

    // Fetch everything the plan wants that we don't already hold, batched
    // per device — in parallel across devices when a thread pool is
    // attached (devices serialise internally, so one batch per device is
    // the natural unit, and it is also the granularity the tracer
    // reports: the request finishes when the slowest batch does).
    auto fetch_round = [&](const AccessPlan& p) -> FetchOutcome {
        FetchOutcome outcome;
        const auto& fetches = p.fetches();
        std::vector<std::size_t> pending;
        for (std::size_t i = 0; i < fetches.size(); ++i) {
            if (fetched.find(key_of(fetches[i].coord)) == fetched.end()) pending.push_back(i);
        }
        if (pending.empty()) return outcome;

        // Per-element buffers for this round; each belongs to exactly one
        // batch, so batch workers never share a buffer.
        std::map<Key, AlignedBuffer> round;
        for (std::size_t i : pending) {
            round.emplace(key_of(fetches[i].coord),
                          AlignedBuffer(static_cast<std::size_t>(element_bytes_)));
        }
        std::vector<std::vector<std::size_t>> batches(disks_.size());
        for (std::size_t i : pending) {
            batches[static_cast<std::size_t>(fetches[i].loc.disk)].push_back(i);
        }
        std::vector<std::size_t> active;  // disks with a nonempty batch
        for (std::size_t d = 0; d < batches.size(); ++d) {
            if (!batches[d].empty()) active.push_back(d);
        }

        std::mutex state_mu;
        std::set<Key> succeeded;          // guarded by state_mu
        std::vector<DiskId> bad;          // guarded by state_mu
        std::optional<Error> last_error;  // guarded by state_mu

        auto fetch_batch = [&](std::size_t a) {
            const std::size_t d = active[a];
            const double issue_us = tracer_ != nullptr ? tracer_->now_us() : 0.0;
            for (std::size_t i : batches[d]) {
                const auto& access = fetches[i];
                const Key key = key_of(access.coord);
                auto it = round.find(key);
                auto status = device_read(static_cast<DiskId>(d), access.loc.row, it->second.span());
                std::lock_guard<std::mutex> lock(state_mu);
                if (status.ok()) {
                    succeeded.insert(key);
                } else {
                    // The device is suspect: abandon its remaining batch
                    // and let the replan route around it.
                    bad.push_back(static_cast<DiskId>(d));
                    last_error = status.error();
                    return;
                }
            }
            if (tracer_ != nullptr) {
                tracer_->complete("disk.batch", "io", issue_us, tracer_->now_us() - issue_us,
                                  {{"disk", std::to_string(d)},
                                   {"elements", std::to_string(batches[d].size())}});
            }
        };

        std::map<Key, AlignedBuffer> hedged;
        if (pool_ != nullptr && recovery_.hedge_ms > 0.0 && !active.empty()) {
            // Hedged execution: dispatch the batches, and when the slowest
            // one is still running past the hedge deadline, decode its
            // elements from the other disks instead of waiting on it. All
            // batches are still joined before returning (their buffers are
            // referenced from this frame).
            std::mutex done_mu;
            std::condition_variable done_cv;
            std::size_t done = 0;
            std::vector<char> batch_done(active.size(), 0);
            for (std::size_t a = 0; a < active.size(); ++a) {
                pool_->submit([&, a] {
                    fetch_batch(a);
                    // Notify under the mutex: the waiter may destroy the cv
                    // the moment its predicate holds, so the notify must not
                    // touch the cv after releasing the lock.
                    std::lock_guard<std::mutex> lock(done_mu);
                    batch_done[a] = 1;
                    ++done;
                    done_cv.notify_all();
                });
            }
            std::unique_lock<std::mutex> lock(done_mu);
            const bool all_done =
                done_cv.wait_for(lock, std::chrono::duration<double, std::milli>(recovery_.hedge_ms),
                                 [&] { return done == active.size(); });
            if (!all_done) {
                std::vector<char> avoid(disks_.size(), 0);
                std::vector<std::size_t> stragglers;
                for (std::size_t a = 0; a < active.size(); ++a) {
                    if (!batch_done[a]) {
                        avoid[active[a]] = 1;
                        stragglers.push_back(a);
                    }
                }
                lock.unlock();
                for (DiskId d : excluded) avoid[static_cast<std::size_t>(d)] = 1;
                for (std::size_t a : stragglers) {
                    for (std::size_t i : batches[active[a]]) {
                        const Key key = key_of(fetches[i].coord);
                        {
                            std::lock_guard<std::mutex> state_lock(state_mu);
                            if (succeeded.count(key) != 0) continue;
                        }
                        if (hedged_reads_total_ != nullptr) hedged_reads_total_->add(1);
                        AlignedBuffer target(static_cast<std::size_t>(element_bytes_));
                        if (hedge_fetch(fetches[i].coord, avoid, target)) {
                            hedged.emplace(key, std::move(target));
                        }
                    }
                }
                lock.lock();
                done_cv.wait(lock, [&] { return done == active.size(); });
            }
        } else if (pool_ != nullptr && active.size() > 1) {
            parallel_for(*pool_, active.size(), fetch_batch);
        } else {
            for (std::size_t a = 0; a < active.size(); ++a) fetch_batch(a);
        }

        for (const Key& key : succeeded) {
            auto it = round.find(key);
            fetched.emplace(key, std::move(it->second));
        }
        for (auto& [key, buf] : hedged) {
            if (fetched.find(key) == fetched.end()) fetched.emplace(key, std::move(buf));
        }
        for (std::size_t i : pending) {
            if (fetched.find(key_of(fetches[i].coord)) == fetched.end()) {
                outcome.complete = false;
                break;
            }
        }
        outcome.bad_disks = std::move(bad);
        outcome.last_error = std::move(last_error);
        return outcome;
    };

    // Replan loop: fetch, and when a disk misbehaves mid-flight, exclude
    // it and re-plan the remaining elements around it — reusing every
    // element already in hand.
    std::optional<Error> last_error;
    for (int round = 0;; ++round) {
        FetchOutcome outcome = fetch_round(*plan);
        if (outcome.last_error.has_value()) last_error = outcome.last_error;
        if (outcome.complete) break;
        bool grew = false;
        for (DiskId d : outcome.bad_disks) {
            if (std::find(excluded.begin(), excluded.end(), d) == excluded.end()) {
                excluded.push_back(d);
                grew = true;
            }
        }
        if (!grew || round >= recovery_.max_replans) {
            if (last_error.has_value()) return *last_error;
            return Error::io("element fetch failed during plan execution");
        }
        auto next = make_plan(excluded);
        if (!next.ok()) return next.error();
        if (replans_total_ != nullptr) replans_total_->add(1);
        plan.emplace(std::move(next).take());
    }
    const AccessPlan& final_plan = *plan;

    // Run the decode recipes to materialise failed elements.
    {
        obs::Span decode_span(tracer_, "store.decode", "store");
        decode_span.arg("decodes", static_cast<std::int64_t>(final_plan.decodes().size()));
        if (decodes_total_ != nullptr) {
            decodes_total_->add(static_cast<std::int64_t>(final_plan.decodes().size()));
        }
        for (const auto& decode : final_plan.decodes()) {
            AlignedBuffer target(static_cast<std::size_t>(element_bytes_));
            std::vector<ByteSpan> buffers(static_cast<std::size_t>(scheme_.code().n()));
            for (const auto& term : decode.repair.terms) {
                auto it = fetched.find({decode.stripe, decode.group, term.source_position});
                if (it == fetched.end()) return Error::internal("decode source missing from plan");
                buffers[static_cast<std::size_t>(term.source_position)] = it->second.span();
            }
            buffers[static_cast<std::size_t>(decode.repair.target_position)] = target.span();
            codes::DecodePlan one;
            one.repairs.push_back(decode.repair);
            codes::ErasureCode::apply_plan(one, buffers, pool_);
            fetched.emplace(Key{decode.stripe, decode.group, decode.repair.target_position},
                            std::move(target));
        }
    }

    // Assemble the user range in logical order.
    obs::Span assemble_span(tracer_, "store.assemble", "store");
    for (std::int64_t i = 0; i < count; ++i) {
        const GroupCoord coord = scheme_.layout().coord_of_data(start + i);
        auto it = fetched.find(key_of(coord));
        if (it == fetched.end()) return Error::internal("requested element missing after decode");
        std::memcpy(out.data() + static_cast<std::size_t>(i * element_bytes_), it->second.data(),
                    static_cast<std::size_t>(element_bytes_));
    }
    return Status::success();
}

Status StripeStore::fail_disk(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    disks_[static_cast<std::size_t>(disk)]->fail();
    return Status::success();
}

std::vector<DiskId> StripeStore::failed_disks() const {
    std::vector<DiskId> failed;
    for (int d = 0; d < scheme_.disks(); ++d) {
        if (disks_[static_cast<std::size_t>(d)]->failed()) failed.push_back(d);
    }
    return failed;
}

Result<ReconstructStats> StripeStore::reconstruct_disk(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    if (!disks_[static_cast<std::size_t>(disk)]->failed()) {
        return Error::invalid("disk is not failed; nothing to reconstruct");
    }

    obs::Span span(tracer_, "store.reconstruct", "store");
    span.arg("disk", static_cast<std::int64_t>(disk));

    std::vector<bool> disk_failed(static_cast<std::size_t>(scheme_.disks()), false);
    for (DiskId d : failed_disks()) disk_failed[static_cast<std::size_t>(d)] = true;

    disks_[static_cast<std::size_t>(disk)]->replace();
    const auto& code = scheme_.code();
    const RowId rows = scheme_.rows_for(stripes_);

    std::atomic<std::int64_t> rebuilt{0};
    std::atomic<std::int64_t> reads{0};
    std::atomic<bool> error_flag{false};

    auto rebuild_row = [&](RowId row) {
        if (error_flag.load()) return;
        const GroupCoord coord = scheme_.layout().coord_at({disk, row});
        std::vector<int> available;
        for (int p = 0; p < code.n(); ++p) {
            if (p == coord.position) continue;
            const Location ploc = scheme_.layout().locate({coord.stripe, coord.group, p});
            if (!disk_failed[static_cast<std::size_t>(ploc.disk)]) available.push_back(p);
        }
        auto repair = code.solve_repair(coord.position, available);
        if (!repair.ok()) {
            error_flag.store(true);
            return;
        }
        AlignedBuffer target(static_cast<std::size_t>(element_bytes_));
        std::vector<AlignedBuffer> srcs;
        std::vector<ByteSpan> buffers(static_cast<std::size_t>(code.n()));
        srcs.reserve(repair->terms.size());
        for (const auto& term : repair->terms) {
            const Location sloc = scheme_.layout().locate({coord.stripe, coord.group, term.source_position});
            srcs.emplace_back(static_cast<std::size_t>(element_bytes_));
            if (!device_read(sloc.disk, sloc.row, srcs.back().span()).ok()) {
                error_flag.store(true);
                return;
            }
            buffers[static_cast<std::size_t>(term.source_position)] = srcs.back().span();
        }
        reads.fetch_add(static_cast<std::int64_t>(repair->terms.size()));
        buffers[static_cast<std::size_t>(coord.position)] = target.span();
        codes::DecodePlan one;
        one.repairs.push_back(repair.value());
        codes::ErasureCode::apply_plan(one, buffers);
        if (!device_write(disk, row, target.span()).ok()) {
            error_flag.store(true);
            return;
        }
        rebuilt.fetch_add(1);
    };

    if (pool_ != nullptr && rows > 1) {
        parallel_for(*pool_, static_cast<std::size_t>(rows),
                     [&](std::size_t r) { rebuild_row(static_cast<RowId>(r)); });
    } else {
        for (RowId r = 0; r < rows; ++r) rebuild_row(r);
    }

    if (error_flag.load()) return Error::undecodable("reconstruction failed (too many concurrent failures?)");
    return ReconstructStats{rebuilt.load(), reads.load()};
}

Status StripeStore::corrupt_element(DiskId disk, RowId row, std::size_t byte_offset) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    return disks_[static_cast<std::size_t>(disk)]->corrupt_byte(row, byte_offset);
}

namespace {

/// True when the group's parity equations all hold for these buffers
/// (buffers[i] = payload of code position i).
bool group_consistent(const codes::ErasureCode& code, const std::vector<AlignedBuffer>& bufs,
                      std::int64_t element_bytes) {
    std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
    for (int j = 0; j < code.k(); ++j) data[static_cast<std::size_t>(j)] = bufs[static_cast<std::size_t>(j)].span();
    std::vector<AlignedBuffer> expect_bufs;
    std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
    for (int p = 0; p < code.m(); ++p) {
        expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes));
        expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
    }
    code.encode(data, expect);
    for (int p = 0; p < code.m(); ++p) {
        if (std::memcmp(expect_bufs[static_cast<std::size_t>(p)].data(),
                        bufs[static_cast<std::size_t>(code.k() + p)].data(),
                        static_cast<std::size_t>(element_bytes)) != 0) {
            return false;
        }
    }
    return true;
}

}  // namespace

Result<ScrubReport> StripeStore::scrub() {
    if (!failed_disks().empty()) return Error::disk_failed("scrub requires all disks online");
    const auto& code = scheme_.code();
    ScrubReport report;

    for (StripeId s = 0; s < stripes_; ++s) {
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            ++report.groups_scanned;

            std::vector<AlignedBuffer> bufs;
            bufs.reserve(static_cast<std::size_t>(code.n()));
            for (int p = 0; p < code.n(); ++p) {
                const Location loc = scheme_.layout().locate({s, g, p});
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                auto status = disks_[static_cast<std::size_t>(loc.disk)]->read(loc.row, bufs.back().span());
                if (!status.ok()) return status.error();
            }
            if (group_consistent(code, bufs, element_bytes_)) continue;
            ++report.groups_inconsistent;

            // Hypothesis test: rebuild each position from the other n-1
            // and accept the unique hypothesis that restores consistency.
            // (Unique for a single corruption because our codes have
            // element-level distance >= 3.)
            bool repaired = false;
            for (int z = 0; z < code.n() && !repaired; ++z) {
                std::vector<int> sources;
                for (int p = 0; p < code.n(); ++p) {
                    if (p != z) sources.push_back(p);
                }
                auto repair = code.solve_repair(z, sources);
                if (!repair.ok()) continue;

                std::vector<AlignedBuffer> trial = bufs;
                std::vector<ByteSpan> spans(static_cast<std::size_t>(code.n()));
                for (int p = 0; p < code.n(); ++p) spans[static_cast<std::size_t>(p)] = trial[static_cast<std::size_t>(p)].span();
                codes::DecodePlan one;
                one.repairs.push_back(repair.value());
                codes::ErasureCode::apply_plan(one, spans);

                if (!group_consistent(code, trial, element_bytes_)) continue;

                // Hypothesis accepted: persist the corrected element.
                const Location loc = scheme_.layout().locate({s, g, z});
                auto status = disks_[static_cast<std::size_t>(loc.disk)]->write(
                    loc.row, trial[static_cast<std::size_t>(z)].span());
                if (!status.ok()) return status.error();
                ++report.elements_repaired;
                repaired = true;
            }
            if (!repaired) ++report.unrecoverable_groups;
        }
    }
    return report;
}

Status StripeStore::verify_parity() {
    const auto& code = scheme_.code();
    for (StripeId s = 0; s < stripes_; ++s) {
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            std::vector<AlignedBuffer> bufs;
            bufs.reserve(static_cast<std::size_t>(code.n()));
            std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
            for (int p = 0; p < code.n(); ++p) {
                const Location loc = scheme_.layout().locate({s, g, p});
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                auto status = disks_[static_cast<std::size_t>(loc.disk)]->read(loc.row, bufs.back().span());
                if (!status.ok()) return status;
                if (p < code.k()) data[static_cast<std::size_t>(p)] = bufs.back().span();
            }
            std::vector<AlignedBuffer> expect_bufs;
            std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
            for (int p = 0; p < code.m(); ++p) {
                expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
            }
            code.encode(data, expect);
            for (int p = 0; p < code.m(); ++p) {
                const auto& stored = bufs[static_cast<std::size_t>(code.k() + p)];
                if (std::memcmp(stored.data(), expect_bufs[static_cast<std::size_t>(p)].data(),
                                static_cast<std::size_t>(element_bytes_)) != 0) {
                    return Error::internal("parity mismatch at stripe " + std::to_string(s) + " group " +
                                           std::to_string(g) + " parity " + std::to_string(p));
                }
            }
        }
    }
    return Status::success();
}

}  // namespace ecfrm::store
