#include "store/stripe_store.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <optional>
#include <utility>

#include "common/aligned_buffer.h"
#include "gf/kernels.h"
#include "gf/region.h"
#include "store/io_backend.h"

namespace ecfrm::store {

using core::AccessPlan;
using core::WritePlan;
using layout::GroupCoord;

StripeStore::StripeStore(core::Scheme scheme, std::int64_t element_bytes, ThreadPool* pool)
    : scheme_(std::move(scheme)),
      element_bytes_(element_bytes),
      pool_(pool),
      executor_(&scheme_, element_bytes, pool) {
    disks_.reserve(static_cast<std::size_t>(scheme_.disks()));
    for (int d = 0; d < scheme_.disks(); ++d) {
        disks_.push_back(std::make_unique<Disk>(element_bytes_));
    }
    rebuilding_.assign(static_cast<std::size_t>(scheme_.disks()), 0);
    bind_executor();
}

Result<std::unique_ptr<StripeStore>> StripeStore::open(core::Scheme scheme, std::int64_t element_bytes,
                                                       const DeviceFactory& factory, ThreadPool* pool) {
    auto store = std::unique_ptr<StripeStore>(new StripeStore(std::move(scheme), element_bytes, pool));
    store->disks_.clear();
    for (int d = 0; d < store->scheme_.disks(); ++d) {
        auto device = factory(d);
        if (!device.ok()) return device.error();
        if (device.value()->element_bytes() != element_bytes) {
            return Error::invalid("device " + std::to_string(d) + " has mismatched element size");
        }
        store->disks_.push_back(std::move(device).take());
    }
    store->bind_executor();
    return store;
}

void StripeStore::bind_executor() {
    std::vector<BlockDevice*> devices;
    devices.reserve(disks_.size());
    for (auto& disk : disks_) devices.push_back(disk.get());
    executor_.bind(std::move(devices));
    // Staging buffers come from the process-lifetime element arena: when
    // the devices are uring-backed the same arena is registered with
    // their rings, so staged reads are READ_FIXED-eligible, and orphaned
    // hedge queues can hold arena buffers past this store's lifetime.
    executor_.set_buffer_pool(element_arena(element_bytes_));
}

void StripeStore::attach_observability(obs::MetricRegistry* metrics, obs::Tracer* tracer,
                                       obs::RequestForensics* forensics,
                                       obs::DiskHeatModel* heat) {
    StoreObs fresh;
    exec::ExecutorMetrics exec_metrics;
    fresh.tracer = tracer;
    fresh.forensics = forensics;
    fresh.heat = heat;
    if (metrics == nullptr) {
        for (auto& disk : disks_) disk->attach_io_stats({});
    } else {
        for (int d = 0; d < scheme_.disks(); ++d) {
            disks_[static_cast<std::size_t>(d)]->attach_io_stats(metrics->disk_io_stats(d));
        }
        fresh.reads_total = &metrics->counter("ecfrm_store_reads_total");
        fresh.degraded_reads_total = &metrics->counter("ecfrm_store_degraded_reads_total");
        fresh.read_elements_total = &metrics->counter("ecfrm_store_read_elements_total");
        fresh.writes_total = &metrics->counter("ecfrm_store_writes_total");
        fresh.overwrites_total = &metrics->counter("ecfrm_store_overwrites_total");
        fresh.read_fanout = &metrics->histogram("ecfrm_store_read_fanout_disks");
        fresh.read_max_load = &metrics->histogram("ecfrm_store_read_max_disk_load");
        fresh.write_max_load = &metrics->histogram("ecfrm_store_write_max_disk_load");
        exec_metrics.decodes = &metrics->counter("ecfrm_store_decodes_total");
        exec_metrics.retries = &metrics->counter("ecfrm_store_retries_total");
        exec_metrics.timeouts = &metrics->counter("ecfrm_store_timeouts_total");
        exec_metrics.replans = &metrics->counter("ecfrm_store_replans_total");
        exec_metrics.hedged_reads = &metrics->counter("ecfrm_store_hedged_reads_total");
        exec_metrics.writes = &metrics->counter("ecfrm_store_write_elements_total");
        exec_metrics.degraded_writes = &metrics->counter("ecfrm_store_degraded_write_elements_total");
    }
    executor_.attach(exec_metrics, tracer, heat);
    auto bundle = std::make_unique<const StoreObs>(fresh);
    const StoreObs* published = bundle.get();
    {
        std::lock_guard<std::mutex> lock(obs_mu_);
        retired_obs_.push_back(std::move(bundle));
    }
    obs_.store(published, std::memory_order_release);
}

std::shared_lock<std::shared_mutex> StripeStore::reader_lock() const {
    // Hold back only while an exclusive acquirer is announced: the gate
    // turns the pthread rwlock's reader preference into bounded-wait
    // writer preference without touching the common (uncontended) path.
    if (writers_waiting_.load(std::memory_order_acquire) > 0) {
        std::unique_lock<std::mutex> gate(gate_mu_);
        gate_cv_.wait(gate, [this] {
            return writers_waiting_.load(std::memory_order_acquire) == 0;
        });
    }
    return std::shared_lock<std::shared_mutex>(mu_);
}

std::unique_lock<std::shared_mutex> StripeStore::exclusive_lock() const {
    writers_waiting_.fetch_add(1, std::memory_order_acq_rel);
    std::unique_lock<std::shared_mutex> lk(mu_);
    // Lift the gate as soon as the lock is held: late readers queue on
    // mu_ itself and flow the moment this window closes.
    if (writers_waiting_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> gate(gate_mu_);
        gate_cv_.notify_all();
    }
    return lk;
}

Status StripeStore::restore(std::vector<Extent> extents, StripeId stripes) {
    std::lock_guard<std::mutex> wl(writer_mu_);
    auto lk = exclusive_lock();
    return restore_locked(std::move(extents), stripes);
}

Status StripeStore::restore_locked(std::vector<Extent> extents, StripeId stripes) {
    if (stripes < 0) return Error::invalid("negative stripe count");
    if (!pending_.empty()) return Error::invalid("restore on a store with buffered writes");
    if (!unencoded_.empty()) return Error::invalid("restore on a store with pending parity");
    const std::int64_t capacity_elems = stripes * scheme_.layout().data_per_stripe();

    std::int64_t logical = 0;
    ElementId min_element = 0;
    for (const auto& e : extents) {
        if (e.logical_start != logical || e.bytes < 0 || e.element_start < min_element) {
            return Error::invalid("extents must be non-negative, logically contiguous and non-overlapping");
        }
        const std::int64_t elems = (e.bytes + element_bytes_ - 1) / element_bytes_;
        if (e.element_start + elems > capacity_elems) {
            return Error::invalid("extent exceeds stripe capacity");
        }
        logical += e.bytes;
        min_element = e.element_start + elems;
    }
    extents_ = std::move(extents);
    logical_bytes_ = logical;
    stripes_ = stripes;
    return Status::success();
}

Status StripeStore::restore(std::int64_t logical_bytes, StripeId stripes) {
    if (logical_bytes < 0) return Error::invalid("negative restore state");
    std::vector<Extent> extents;
    if (logical_bytes > 0) extents.push_back({0, 0, logical_bytes});
    std::lock_guard<std::mutex> wl(writer_mu_);
    auto lk = exclusive_lock();
    return restore_locked(std::move(extents), stripes);
}

std::int64_t StripeStore::logical_bytes() const {
    auto lk = reader_lock();
    return logical_bytes_;
}

std::int64_t StripeStore::committed_bytes() const {
    auto lk = reader_lock();
    return committed_bytes_locked();
}

std::int64_t StripeStore::stored_data_elements() const {
    auto lk = reader_lock();
    return stored_data_elements_locked();
}

std::int64_t StripeStore::unencoded_stripes() const {
    auto lk = reader_lock();
    return static_cast<std::int64_t>(unencoded_.size());
}

Status StripeStore::append(ConstByteSpan data) {
    std::lock_guard<std::mutex> wl(writer_mu_);
    const std::int64_t stripe_bytes = stripe_data_bytes();
    pending_.insert(pending_.end(), data.begin(), data.end());
    {
        auto lk = exclusive_lock();
        logical_bytes_ += static_cast<std::int64_t>(data.size());
    }
    while (static_cast<std::int64_t>(pending_.size()) >= stripe_bytes) {
        auto committed = commit_stripe(
            ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)), stripe_bytes,
            /*with_parity=*/true);
        if (!committed.ok()) return committed.error();
        pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(stripe_bytes));
    }
    return Status::success();
}

Status StripeStore::flush() {
    std::lock_guard<std::mutex> wl(writer_mu_);
    if (pending_.empty()) return Status::success();
    const std::int64_t stripe_bytes = stripe_data_bytes();
    const auto user_bytes = static_cast<std::int64_t>(pending_.size());
    pending_.resize(static_cast<std::size_t>(stripe_bytes), 0);
    auto committed = commit_stripe(
        ConstByteSpan(pending_.data(), static_cast<std::size_t>(stripe_bytes)), user_bytes,
        /*with_parity=*/true);
    if (!committed.ok()) return committed.error();
    pending_.clear();
    return Status::success();
}

Result<StripeId> StripeStore::commit_data_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes) {
    if (static_cast<std::int64_t>(stripe_data.size()) != stripe_data_bytes()) {
        return Error::invalid("commit_data_stripe needs exactly one stripe of data");
    }
    if (user_bytes < 0 || user_bytes > stripe_data_bytes()) {
        return Error::invalid("user byte count out of range for one stripe");
    }
    std::lock_guard<std::mutex> wl(writer_mu_);
    if (!pending_.empty()) {
        return Error::invalid("commit_data_stripe on a store with a buffered tail");
    }
    {
        auto lk = exclusive_lock();
        logical_bytes_ += user_bytes;
    }
    auto committed = commit_stripe(stripe_data, user_bytes, /*with_parity=*/false);
    if (!committed.ok()) {
        auto lk = exclusive_lock();
        logical_bytes_ -= user_bytes;
    }
    return committed;
}

Status StripeStore::compute_stripe_parity(ConstByteSpan stripe_data,
                                          std::vector<AlignedBuffer>& parity_bufs) const {
    const auto& code = scheme_.code();
    const int groups = scheme_.layout().groups_per_stripe();
    const int k = code.k();
    const int m = code.m();
    parity_bufs.clear();
    parity_bufs.reserve(static_cast<std::size_t>(groups) * static_cast<std::size_t>(m));
    for (int i = 0; i < groups * m; ++i) {
        parity_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
    }
    auto encode_group = [&](std::size_t g) {
        std::vector<ConstByteSpan> data(static_cast<std::size_t>(k));
        for (int t = 0; t < k; ++t) {
            const std::int64_t idx = static_cast<std::int64_t>(g) * k + t;
            data[static_cast<std::size_t>(t)] =
                stripe_data.subspan(static_cast<std::size_t>(idx * element_bytes_),
                                    static_cast<std::size_t>(element_bytes_));
        }
        std::vector<ByteSpan> parity(static_cast<std::size_t>(m));
        for (int p = 0; p < m; ++p) {
            parity[static_cast<std::size_t>(p)] = parity_bufs[g * static_cast<std::size_t>(m) +
                                                              static_cast<std::size_t>(p)]
                                                      .span();
        }
        code.encode(data, parity, pool_);
    };
    if (pool_ != nullptr && groups > 1) {
        parallel_for(*pool_, static_cast<std::size_t>(groups), encode_group);
        return Status::success();
    }
    for (int g = 0; g < groups; ++g) encode_group(static_cast<std::size_t>(g));
    return Status::success();
}

Result<StripeId> StripeStore::commit_stripe(ConstByteSpan stripe_data, std::int64_t user_bytes,
                                            bool with_parity) {
    // Caller holds writer_mu_ and NOT mu_. Only writers advance stripes_,
    // and they are serialised on writer_mu_, so reading it lock-free here
    // is race-free; readers never observe the stripe until the manifest
    // window below publishes it under the exclusive lock.
    const StripeId stripe = stripes_;
    const auto& code = scheme_.code();
    const int groups = scheme_.layout().groups_per_stripe();
    const int k = code.k();
    const int m = code.m();

    const StoreObs& o = store_obs();
    if (o.writes_total != nullptr) o.writes_total->add(1);
    obs::Span span(o.tracer, "store.commit_stripe", "store");
    span.arg("stripe", stripe);
    span.arg("user_bytes", user_bytes);

    std::shared_ptr<obs::RequestTrace> rt;
    if (o.forensics != nullptr) {
        rt = o.forensics->start(obs::RequestClass::write);
        rt->attr_all(obs::RequestTrace::kRoot,
                     {{"stripe", stripe}, {"user_bytes", user_bytes}});
        if (!with_parity) rt->attr(obs::RequestTrace::kRoot, "parity", "pending");
    }

    auto run = [&]() -> Status {
        std::vector<AlignedBuffer> parity_bufs;
        if (with_parity) {
            const std::uint32_t encode_node = rt != nullptr ? rt->begin_phase("encode") : 0;
            auto status = compute_stripe_parity(stripe_data, parity_bufs);
            if (rt != nullptr) {
                rt->end_with(encode_node, {{"groups", static_cast<std::int64_t>(groups)}});
            }
            if (!status.ok()) return status;
        }

        // One batched plan for the whole stripe: every data placement, and
        // (when encoding inline) every parity placement, grouped per disk
        // by the executor's submission queues.
        WritePlan plan(scheme_.disks());
        std::vector<ConstByteSpan> payloads;
        payloads.reserve(static_cast<std::size_t>(groups) *
                         static_cast<std::size_t>(with_parity ? k + m : k));
        for (int g = 0; g < groups; ++g) {
            for (int t = 0; t < k; ++t) {
                const GroupCoord coord{stripe, g, t};
                const std::int64_t idx = static_cast<std::int64_t>(g) * k + t;
                plan.add_write({scheme_.layout().locate(coord), coord, payloads.size(), false});
                payloads.push_back(stripe_data.subspan(static_cast<std::size_t>(idx * element_bytes_),
                                                       static_cast<std::size_t>(element_bytes_)));
            }
        }
        if (with_parity) {
            for (int g = 0; g < groups; ++g) {
                for (int p = 0; p < m; ++p) {
                    const GroupCoord coord{stripe, g, k + p};
                    plan.add_write({scheme_.layout().locate(coord), coord, payloads.size(), true});
                    payloads.push_back(parity_bufs[static_cast<std::size_t>(g) *
                                                       static_cast<std::size_t>(m) +
                                                   static_cast<std::size_t>(p)]
                                           .span());
                }
            }
        }
        if (o.write_max_load != nullptr) o.write_max_load->record(plan.max_load());

        const std::uint32_t write_node = rt != nullptr ? rt->begin_phase("write") : 0;
        auto wrote = executor_.write(plan, payloads, {rt.get(), write_node},
                                     /*allow_degraded=*/true);
        if (rt != nullptr) {
            rt->end_with(write_node,
                         {{"elements", wrote.ok() ? wrote.value().elements_written : 0},
                          {"skipped", wrote.ok() ? wrote.value().elements_skipped : 0}});
        }
        if (!wrote.ok()) return wrote.error();

        // Manifest window: the only slice of a commit that excludes
        // readers.
        const std::uint32_t commit_node = rt != nullptr ? rt->begin_phase("commit") : 0;
        {
            auto lk = exclusive_lock();
            const ElementId first = stripe * scheme_.layout().data_per_stripe();
            // Extend the previous extent when it ends exactly on this
            // stripe's first element (no padding gap in between).
            bool extended = false;
            if (!extents_.empty()) {
                Extent& last = extents_.back();
                if (last.bytes % element_bytes_ == 0 &&
                    last.element_start + last.bytes / element_bytes_ == first) {
                    last.bytes += user_bytes;
                    extended = true;
                }
            }
            if (!extended) extents_.push_back({committed_bytes_locked(), first, user_bytes});
            ++stripes_;
            if (!with_parity) unencoded_.insert(stripe);
        }
        if (rt != nullptr) rt->end(commit_node);
        return Status::success();
    };

    auto status = run();
    if (rt != nullptr) {
        if (!status.ok()) {
            rt->attr(obs::RequestTrace::kRoot, "error", status.error().message);
            o.forensics->finish(rt, false);
        } else {
            o.forensics->finish_at(rt, true, rt->phase_cursor_us());
        }
    }
    if (!status.ok()) return status.error();
    return stripe;
}

Status StripeStore::encode_stripe_parity(StripeId stripe, ConstByteSpan stripe_data) {
    if (static_cast<std::int64_t>(stripe_data.size()) != stripe_data_bytes()) {
        return Error::invalid("encode_stripe_parity needs exactly one stripe of data");
    }
    {
        auto lk = reader_lock();
        if (stripe < 0 || stripe >= stripes_) return Error::range("no such stripe");
        if (unencoded_.count(stripe) == 0) {
            return Error::invalid("stripe " + std::to_string(stripe) + " parity is not pending");
        }
    }
    const auto& code = scheme_.code();
    const int groups = scheme_.layout().groups_per_stripe();
    const int k = code.k();
    const int m = code.m();

    const StoreObs& o = store_obs();
    if (o.writes_total != nullptr) o.writes_total->add(1);
    obs::Span span(o.tracer, "store.encode_parity", "store");
    span.arg("stripe", stripe);

    std::shared_ptr<obs::RequestTrace> rt;
    if (o.forensics != nullptr) {
        rt = o.forensics->start(obs::RequestClass::write);
        rt->attr(obs::RequestTrace::kRoot, "stripe", stripe);
        rt->attr(obs::RequestTrace::kRoot, "parity", "flush");
    }

    auto run = [&]() -> Status {
        std::vector<AlignedBuffer> parity_bufs;
        {
            const std::uint32_t encode_node = rt != nullptr ? rt->begin_phase("encode") : 0;
            auto status = compute_stripe_parity(stripe_data, parity_bufs);
            if (rt != nullptr) {
                rt->end_with(encode_node, {{"groups", static_cast<std::int64_t>(groups)}});
            }
            if (!status.ok()) return status;
        }

        // Parity rows of a pending stripe are unreachable by every read
        // plan (degraded reads needing them fail typed at the guard), so
        // this write needs no reader exclusion at all.
        WritePlan plan(scheme_.disks());
        std::vector<ConstByteSpan> payloads;
        payloads.reserve(static_cast<std::size_t>(groups) * static_cast<std::size_t>(m));
        for (int g = 0; g < groups; ++g) {
            for (int p = 0; p < m; ++p) {
                const GroupCoord coord{stripe, g, k + p};
                plan.add_write({scheme_.layout().locate(coord), coord, payloads.size(), true});
                payloads.push_back(parity_bufs[static_cast<std::size_t>(g) *
                                                   static_cast<std::size_t>(m) +
                                               static_cast<std::size_t>(p)]
                                       .span());
            }
        }
        if (o.write_max_load != nullptr) o.write_max_load->record(plan.max_load());

        const std::uint32_t write_node = rt != nullptr ? rt->begin_phase("write") : 0;
        auto wrote = executor_.write(plan, payloads, {rt.get(), write_node},
                                     /*allow_degraded=*/true);
        if (rt != nullptr) {
            rt->end_with(write_node,
                         {{"elements", wrote.ok() ? wrote.value().elements_written : 0},
                          {"skipped", wrote.ok() ? wrote.value().elements_skipped : 0}});
        }
        if (!wrote.ok()) return wrote.error();

        const std::uint32_t commit_node = rt != nullptr ? rt->begin_phase("commit") : 0;
        {
            auto lk = exclusive_lock();
            unencoded_.erase(stripe);
        }
        if (rt != nullptr) rt->end(commit_node);
        return Status::success();
    };

    auto status = run();
    if (rt != nullptr) {
        if (!status.ok()) {
            rt->attr(obs::RequestTrace::kRoot, "error", status.error().message);
            o.forensics->finish(rt, false);
        } else {
            o.forensics->finish_at(rt, true, rt->phase_cursor_us());
        }
    }
    return status;
}

Status StripeStore::overwrite(std::int64_t offset, ConstByteSpan data) {
    // Overwrite mutates committed rows and their parities in place, so it
    // is the one write that excludes readers end to end.
    std::lock_guard<std::mutex> wl(writer_mu_);
    auto lk = exclusive_lock();
    const auto length = static_cast<std::int64_t>(data.size());
    if (offset < 0) return Error::range("negative offset");
    if (offset + length > committed_bytes_locked()) {
        return Error::range("overwrite must stay within committed bytes");
    }
    if (length == 0) return Status::success();
    const auto& code = scheme_.code();
    const auto& gen = code.generator();
    const int k = code.k();
    const int n = code.n();

    // Walk the committed extents and collect every touched element. Each
    // element appears at most once: extents are element-disjoint and the
    // walk advances a full chunk per step.
    struct Touch {
        GroupCoord coord;
        Location loc;
        std::int64_t in_elem = 0;  // first dirty byte within the element
        std::int64_t chunk = 0;    // dirty byte count
        std::int64_t src = 0;      // offset into `data`
    };
    std::vector<Touch> touches;
    std::int64_t consumed = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        for (std::int64_t pos = lo; pos < hi;) {
            const ElementId elem = e.element_start + pos / element_bytes_;
            const std::int64_t in_elem = pos % element_bytes_;
            const std::int64_t chunk = std::min(element_bytes_ - in_elem, hi - pos);
            const GroupCoord coord = scheme_.layout().coord_of_data(elem);
            touches.push_back({coord, scheme_.layout().locate(coord), in_elem, chunk, consumed});
            pos += chunk;
            consumed += chunk;
        }
    }
    if (consumed != length) return Error::internal("overwrite extent walk consumed wrong byte count");
    if (touches.empty()) return Status::success();

    // The parity set per touched group: every parity position with a
    // nonzero generator coefficient over some touched data position.
    std::map<std::pair<StripeId, int>, std::set<int>> group_parities;
    for (const Touch& t : touches) {
        auto& used = group_parities[{t.coord.stripe, t.coord.group}];
        for (int p = k; p < n; ++p) {
            if (gen.at(p, t.coord.position) != 0) used.insert(p);
        }
    }

    // RMW folds deltas into live parity, so the touched stripes' parity
    // must exist, and every participating disk must be writable.
    for (const Touch& t : touches) {
        if (unencoded_.count(t.coord.stripe) != 0) {
            return Error::invalid("overwrite requires encoded parity; stripe " +
                                  std::to_string(t.coord.stripe) +
                                  " is parity-pending (online encode backlog)");
        }
    }
    std::vector<char> unavailable(static_cast<std::size_t>(scheme_.disks()), 0);
    for (DiskId d : unavailable_disks_locked()) unavailable[static_cast<std::size_t>(d)] = 1;
    auto writable = [&](const Location& loc) { return unavailable[static_cast<std::size_t>(loc.disk)] == 0; };
    for (const Touch& t : touches) {
        if (!writable(t.loc)) {
            return Error::disk_failed("overwrite touches unavailable disk " +
                                      std::to_string(t.loc.disk));
        }
    }
    for (const auto& [sg, positions] : group_parities) {
        for (int p : positions) {
            const Location ploc = scheme_.layout().locate({sg.first, sg.second, p});
            if (!writable(ploc)) {
                return Error::disk_failed("overwrite parity lives on unavailable disk " +
                                          std::to_string(ploc.disk));
            }
        }
    }

    const StoreObs& o = store_obs();
    if (o.overwrites_total != nullptr) o.overwrites_total->add(1);
    obs::Span span(o.tracer, "store.overwrite", "store");
    span.arg("offset", offset);
    span.arg("bytes", length);

    std::shared_ptr<obs::RequestTrace> rt;
    if (o.forensics != nullptr) {
        rt = o.forensics->start(obs::RequestClass::write);
        rt->attr_all(obs::RequestTrace::kRoot,
                     {{"offset", offset},
                      {"bytes", length},
                      {"elements", static_cast<std::int64_t>(touches.size())}});
    }

    auto run = [&]() -> Status {
        // FETCH: old data and touched parities, one batched plan. The
        // fixed replanner refuses recovery rounds — a disk dying
        // mid-overwrite aborts the RMW rather than folding into a moved
        // parity set.
        AccessPlan rplan(scheme_.disks());
        for (const Touch& t : touches) rplan.add_fetch({t.loc, t.coord, true});
        for (const auto& [sg, positions] : group_parities) {
            for (int p : positions) {
                const GroupCoord coord{sg.first, sg.second, p};
                rplan.add_fetch({scheme_.layout().locate(coord), coord, false});
            }
        }
        rplan.set_requested(static_cast<std::int64_t>(touches.size()));
        auto replanner = [&](const std::vector<DiskId>& excl) -> Result<AccessPlan> {
            if (!excl.empty()) {
                return Error::disk_failed("disk failed mid-overwrite; read-modify-write aborted");
            }
            return rplan;
        };
        auto fetched = executor_.fetch(replanner, {}, rt.get(), {});
        if (!fetched.ok()) return fetched.error();
        exec::PlanExecutor::ElementMap& elements = fetched.value().elements;
        auto element_of = [&](const GroupCoord& coord) -> ElementBuf* {
            auto it = elements.find(exec::PlanExecutor::key_of(coord));
            return it == elements.end() ? nullptr : &it->second;
        };

        // FOLD: new_data = old patched with the dirty bytes; per group,
        // delta_j = old_j ^ new_j and parity_p ^= sum_j coeff_pj * delta_j
        // via one fused multi-source pass into scratch, XORed into the
        // fetched parity in place.
        const std::uint32_t fold_node = rt != nullptr ? rt->begin_phase("fold") : 0;
        std::vector<AlignedBuffer> new_data;
        new_data.reserve(touches.size());
        for (const Touch& t : touches) {
            ElementBuf* old_elem = element_of(t.coord);
            if (old_elem == nullptr) return Error::internal("overwrite fetch missing data element");
            AlignedBuffer nd(static_cast<std::size_t>(element_bytes_));
            std::memcpy(nd.data(), old_elem->data(), static_cast<std::size_t>(element_bytes_));
            std::memcpy(nd.data() + t.in_elem, data.data() + t.src,
                        static_cast<std::size_t>(t.chunk));
            new_data.push_back(std::move(nd));
        }
        std::int64_t parity_folds = 0;
        for (const auto& [sg, positions] : group_parities) {
            std::vector<std::size_t> tidx;
            for (std::size_t i = 0; i < touches.size(); ++i) {
                if (touches[i].coord.stripe == sg.first && touches[i].coord.group == sg.second) {
                    tidx.push_back(i);
                }
            }
            std::vector<AlignedBuffer> deltas;
            std::vector<ConstByteSpan> delta_spans;
            deltas.reserve(tidx.size());
            delta_spans.reserve(tidx.size());
            for (std::size_t i : tidx) {
                ElementBuf* old_elem = element_of(touches[i].coord);
                AlignedBuffer d(static_cast<std::size_t>(element_bytes_));
                std::memcpy(d.data(), old_elem->data(), static_cast<std::size_t>(element_bytes_));
                gf::xor_region(d.span(), new_data[i].span());
                deltas.push_back(std::move(d));
            }
            for (const AlignedBuffer& d : deltas) delta_spans.push_back(d.span());
            std::vector<std::uint8_t> coeffs;
            coeffs.reserve(positions.size() * tidx.size());
            for (int p : positions) {
                for (std::size_t i : tidx) coeffs.push_back(gen.at(p, touches[i].coord.position));
            }
            std::vector<AlignedBuffer> scratch;
            std::vector<ByteSpan> scratch_spans;
            scratch.reserve(positions.size());
            for (std::size_t p = 0; p < positions.size(); ++p) {
                scratch.emplace_back(static_cast<std::size_t>(element_bytes_));
            }
            for (AlignedBuffer& s : scratch) scratch_spans.push_back(s.span());
            gf::encode_regions(delta_spans, scratch_spans, coeffs.data(), pool_);
            std::size_t pi = 0;
            for (int p : positions) {
                ElementBuf* parity = element_of({sg.first, sg.second, p});
                if (parity == nullptr) return Error::internal("overwrite fetch missing parity element");
                gf::xor_region(parity->span(), scratch[pi].span());
                ++pi;
                ++parity_folds;
            }
        }
        if (rt != nullptr) {
            rt->end_with(fold_node, {{"elements", static_cast<std::int64_t>(touches.size())},
                                     {"parities", parity_folds}});
        }

        // WRITE: new data and folded parities, one batched plan. No
        // degraded skips: availability was proven above, and a failure
        // now must surface (a silently skipped parity write would leave
        // the group inconsistent).
        WritePlan wplan(scheme_.disks());
        std::vector<ConstByteSpan> payloads;
        for (std::size_t i = 0; i < touches.size(); ++i) {
            wplan.add_write({touches[i].loc, touches[i].coord, payloads.size(), false});
            payloads.push_back(new_data[i].span());
        }
        for (const auto& [sg, positions] : group_parities) {
            for (int p : positions) {
                const GroupCoord coord{sg.first, sg.second, p};
                ElementBuf* parity = element_of(coord);
                wplan.add_write({scheme_.layout().locate(coord), coord, payloads.size(), true});
                payloads.push_back(parity->span());
            }
        }
        if (o.write_max_load != nullptr) o.write_max_load->record(wplan.max_load());
        const std::uint32_t write_node = rt != nullptr ? rt->begin_phase("write") : 0;
        auto wrote = executor_.write(wplan, payloads, {rt.get(), write_node},
                                     /*allow_degraded=*/false);
        if (rt != nullptr) {
            rt->end_with(write_node,
                         {{"elements", wrote.ok() ? wrote.value().elements_written : 0}});
        }
        if (!wrote.ok()) return wrote.error();
        return Status::success();
    };

    auto status = run();
    if (rt != nullptr) {
        if (!status.ok()) {
            rt->attr(obs::RequestTrace::kRoot, "error", status.error().message);
            o.forensics->finish(rt, false);
        } else {
            o.forensics->finish_at(rt, true, rt->phase_cursor_us());
        }
    }
    return status;
}

Result<std::vector<std::uint8_t>> StripeStore::read_bytes(std::int64_t offset, std::int64_t length) {
    auto lk = reader_lock();
    if (offset < 0 || length < 0) return Error::range("negative read range");
    if (offset + length > committed_bytes_locked()) {
        if (offset + length <= logical_bytes_) {
            return Error::invalid("range still buffered; call flush() before reading");
        }
        return Error::range("read beyond logical size");
    }
    std::vector<std::uint8_t> out(static_cast<std::size_t>(length));
    if (length == 0) return out;

    // Walk the committed extents overlapping [offset, offset + length).
    std::int64_t produced = 0;
    for (const Extent& e : extents_) {
        const std::int64_t e_end = e.logical_start + e.bytes;
        if (e_end <= offset) continue;
        if (e.logical_start >= offset + length) break;

        const std::int64_t lo = std::max(offset, e.logical_start) - e.logical_start;
        const std::int64_t hi = std::min(offset + length, e_end) - e.logical_start;
        const ElementId first = e.element_start + lo / element_bytes_;
        const ElementId last = e.element_start + (hi - 1) / element_bytes_;
        const std::int64_t count = last - first + 1;

        std::vector<std::uint8_t> elems(static_cast<std::size_t>(count * element_bytes_));
        auto status = read_elements_locked(first, count, ByteSpan(elems.data(), elems.size()));
        if (!status.ok()) return status.error();

        const std::int64_t skip = lo - (first - e.element_start) * element_bytes_;
        std::memcpy(out.data() + produced, elems.data() + skip, static_cast<std::size_t>(hi - lo));
        produced += hi - lo;
    }
    if (produced != length) return Error::internal("extent walk produced wrong byte count");
    return out;
}

Status StripeStore::read_elements(ElementId start, std::int64_t count, ByteSpan out) {
    auto lk = reader_lock();
    return read_elements_locked(start, count, out);
}

Status StripeStore::read_elements_locked(ElementId start, std::int64_t count, ByteSpan out) {
    if (start < 0 || count < 0 || start + count > stored_data_elements_locked()) {
        return Error::range("element range beyond stored data");
    }
    if (static_cast<std::int64_t>(out.size()) != count * element_bytes_) {
        return Error::invalid("output buffer size mismatch");
    }
    if (count == 0) return Status::success();

    const StoreObs& o = store_obs();
    obs::Span read_span(o.tracer, "store.read_elements", "store");
    read_span.arg("start", start);
    read_span.arg("count", count);
    if (o.reads_total != nullptr) o.reads_total->add(1);
    if (o.read_elements_total != nullptr) o.read_elements_total->add(count);

    return execute_read(start, count, out, unavailable_disks_locked());
}

Status StripeStore::execute_read(ElementId start, std::int64_t count, ByteSpan out,
                                 std::vector<DiskId> excluded) {
    const StoreObs& o = store_obs();

    // Request forensics: give the read a traced identity. The executor
    // appends contiguous plan/fetch phase spans per round; decode and
    // assemble are added below, so the root's direct children tile the
    // request end to end and phase attribution sums to its latency.
    std::shared_ptr<obs::RequestTrace> rt;
    if (o.forensics != nullptr) {
        rt = o.forensics->start(excluded.empty() ? obs::RequestClass::normal
                                                 : obs::RequestClass::degraded);
        rt->attr_all(obs::RequestTrace::kRoot, {{"start", start}, {"count", count}});
        if (!excluded.empty()) {
            rt->attr(obs::RequestTrace::kRoot, "excluded",
                     static_cast<std::int64_t>(excluded.size()));
        }
    }
    auto status = execute_read_traced(start, count, out, std::move(excluded), rt.get());
    if (rt != nullptr) {
        if (!status.ok()) rt->attr(obs::RequestTrace::kRoot, "error", status.error().message);
        if (status.ok()) {
            // Close the root on the last phase's boundary so the phase
            // durations sum exactly to the request's end-to-end latency.
            o.forensics->finish_at(rt, true, rt->phase_cursor_us());
        } else {
            o.forensics->finish(rt, false);
        }
    }
    return status;
}

Status StripeStore::execute_read_traced(ElementId start, std::int64_t count, ByteSpan out,
                                        std::vector<DiskId> excluded, obs::RequestTrace* rt) {
    const StoreObs& o = store_obs();

    // A degraded read of an element whose stripe is still parity-pending
    // cannot be decoded — there is no parity yet. Fail typed before
    // planning (and re-check whenever the exclusion set grows mid-flight;
    // unencoded_ cannot change under us, its mutations take mu_
    // exclusively and reads hold it shared).
    auto pending_guard = [&](const std::vector<DiskId>& excl) -> Status {
        if (excl.empty() || unencoded_.empty()) return Status::success();
        std::vector<char> mask(static_cast<std::size_t>(scheme_.disks()), 0);
        for (DiskId d : excl) mask[static_cast<std::size_t>(d)] = 1;
        for (std::int64_t i = 0; i < count; ++i) {
            const GroupCoord coord = scheme_.layout().coord_of_data(start + i);
            if (unencoded_.count(coord.stripe) == 0) continue;
            const Location loc = scheme_.layout().locate(coord);
            if (mask[static_cast<std::size_t>(loc.disk)] != 0) {
                return Error::beyond_tolerance(
                    "element on unavailable disk " + std::to_string(loc.disk) +
                    " cannot be decoded: stripe " + std::to_string(coord.stripe) +
                    " parity is pending (online encode backlog)");
            }
        }
        return Status::success();
    };

    // Plan against the current exclusion set; a pattern the code cannot
    // decode is the read path's terminal "beyond tolerance" diagnosis.
    // Load-shape histograms and the plan span describe the intended plan
    // (first round); the recovery rounds are accounted by the executor's
    // retry/replan counters.
    bool first_plan = true;
    auto replanner = [&](const std::vector<DiskId>& excl) -> Result<AccessPlan> {
        auto guarded = pending_guard(excl);
        if (!guarded.ok()) return guarded.error();
        std::optional<obs::Span> plan_span;
        if (first_plan) plan_span.emplace(o.tracer, "store.plan", "store");
        auto planned = [&]() -> Result<AccessPlan> {
            if (excl.empty()) return core::plan_normal_read(scheme_, start, count);
            if (o.degraded_reads_total != nullptr) o.degraded_reads_total->add(1);
            // Health-aware planning: flagged stragglers lose repair-source
            // ties, so degraded reads drift off slow disks as the heat
            // window observes them.
            std::vector<char> straggler_mask;
            if (o.heat != nullptr) {
                straggler_mask = o.heat->straggler_mask(obs::DiskHeatModel::now_seconds());
            }
            auto degraded = core::plan_degraded_read(
                scheme_, start, count, excl, core::DegradedPolicy::local_first,
                straggler_mask.empty() ? nullptr : &straggler_mask);
            if (!degraded.ok()) {
                if (degraded.error().code == Error::Code::undecodable) {
                    return Error::beyond_tolerance(
                        "read cannot be planned around " + std::to_string(excl.size()) +
                        " unavailable disks: " + degraded.error().message);
                }
                return degraded.error();
            }
            return degraded;
        }();
        if (first_plan && planned.ok()) {
            first_plan = false;
            if (plan_span.has_value()) {
                plan_span->arg("fetches", planned.value().total_fetched());
                plan_span->arg("max_load", static_cast<std::int64_t>(planned.value().max_load()));
            }
            if (o.read_max_load != nullptr) o.read_max_load->record(planned.value().max_load());
            if (o.read_fanout != nullptr) {
                o.read_fanout->record(static_cast<double>(planned.value().batches().size()));
            }
        }
        return planned;
    };

    // Zero-copy sink: a requested data element lands directly in the
    // caller's output slice — fetched there by the device, or decoded
    // there — so the healthy path's assemble stage has nothing to copy.
    // Repair sources, parities and hedge-owned buffers stay in executor
    // staging (the sink returns an empty span for them).
    std::map<exec::PlanExecutor::Key, std::int64_t> dest;
    for (std::int64_t i = 0; i < count; ++i) {
        dest.emplace(exec::PlanExecutor::key_of(scheme_.layout().coord_of_data(start + i)), i);
    }
    auto sink = [&](const exec::PlanExecutor::Key& key) -> ByteSpan {
        auto it = dest.find(key);
        if (it == dest.end()) return {};
        return out.subspan(static_cast<std::size_t>(it->second * element_bytes_),
                           static_cast<std::size_t>(element_bytes_));
    };

    auto fetched = executor_.fetch(replanner, std::move(excluded), rt, sink);
    if (!fetched.ok()) return fetched.error();
    exec::PlanExecutor::FetchResult& result = fetched.value();

    // A read that grew its exclusion set mid-flight (or started with
    // one) is a degraded read, whatever class it started as.
    if (rt != nullptr && (!result.excluded.empty() || rt->replans() > 0)) {
        rt->set_class(obs::RequestClass::degraded);
    }

    // Run the decode recipes to materialise failed elements. Phase spans
    // (decode, assemble) chain off the previous phase's end via
    // begin_phase, so attribution tiles the request even when the thread
    // is preempted between two spans.
    {
        obs::Span decode_span(o.tracer, "store.decode", "store");
        decode_span.arg("decodes", static_cast<std::int64_t>(result.plan.decodes().size()));
        const std::uint32_t decode_node = rt != nullptr ? rt->begin_phase("decode") : 0;
        auto status = executor_.decode(result.plan, result.elements, {rt, decode_node}, sink);
        if (rt != nullptr) {
            rt->end_with(decode_node,
                         {{"decodes", static_cast<std::int64_t>(result.plan.decodes().size())}});
        }
        if (!status.ok()) return status;
    }

    // Assemble the user range in logical order. Elements routed through
    // the sink already sit in place; only staged elements (hedged reads,
    // elements a recovery round landed in executor buffers) still copy.
    obs::Span assemble_span(o.tracer, "store.assemble", "store");
    const std::uint32_t assemble_node = rt != nullptr ? rt->begin_phase("assemble") : 0;
    std::int64_t copies = 0;
    for (std::int64_t i = 0; i < count; ++i) {
        const GroupCoord coord = scheme_.layout().coord_of_data(start + i);
        auto it = result.elements.find(exec::PlanExecutor::key_of(coord));
        if (it == result.elements.end()) {
            if (rt != nullptr) rt->end(assemble_node);
            return Error::internal("requested element missing after decode");
        }
        std::uint8_t* const dst = out.data() + static_cast<std::size_t>(i * element_bytes_);
        if (it->second.data() != dst) {
            std::memcpy(dst, it->second.data(), static_cast<std::size_t>(element_bytes_));
            ++copies;
        }
    }
    if (copies > 0) assemble_copies_.fetch_add(copies, std::memory_order_relaxed);
    if (rt != nullptr) {
        rt->end_with(assemble_node, {{"elements", count}, {"staging_copies", copies}});
    }
    return Status::success();
}

Status StripeStore::fail_disk(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    auto lk = exclusive_lock();
    disks_[static_cast<std::size_t>(disk)]->fail();
    return Status::success();
}

std::vector<DiskId> StripeStore::failed_disks() const {
    auto lk = reader_lock();
    return failed_disks_locked();
}

std::vector<DiskId> StripeStore::failed_disks_locked() const {
    std::vector<DiskId> failed;
    for (int d = 0; d < scheme_.disks(); ++d) {
        if (disks_[static_cast<std::size_t>(d)]->failed()) failed.push_back(d);
    }
    return failed;
}

std::vector<DiskId> StripeStore::unavailable_disks_locked() const {
    std::vector<DiskId> out;
    for (int d = 0; d < scheme_.disks(); ++d) {
        if (disks_[static_cast<std::size_t>(d)]->failed() || rebuilding_[static_cast<std::size_t>(d)] != 0) {
            out.push_back(d);
        }
    }
    return out;
}

std::vector<DiskId> StripeStore::rebuilding_disks() const {
    auto lk = reader_lock();
    std::vector<DiskId> out;
    for (int d = 0; d < scheme_.disks(); ++d) {
        if (rebuilding_[static_cast<std::size_t>(d)] != 0) out.push_back(d);
    }
    return out;
}

Status StripeStore::begin_rebuild(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    // Serialising with writers means no stripe commit is mid-I/O while
    // the replacement swaps in: stripes committed after this window write
    // to the replacement directly, stripes committed before are fully
    // inside the row snapshot.
    std::lock_guard<std::mutex> wl(writer_mu_);
    auto lk = exclusive_lock();
    if (!disks_[static_cast<std::size_t>(disk)]->failed()) {
        return Error::invalid("disk is not failed; nothing to reconstruct");
    }
    if (rebuilds_.count(disk) != 0) {
        return Error::invalid("rebuild already in flight for disk " + std::to_string(disk));
    }
    if (!unencoded_.empty()) {
        return Error::invalid("begin_rebuild with parity-pending stripes; drain the encode backlog first");
    }
    RebuildState st;
    st.avoid.assign(static_cast<std::size_t>(scheme_.disks()), 0);
    for (DiskId d : failed_disks_locked()) st.avoid[static_cast<std::size_t>(d)] = 1;
    for (int d = 0; d < scheme_.disks(); ++d) {
        if (rebuilding_[static_cast<std::size_t>(d)] != 0) st.avoid[static_cast<std::size_t>(d)] = 1;
    }
    disks_[static_cast<std::size_t>(disk)]->replace();
    rebuilding_[static_cast<std::size_t>(disk)] = 1;
    st.target_rows = scheme_.rows_for(stripes_);
    rebuilds_[disk] = std::move(st);
    return Status::success();
}

Result<RowId> StripeStore::rebuild_target_rows(DiskId disk) const {
    auto lk = reader_lock();
    auto it = rebuilds_.find(disk);
    if (it == rebuilds_.end()) {
        return Error::invalid("no rebuild in flight for disk " + std::to_string(disk));
    }
    return it->second.target_rows;
}

Result<ReconstructStats> StripeStore::rebuild_rows(DiskId disk, RowId first, RowId count) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    if (first < 0 || count < 0) return Error::range("negative row range");
    auto lk = reader_lock();
    auto it = rebuilds_.find(disk);
    if (it == rebuilds_.end()) {
        return Error::invalid("no rebuild in flight for disk " + std::to_string(disk));
    }
    const RebuildState& st = it->second;
    const RowId lo = std::min(first, st.target_rows);
    const RowId hi = std::min(first + count, st.target_rows);
    const auto nrows = static_cast<std::size_t>(hi > lo ? hi - lo : 0);
    if (nrows == 0) return ReconstructStats{0, 0};

    const int k = scheme_.code().k();
    std::vector<AlignedBuffer> targets;
    targets.reserve(nrows);
    for (std::size_t i = 0; i < nrows; ++i) targets.emplace_back(static_cast<std::size_t>(element_bytes_));

    std::atomic<std::int64_t> reads{0};
    std::atomic<bool> error_flag{false};
    auto rebuild_one = [&](std::size_t i) {
        if (error_flag.load()) return;
        const GroupCoord coord = scheme_.layout().coord_at({disk, lo + static_cast<RowId>(i)});
        auto sources = executor_.rebuild_element(coord, st.avoid, targets[i].span());
        if (!sources.ok()) {
            error_flag.store(true);
            return;
        }
        reads.fetch_add(sources.value());
    };
    if (pool_ != nullptr && nrows > 1) {
        parallel_for(*pool_, nrows, rebuild_one);
    } else {
        for (std::size_t i = 0; i < nrows; ++i) rebuild_one(i);
    }
    if (error_flag.load()) {
        return Error::undecodable("reconstruction failed (too many concurrent failures?)");
    }

    // Flush the rebuilt chunk onto the replacement as one batched plan
    // (a single queue: all rows live on one disk). The replacement dying
    // here must surface — no degraded skip.
    WritePlan plan(scheme_.disks());
    std::vector<ConstByteSpan> payloads;
    payloads.reserve(nrows);
    for (std::size_t i = 0; i < nrows; ++i) {
        const RowId row = lo + static_cast<RowId>(i);
        const GroupCoord coord = scheme_.layout().coord_at({disk, row});
        plan.add_write({{disk, row}, coord, payloads.size(), coord.position >= k});
        payloads.push_back(targets[i].span());
    }
    auto wrote = executor_.write(plan, payloads, {}, /*allow_degraded=*/false);
    if (!wrote.ok()) return wrote.error();
    return ReconstructStats{static_cast<std::int64_t>(nrows), reads.load()};
}

Status StripeStore::finish_rebuild(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    std::lock_guard<std::mutex> wl(writer_mu_);
    auto lk = exclusive_lock();
    auto it = rebuilds_.find(disk);
    if (it == rebuilds_.end()) {
        return Error::invalid("no rebuild in flight for disk " + std::to_string(disk));
    }
    if (disks_[static_cast<std::size_t>(disk)]->failed()) {
        return Error::disk_failed("replacement disk failed mid-rebuild; abort_rebuild and retry");
    }
    rebuilding_[static_cast<std::size_t>(disk)] = 0;
    rebuilds_.erase(it);
    return Status::success();
}

Status StripeStore::abort_rebuild(DiskId disk) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    std::lock_guard<std::mutex> wl(writer_mu_);
    auto lk = exclusive_lock();
    auto it = rebuilds_.find(disk);
    if (it == rebuilds_.end()) {
        return Error::invalid("no rebuild in flight for disk " + std::to_string(disk));
    }
    disks_[static_cast<std::size_t>(disk)]->fail();
    rebuilding_[static_cast<std::size_t>(disk)] = 0;
    rebuilds_.erase(it);
    return Status::success();
}

Result<ReconstructStats> StripeStore::reconstruct_disk(DiskId disk) {
    auto began = begin_rebuild(disk);
    if (!began.ok()) return began.error();

    const StoreObs& o = store_obs();
    obs::Span span(o.tracer, "store.reconstruct", "store");
    span.arg("disk", static_cast<std::int64_t>(disk));

    auto rows = rebuild_target_rows(disk);
    if (!rows.ok()) {
        (void)abort_rebuild(disk);
        return rows.error();
    }
    auto stats = rebuild_rows(disk, 0, rows.value());
    if (!stats.ok()) {
        (void)abort_rebuild(disk);
        return stats.error();
    }
    auto finished = finish_rebuild(disk);
    if (!finished.ok()) return finished.error();
    return stats;
}

Status StripeStore::corrupt_element(DiskId disk, RowId row, std::size_t byte_offset) {
    if (disk < 0 || disk >= scheme_.disks()) return Error::range("no such disk");
    auto lk = exclusive_lock();
    return disks_[static_cast<std::size_t>(disk)]->corrupt_byte(row, byte_offset);
}

namespace {

/// True when the group's parity equations all hold for these buffers
/// (buffers[i] = payload of code position i).
bool group_consistent(const codes::ErasureCode& code, const std::vector<AlignedBuffer>& bufs,
                      std::int64_t element_bytes) {
    std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
    for (int j = 0; j < code.k(); ++j) data[static_cast<std::size_t>(j)] = bufs[static_cast<std::size_t>(j)].span();
    std::vector<AlignedBuffer> expect_bufs;
    std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
    for (int p = 0; p < code.m(); ++p) {
        expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes));
        expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
    }
    code.encode(data, expect);
    for (int p = 0; p < code.m(); ++p) {
        if (std::memcmp(expect_bufs[static_cast<std::size_t>(p)].data(),
                        bufs[static_cast<std::size_t>(code.k() + p)].data(),
                        static_cast<std::size_t>(element_bytes)) != 0) {
            return false;
        }
    }
    return true;
}

}  // namespace

Result<ScrubReport> StripeStore::scrub() {
    std::lock_guard<std::mutex> wl(writer_mu_);
    auto lk = exclusive_lock();
    if (!failed_disks_locked().empty()) return Error::disk_failed("scrub requires all disks online");
    if (!rebuilds_.empty()) return Error::invalid("scrub requires no rebuild in flight");

    // A scrub pass is one scrub-class request: the whole scan is its
    // single phase, with a span per inconsistent group under it.
    const StoreObs& o = store_obs();
    std::shared_ptr<obs::RequestTrace> rt;
    std::uint32_t scan_node = 0;
    if (o.forensics != nullptr) {
        rt = o.forensics->start(obs::RequestClass::scrub);
        scan_node = rt->begin_phase("scan");
    }
    auto result = scrub_locked(rt.get(), scan_node);
    if (rt != nullptr) {
        if (result.ok()) {
            rt->attr(scan_node, "groups", result.value().groups_scanned);
            rt->attr(scan_node, "inconsistent", result.value().groups_inconsistent);
            rt->attr(scan_node, "repaired", result.value().elements_repaired);
        } else {
            rt->attr(obs::RequestTrace::kRoot, "error", result.error().message);
        }
        rt->end(scan_node);
        if (result.ok()) {
            o.forensics->finish_at(rt, true, rt->phase_cursor_us());
        } else {
            o.forensics->finish(rt, false);
        }
    }
    return result;
}

Result<ScrubReport> StripeStore::scrub_locked(obs::RequestTrace* rt, std::uint32_t scan_node) {
    const auto& code = scheme_.code();
    ScrubReport report;

    for (StripeId s = 0; s < stripes_; ++s) {
        if (unencoded_.count(s) != 0) continue;  // parity-pending: nothing to audit yet
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            ++report.groups_scanned;

            std::vector<AlignedBuffer> bufs;
            std::vector<ByteSpan> spans(static_cast<std::size_t>(code.n()));
            bufs.reserve(static_cast<std::size_t>(code.n()));
            for (int p = 0; p < code.n(); ++p) {
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                spans[static_cast<std::size_t>(p)] = bufs.back().span();
            }
            auto status = executor_.read_group(s, g, spans);
            if (!status.ok()) return status.error();
            if (group_consistent(code, bufs, element_bytes_)) continue;
            ++report.groups_inconsistent;
            const double repair_t0 = rt != nullptr ? obs::forensic_now_us() : 0.0;

            // Hypothesis test: rebuild each position from the other n-1
            // and accept the unique hypothesis that restores consistency.
            // (Unique for a single corruption because our codes have
            // element-level distance >= 3.)
            bool repaired = false;
            for (int z = 0; z < code.n() && !repaired; ++z) {
                std::vector<int> sources;
                for (int p = 0; p < code.n(); ++p) {
                    if (p != z) sources.push_back(p);
                }
                auto repair = code.solve_repair(z, sources);
                if (!repair.ok()) continue;

                std::vector<AlignedBuffer> trial = bufs;
                std::vector<ByteSpan> trial_spans(static_cast<std::size_t>(code.n()));
                for (int p = 0; p < code.n(); ++p) trial_spans[static_cast<std::size_t>(p)] = trial[static_cast<std::size_t>(p)].span();
                codes::DecodePlan one;
                one.repairs.push_back(repair.value());
                codes::ErasureCode::apply_plan(one, trial_spans);

                if (!group_consistent(code, trial, element_bytes_)) continue;

                // Hypothesis accepted: persist the corrected element
                // through the executor's write path.
                const GroupCoord coord{s, g, z};
                WritePlan plan(scheme_.disks());
                plan.add_write({scheme_.layout().locate(coord), coord, 0, z >= code.k()});
                const ConstByteSpan payload[] = {trial[static_cast<std::size_t>(z)].span()};
                auto wrote = executor_.write(plan, payload, {}, /*allow_degraded=*/false);
                if (!wrote.ok()) return wrote.error();
                ++report.elements_repaired;
                repaired = true;
            }
            if (!repaired) ++report.unrecoverable_groups;
            if (rt != nullptr) {
                rt->complete(scan_node, "scrub.repair", repair_t0,
                             obs::forensic_now_us() - repair_t0,
                             {{"stripe", std::to_string(s)},
                              {"group", std::to_string(g)},
                              {"repaired", repaired ? "true" : "false"}});
            }
        }
    }
    return report;
}

Status StripeStore::verify_parity() {
    auto lk = reader_lock();
    const auto& code = scheme_.code();
    for (StripeId s = 0; s < stripes_; ++s) {
        if (unencoded_.count(s) != 0) continue;  // parity-pending: nothing to verify yet
        for (int g = 0; g < scheme_.layout().groups_per_stripe(); ++g) {
            std::vector<AlignedBuffer> bufs;
            std::vector<ByteSpan> spans(static_cast<std::size_t>(code.n()));
            std::vector<ConstByteSpan> data(static_cast<std::size_t>(code.k()));
            bufs.reserve(static_cast<std::size_t>(code.n()));
            for (int p = 0; p < code.n(); ++p) {
                bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                spans[static_cast<std::size_t>(p)] = bufs.back().span();
            }
            auto status = executor_.read_group(s, g, spans);
            if (!status.ok()) return status;
            for (int p = 0; p < code.k(); ++p) data[static_cast<std::size_t>(p)] = bufs[static_cast<std::size_t>(p)].span();
            std::vector<AlignedBuffer> expect_bufs;
            std::vector<ByteSpan> expect(static_cast<std::size_t>(code.m()));
            for (int p = 0; p < code.m(); ++p) {
                expect_bufs.emplace_back(static_cast<std::size_t>(element_bytes_));
                expect[static_cast<std::size_t>(p)] = expect_bufs.back().span();
            }
            code.encode(data, expect);
            for (int p = 0; p < code.m(); ++p) {
                const auto& stored = bufs[static_cast<std::size_t>(code.k() + p)];
                if (std::memcmp(stored.data(), expect_bufs[static_cast<std::size_t>(p)].data(),
                                static_cast<std::size_t>(element_bytes_)) != 0) {
                    return Error::internal("parity mismatch at stripe " + std::to_string(s) + " group " +
                                           std::to_string(g) + " parity " + std::to_string(p));
                }
            }
        }
    }
    return Status::success();
}

}  // namespace ecfrm::store
