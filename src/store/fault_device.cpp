#include "store/fault_device.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <utility>

#include "obs/json.h"
#include "store/disk.h"

namespace ecfrm::store {
namespace {

/// %.17g shortest-round-trip double, matching the exporters' convention.
std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/// The filter a rule actually matches with: torn writes only ever happen
/// on writes and bit flips are surfaced on reads, whatever the rule says.
FaultOp effective_op(const FaultRule& rule) {
    if (rule.kind == FaultKind::torn_write) return FaultOp::write;
    if (rule.kind == FaultKind::bit_flip) return FaultOp::read;
    return rule.op;
}

}  // namespace

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::fail_stop: return "fail_stop";
        case FaultKind::transient: return "transient";
        case FaultKind::torn_write: return "torn_write";
        case FaultKind::bit_flip: return "bit_flip";
        case FaultKind::latency: break;
    }
    return "latency";
}

Result<FaultKind> parse_fault_kind(std::string_view name) {
    if (name == "fail_stop") return FaultKind::fail_stop;
    if (name == "transient") return FaultKind::transient;
    if (name == "torn_write") return FaultKind::torn_write;
    if (name == "bit_flip") return FaultKind::bit_flip;
    if (name == "latency") return FaultKind::latency;
    return Error::invalid("unknown fault kind: " + std::string(name));
}

const char* to_string(FaultOp op) {
    switch (op) {
        case FaultOp::read: return "read";
        case FaultOp::write: return "write";
        case FaultOp::any: break;
    }
    return "any";
}

std::string FaultPlan::to_json() const {
    std::string out = "{\"schema\":\"ecfrm.faultplan.v1\",";
    // Seed is emitted as a decimal string: JSON numbers are doubles and
    // would silently round seeds above 2^53.
    out += "\"seed\":\"" + std::to_string(seed) + "\",";
    out += "\"max_burst\":" + std::to_string(max_burst) + ",";
    out += "\"rules\":[";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const FaultRule& r = rules[i];
        if (i > 0) out += ",";
        out += "{\"kind\":\"" + std::string(to_string(r.kind)) + "\"";
        out += ",\"disk\":" + std::to_string(r.disk);
        out += ",\"op\":\"" + std::string(to_string(r.op)) + "\"";
        out += ",\"first_op\":" + std::to_string(r.first_op);
        out += ",\"count\":" + std::to_string(r.count);
        out += ",\"probability\":" + fmt_double(r.probability);
        out += ",\"latency_ms\":" + fmt_double(r.latency_ms);
        out += ",\"torn_fraction\":" + fmt_double(r.torn_fraction);
        out += ",\"flip_offset\":" + std::to_string(r.flip_offset);
        out += std::string(",\"detected\":") + (r.detected ? "true" : "false");
        out += "}";
    }
    out += "]}";
    return out;
}

Result<FaultPlan> FaultPlan::from_json(std::string_view text) {
    auto doc = obs::json::parse(text);
    if (!doc.ok()) return doc.error();
    const obs::json::Value& root = doc.value();
    if (!root.is_object()) return Error::invalid("fault plan: top level must be an object");
    const std::string schema = root.string_or("schema", "");
    if (schema != "ecfrm.faultplan.v1") {
        return Error::invalid("fault plan: unsupported schema \"" + schema + "\"");
    }

    FaultPlan plan;
    if (const obs::json::Value* seed = root.find("seed")) {
        if (seed->is_string()) {
            plan.seed = std::strtoull(seed->as_string().c_str(), nullptr, 10);
        } else if (seed->is_number()) {
            plan.seed = static_cast<std::uint64_t>(seed->as_number());
        } else {
            return Error::invalid("fault plan: seed must be a string or number");
        }
    }
    plan.max_burst = static_cast<int>(root.number_or("max_burst", 0.0));

    const obs::json::Value* rules = root.find("rules");
    if (rules == nullptr || !rules->is_array()) {
        return Error::invalid("fault plan: missing \"rules\" array");
    }
    for (const obs::json::Value& item : rules->items()) {
        if (!item.is_object()) return Error::invalid("fault plan: each rule must be an object");
        FaultRule r;
        auto kind = parse_fault_kind(item.string_or("kind", ""));
        if (!kind.ok()) return kind.error();
        r.kind = kind.value();
        r.disk = static_cast<DiskId>(item.number_or("disk", -1.0));
        const std::string op = item.string_or("op", "any");
        if (op == "any") {
            r.op = FaultOp::any;
        } else if (op == "read") {
            r.op = FaultOp::read;
        } else if (op == "write") {
            r.op = FaultOp::write;
        } else {
            return Error::invalid("fault plan: unknown op filter \"" + op + "\"");
        }
        r.first_op = static_cast<std::int64_t>(item.number_or("first_op", 0.0));
        r.count = static_cast<std::int64_t>(item.number_or("count", 1.0));
        r.probability = item.number_or("probability", 1.0);
        r.latency_ms = item.number_or("latency_ms", 0.0);
        r.torn_fraction = item.number_or("torn_fraction", 0.5);
        r.flip_offset = static_cast<std::int64_t>(item.number_or("flip_offset", 0.0));
        if (const obs::json::Value* detected = item.find("detected")) {
            r.detected = detected->is_bool() && detected->as_bool();
        }
        plan.rules.push_back(r);
    }
    return plan;
}

FaultDevice::FaultDevice(std::unique_ptr<BlockDevice> inner, const FaultPlan& plan, DiskId disk)
    : inner_(std::move(inner)),
      disk_(disk),
      max_burst_(plan.max_burst),
      rng_(plan.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(disk + 1))) {
    for (const FaultRule& rule : plan.rules) {
        if (rule.disk == -1 || rule.disk == disk) rules_.push_back(rule);
    }
}

FaultDevice::Decision FaultDevice::decide(bool is_read, RowId row, std::int64_t* op_seq) const {
    const std::int64_t seq_any = read_ops_ + write_ops_;
    const std::int64_t seq_dir = is_read ? read_ops_ : write_ops_;
    if (is_read) {
        ++read_ops_;
    } else {
        ++write_ops_;
    }
    *op_seq = seq_dir;

    bool probabilistic_fired = false;
    Decision decision;
    for (const FaultRule& rule : rules_) {
        const FaultOp filter = effective_op(rule);
        if (filter == FaultOp::read && !is_read) continue;
        if (filter == FaultOp::write && is_read) continue;
        const std::int64_t seq = (filter == FaultOp::any) ? seq_any : seq_dir;
        if (seq < rule.first_op || seq >= rule.first_op + rule.count) continue;
        if (rule.probability < 1.0) {
            // Draw before the burst check so the stream stays aligned
            // whether or not the cap suppresses this injection.
            const bool hit = rng_.next_double() < rule.probability;
            if (!hit) continue;
            if (max_burst_ > 0 && burst_ >= max_burst_) continue;
            probabilistic_fired = true;
        }
        decision.fired = true;
        decision.kind = rule.kind;
        decision.rule = &rule;
        *op_seq = seq;
        break;
    }
    burst_ = probabilistic_fired ? burst_ + 1 : 0;
    if (decision.fired) {
        events_.push_back(Event{*op_seq, decision.kind, is_read, row});
    }
    return decision;
}

Status FaultDevice::read(RowId row, ByteSpan out) const {
    IoTimer timer(io_stats(), /*is_read=*/true, static_cast<std::int64_t>(out.size()));
    double stall_ms = 0.0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (tripped_) {
            Status status = Error::disk_failed("fault-injected fail-stop");
            timer.done(status);
            return status;
        }
        if (detected_rows_.count(row) != 0) {
            Status status = Error::corrupt("device EDC: row damaged by injected bit flip");
            timer.done(status);
            return status;
        }
        std::int64_t seq = 0;
        const Decision d = decide(/*is_read=*/true, row, &seq);
        if (d.fired) {
            switch (d.kind) {
                case FaultKind::fail_stop: {
                    tripped_ = true;
                    inner_->fail();
                    Status status = Error::disk_failed("fault-injected fail-stop");
                    timer.done(status);
                    return status;
                }
                case FaultKind::transient: {
                    Status status = Error::io("fault-injected transient read error");
                    timer.done(status);
                    return status;
                }
                case FaultKind::bit_flip: {
                    const std::int64_t eb = inner_->element_bytes();
                    const std::size_t offset =
                        static_cast<std::size_t>(((d.rule->flip_offset % eb) + eb) % eb);
                    // Rows never written can't be flipped; the rule is a no-op there.
                    (void)inner_->corrupt_byte(row, offset);
                    if (d.rule->detected) {
                        detected_rows_.insert(row);
                        Status status =
                            Error::corrupt("device EDC: row damaged by injected bit flip");
                        timer.done(status);
                        return status;
                    }
                    break;  // silent: the read below serves the flipped bytes
                }
                case FaultKind::latency:
                    stall_ms = d.rule->latency_ms;
                    break;
                case FaultKind::torn_write:
                    break;  // unreachable: effective_op() pins torn_write to writes
            }
        }
    }
    if (stall_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall_ms));
    }
    Status status = inner_->read(row, out);
    timer.done(status);
    return status;
}

Status FaultDevice::write(RowId row, ConstByteSpan data) {
    IoTimer timer(io_stats(), /*is_read=*/false, static_cast<std::int64_t>(data.size()));
    double stall_ms = 0.0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (tripped_) {
            Status status = Error::disk_failed("fault-injected fail-stop");
            timer.done(status);
            return status;
        }
        std::int64_t seq = 0;
        const Decision d = decide(/*is_read=*/false, row, &seq);
        if (d.fired) {
            switch (d.kind) {
                case FaultKind::fail_stop: {
                    tripped_ = true;
                    inner_->fail();
                    Status status = Error::disk_failed("fault-injected fail-stop");
                    timer.done(status);
                    return status;
                }
                case FaultKind::transient: {
                    Status status = Error::io("fault-injected transient write error");
                    timer.done(status);
                    return status;
                }
                case FaultKind::torn_write: {
                    // A prefix of the payload lands over whatever the row
                    // held before; the op still reports failure, exactly
                    // like a crash mid-write.
                    const auto total = static_cast<std::int64_t>(data.size());
                    std::int64_t landed = static_cast<std::int64_t>(
                        static_cast<double>(total) * d.rule->torn_fraction);
                    landed = std::clamp<std::int64_t>(landed, 1, total - 1);
                    std::vector<std::uint8_t> merged(static_cast<std::size_t>(total), 0);
                    if (row < inner_->rows()) {
                        (void)inner_->read(row, ByteSpan(merged));
                    }
                    std::copy(data.begin(), data.begin() + landed, merged.begin());
                    (void)inner_->write(row, ConstByteSpan(merged));
                    Status status = Error::io("fault-injected torn write");
                    timer.done(status);
                    return status;
                }
                case FaultKind::latency:
                    stall_ms = d.rule->latency_ms;
                    break;
                case FaultKind::bit_flip:
                    break;  // unreachable: effective_op() pins bit_flip to reads
            }
        }
    }
    if (stall_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall_ms));
    }
    Status status = inner_->write(row, data);
    timer.done(status);
    return status;
}

void FaultDevice::fail() {
    std::lock_guard<std::mutex> lock(mu_);
    tripped_ = true;
    inner_->fail();
}

void FaultDevice::replace() {
    std::lock_guard<std::mutex> lock(mu_);
    tripped_ = false;
    detected_rows_.clear();
    inner_->replace();
}

bool FaultDevice::failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tripped_ || inner_->failed();
}

std::vector<FaultDevice::Event> FaultDevice::events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::int64_t FaultDevice::read_ops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return read_ops_;
}

std::int64_t FaultDevice::write_ops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return write_ops_;
}

std::function<Result<std::unique_ptr<BlockDevice>>(int)> faulty_memory_factory(
    std::int64_t element_bytes, const FaultPlan& plan) {
    return [element_bytes, plan](int index) -> Result<std::unique_ptr<BlockDevice>> {
        return std::unique_ptr<BlockDevice>(std::make_unique<FaultDevice>(
            std::make_unique<Disk>(element_bytes), plan, static_cast<DiskId>(index)));
    };
}

}  // namespace ecfrm::store
