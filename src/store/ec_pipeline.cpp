#include "store/ec_pipeline.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

namespace ecfrm::store {

const char* repair_policy_name(RepairPolicy policy) {
    switch (policy) {
        case RepairPolicy::immediate: return "immediate";
        case RepairPolicy::delayed: return "delayed";
        case RepairPolicy::threshold: return "threshold";
    }
    return "unknown";
}

Result<RepairPolicy> parse_repair_policy(const std::string& name) {
    if (name == "immediate") return RepairPolicy::immediate;
    if (name == "delayed") return RepairPolicy::delayed;
    if (name == "threshold") return RepairPolicy::threshold;
    return Error::invalid("unknown repair policy '" + name +
                          "' (expected immediate, delayed or threshold)");
}

EcPipeline::EcPipeline(StripeStore& store, ThreadPool* pool, PipelineOptions options)
    : store_(store), pool_(pool), options_(std::move(options)) {
    repair_tokens_ = options_.repair_burst_rows;
}

EcPipeline::~EcPipeline() {
    {
        std::unique_lock<std::mutex> lock(mu_);
        // Drain the encode backlog first: pool workers hold retained
        // stripe buffers and call back into bookkeeping under mu_.
        cv_.wait(lock, [&] { return pending_.empty(); });
        stop_ = true;
    }
    cv_.notify_all();
    if (repair_thread_.joinable()) repair_thread_.join();
}

double EcPipeline::steady_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void EcPipeline::publish_depth_locked() {
    if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(pending_.size()));
}

Status EcPipeline::append(ConstByteSpan data) {
    const std::size_t stripe_bytes = static_cast<std::size_t>(store_.stripe_data_bytes());
    std::unique_lock<std::mutex> lock(mu_);
    tail_.insert(tail_.end(), data.begin(), data.end());
    while (tail_.size() >= stripe_bytes) {
        auto buf = std::make_shared<std::vector<std::uint8_t>>(
            tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(stripe_bytes));
        tail_.erase(tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(stripe_bytes));
        auto st = commit_stripe_locked(lock, std::move(buf),
                                       static_cast<std::int64_t>(stripe_bytes));
        if (!st.ok()) return st;
    }
    return Status::success();
}

Status EcPipeline::flush() {
    const std::size_t stripe_bytes = static_cast<std::size_t>(store_.stripe_data_bytes());
    std::unique_lock<std::mutex> lock(mu_);
    if (!tail_.empty()) {
        const std::int64_t user_bytes = static_cast<std::int64_t>(tail_.size());
        tail_.resize(stripe_bytes, 0);
        auto buf = std::make_shared<std::vector<std::uint8_t>>(std::move(tail_));
        tail_.clear();
        auto st = commit_stripe_locked(lock, std::move(buf), user_bytes);
        if (!st.ok()) return st;
    }
    cv_.wait(lock, [&] { return pending_.empty(); });
    return first_encode_error_;
}

Status EcPipeline::quiesce() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_.empty(); });
    return first_encode_error_;
}

Status EcPipeline::commit_stripe_locked(std::unique_lock<std::mutex>& lock,
                                        std::shared_ptr<std::vector<std::uint8_t>> buf,
                                        std::int64_t user_bytes) {
    // Watermark check BEFORE the commit: at the watermark this thread
    // pays for an encode itself instead of growing the durability debt.
    const bool sync = pool_ == nullptr || pending_.size() >= options_.max_pending_stripes;
    auto committed = store_.commit_data_stripe(
        ConstByteSpan(buf->data(), buf->size()), user_bytes);
    if (!committed.ok()) return committed.error();
    const StripeId stripe = committed.value();
    pending_.emplace(stripe, buf);
    publish_depth_locked();
    if (sync) {
        ++sync_encodes_;
        if (sync_encodes_counter_ != nullptr) sync_encodes_counter_->add(1);
        // Encode without mu_: async workers need it to retire their own
        // stripes, and a long encode must not freeze snapshots.
        lock.unlock();
        auto st = store_.encode_stripe_parity(stripe, ConstByteSpan(buf->data(), buf->size()));
        lock.lock();
        pending_.erase(stripe);
        publish_depth_locked();
        if (!st.ok() && first_encode_error_.ok()) first_encode_error_ = st;
        cv_.notify_all();
        return st;
    }
    pool_->submit([this, stripe, buf = std::move(buf)] { encode_one(stripe, *buf); });
    return Status::success();
}

void EcPipeline::encode_one(StripeId stripe, const std::vector<std::uint8_t>& buf) {
    auto st = store_.encode_stripe_parity(stripe, ConstByteSpan(buf.data(), buf.size()));
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(stripe);
    ++encoded_stripes_;
    if (encoded_counter_ != nullptr) encoded_counter_->add(1);
    if (!st.ok() && first_encode_error_.ok()) first_encode_error_ = st;
    publish_depth_locked();
    cv_.notify_all();
}

Status EcPipeline::request_repair(DiskId disk) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Error::invalid("request_repair on a stopped pipeline");
    repair_queue_.push_back(RepairJob{disk, steady_seconds()});
    if (!repair_thread_.joinable()) {
        repair_thread_ = std::thread([this] { repair_loop(); });
    }
    cv_.notify_all();
    return Status::success();
}

Status EcPipeline::wait_repairs() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return repair_queue_.empty() && !repair_active_; });
    return first_repair_error_;
}

void EcPipeline::repair_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_.wait(lock, [&] { return stop_ || !repair_queue_.empty(); });
        if (stop_) return;
        RepairJob job = repair_queue_.front();
        repair_queue_.pop_front();
        repair_active_ = true;
        lock.unlock();
        run_repair(job);
        lock.lock();
        repair_active_ = false;
        if (repair_queue_.empty()) repair_triggered_ = false;  // round drained
        cv_.notify_all();
    }
}

bool EcPipeline::stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stop_;
}

bool EcPipeline::foreground_burning() const {
    if (options_.yield_burn_threshold <= 0.0) return false;
    obs::RequestForensics* fg = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        fg = foreground_;
    }
    if (fg == nullptr) return false;
    const auto normal = fg->slo_snapshot(obs::RequestClass::normal);
    const auto degraded = fg->slo_snapshot(obs::RequestClass::degraded);
    return std::max(normal.fast_burn, degraded.fast_burn) > options_.yield_burn_threshold;
}

void EcPipeline::record_repair_error(const Error& error) {
    std::lock_guard<std::mutex> lock(mu_);
    ++repairs_failed_;
    if (first_repair_error_.ok()) first_repair_error_ = error;
}

void EcPipeline::run_repair(RepairJob job) {
    const auto poll = std::chrono::duration<double, std::milli>(
        options_.poll_interval_ms > 0.0 ? options_.poll_interval_ms : 1.0);

    // Policy gate: when is this rebuild allowed to start?
    if (options_.repair_policy == RepairPolicy::delayed) {
        while (!stopped() && steady_seconds() < job.requested_at + options_.repair_delay_seconds) {
            std::this_thread::sleep_for(poll);
        }
    } else if (options_.repair_policy == RepairPolicy::threshold) {
        // Failed plus mid-rebuild disks count toward the threshold, and
        // once a round triggers it stays open until the queue drains:
        // otherwise the last queued disk of a 2-disk round would wait
        // forever for a second failure that was already repaired.
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (repair_triggered_) break;
            }
            if (stopped()) break;
            const std::size_t down =
                store_.failed_disks().size() + store_.rebuilding_disks().size();
            if (static_cast<int>(down) >= options_.repair_min_failed) {
                std::lock_guard<std::mutex> lock(mu_);
                repair_triggered_ = true;
                break;
            }
            std::this_thread::sleep_for(poll);
        }
    }
    if (stopped()) {
        record_repair_error(Error::invalid("repair abandoned (pipeline shutdown)"));
        return;
    }

    // A parity-pending stripe cannot be rebuilt; drain the encode
    // backlog, then race new data-only commits with a retry loop.
    Status began = Status::success();
    for (;;) {
        if (stopped()) {
            record_repair_error(Error::invalid("repair abandoned (pipeline shutdown)"));
            return;
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] { return stop_ || pending_.empty(); });
            if (stop_) {
                lock.unlock();
                record_repair_error(Error::invalid("repair abandoned (pipeline shutdown)"));
                return;
            }
        }
        began = store_.begin_rebuild(job.disk);
        if (began.ok()) break;
        if (store_.unencoded_stripes() > 0) {
            // A commit slipped in between our drain and begin_rebuild;
            // wait for its encode and try again.
            std::this_thread::sleep_for(poll);
            continue;
        }
        record_repair_error(began.error());
        return;
    }

    auto target = store_.rebuild_target_rows(job.disk);
    if (!target.ok()) {
        (void)store_.abort_rebuild(job.disk);
        record_repair_error(target.error());
        return;
    }
    const RowId rows = target.value();
    {
        std::lock_guard<std::mutex> lock(mu_);
        repair_rows_total_ += rows;
    }

    const bool throttled =
        options_.repair_policy != RepairPolicy::immediate && options_.repair_rows_per_second > 0.0;
    const bool yielding = options_.repair_policy == RepairPolicy::threshold;
    double last_refill = steady_seconds();

    RowId next = 0;
    while (next < rows) {
        if (stopped()) {
            (void)store_.abort_rebuild(job.disk);
            record_repair_error(Error::invalid("repair aborted (pipeline shutdown)"));
            return;
        }
        const RowId chunk = std::min<RowId>(options_.repair_chunk_rows > 0
                                                ? options_.repair_chunk_rows
                                                : rows,
                                            rows - next);
        if (yielding && foreground_burning()) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++repair_yields_;
                if (repair_yields_counter_ != nullptr) repair_yields_counter_->add(1);
            }
            std::this_thread::sleep_for(poll);
            last_refill = steady_seconds();  // no token accrual while yielding
            continue;
        }
        if (throttled) {
            const double now = steady_seconds();
            std::unique_lock<std::mutex> lock(mu_);
            repair_tokens_ = std::min(options_.repair_burst_rows,
                                      repair_tokens_ +
                                          options_.repair_rows_per_second * (now - last_refill));
            last_refill = now;
            if (tokens_gauge_ != nullptr) tokens_gauge_->set(repair_tokens_);
            if (repair_tokens_ < static_cast<double>(chunk)) {
                ++repair_waits_;
                lock.unlock();
                std::this_thread::sleep_for(poll);
                continue;
            }
            repair_tokens_ -= static_cast<double>(chunk);
            if (tokens_gauge_ != nullptr) tokens_gauge_->set(repair_tokens_);
        }
        auto stats = store_.rebuild_rows(job.disk, next, chunk);
        if (!stats.ok()) {
            (void)store_.abort_rebuild(job.disk);
            record_repair_error(stats.error());
            return;
        }
        next += chunk;
        {
            std::lock_guard<std::mutex> lock(mu_);
            repair_rows_done_ += chunk;
            if (repair_rows_counter_ != nullptr) repair_rows_counter_->add(chunk);
        }
    }

    auto finished = store_.finish_rebuild(job.disk);
    if (!finished.ok()) {
        (void)store_.abort_rebuild(job.disk);
        record_repair_error(finished.error());
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++repairs_done_;
}

EcPipeline::Snapshot EcPipeline::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    s.pending_stripes = pending_.size();
    s.max_pending_stripes = options_.max_pending_stripes;
    s.encoded_stripes = encoded_stripes_;
    s.sync_encodes = sync_encodes_;
    s.policy = options_.repair_policy;
    s.repairs_queued = static_cast<std::int64_t>(repair_queue_.size());
    s.repairs_active = repair_active_ ? 1 : 0;
    s.repairs_done = repairs_done_;
    s.repairs_failed = repairs_failed_;
    s.repair_rows_done = repair_rows_done_;
    s.repair_rows_total = repair_rows_total_;
    s.repair_tokens = repair_tokens_;
    s.repair_rows_per_second = options_.repair_rows_per_second;
    s.repair_yields = repair_yields_;
    s.repair_waits = repair_waits_;
    return s;
}

std::string EcPipeline::to_json() const {
    const Snapshot s = snapshot();
    std::ostringstream out;
    out << "{\"schema\":\"ecfrm.pipeline.v1\""
        << ",\"policy\":\"" << repair_policy_name(s.policy) << "\""
        << ",\"pending_stripes\":" << s.pending_stripes
        << ",\"max_pending_stripes\":" << s.max_pending_stripes
        << ",\"encoded_stripes\":" << s.encoded_stripes
        << ",\"sync_encodes\":" << s.sync_encodes << ",\"repair\":{"
        << "\"queued\":" << s.repairs_queued << ",\"active\":" << s.repairs_active
        << ",\"done\":" << s.repairs_done << ",\"failed\":" << s.repairs_failed
        << ",\"rows_done\":" << s.repair_rows_done << ",\"rows_total\":" << s.repair_rows_total
        << ",\"tokens\":" << s.repair_tokens
        << ",\"rows_per_second\":" << s.repair_rows_per_second
        << ",\"yields\":" << s.repair_yields << ",\"waits\":" << s.repair_waits << "}}";
    return out.str();
}

void EcPipeline::attach_observability(obs::MetricRegistry* metrics,
                                      obs::RequestForensics* foreground) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
    foreground_ = foreground;
    if (metrics == nullptr) {
        depth_gauge_ = nullptr;
        tokens_gauge_ = nullptr;
        sync_encodes_counter_ = nullptr;
        encoded_counter_ = nullptr;
        repair_rows_counter_ = nullptr;
        repair_yields_counter_ = nullptr;
        return;
    }
    depth_gauge_ = &metrics->gauge("ecfrm_pipeline_depth");
    metrics->describe("ecfrm_pipeline_depth", "Stripes committed data-only, parity encode pending");
    tokens_gauge_ = &metrics->gauge("ecfrm_pipeline_repair_tokens");
    metrics->describe("ecfrm_pipeline_repair_tokens", "Rebuild token bucket level, rows");
    sync_encodes_counter_ = &metrics->counter("ecfrm_pipeline_sync_encodes_total");
    metrics->describe("ecfrm_pipeline_sync_encodes_total",
                      "Watermark-forced synchronous parity encodes");
    encoded_counter_ = &metrics->counter("ecfrm_pipeline_encoded_stripes_total");
    metrics->describe("ecfrm_pipeline_encoded_stripes_total",
                      "Background parity encodes completed");
    repair_rows_counter_ = &metrics->counter("ecfrm_pipeline_repair_rows_total");
    metrics->describe("ecfrm_pipeline_repair_rows_total", "Rows rebuilt by the repair scheduler");
    repair_yields_counter_ = &metrics->counter("ecfrm_pipeline_repair_yields_total");
    metrics->describe("ecfrm_pipeline_repair_yields_total",
                      "Rebuild steps deferred to a burning foreground");
    publish_depth_locked();
    if (tokens_gauge_ != nullptr) tokens_gauge_->set(repair_tokens_);
}

}  // namespace ecfrm::store
