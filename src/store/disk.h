// One simulated in-memory storage device: a growable array of fixed-size
// element slots plus a failure flag. Thread-safe; reads copy out under the
// lock so callers never hold references into resizable storage.
#pragma once

#include <mutex>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/result.h"
#include "common/types.h"
#include "store/block_device.h"

namespace ecfrm::store {

class Disk final : public BlockDevice {
  public:
    explicit Disk(std::int64_t element_bytes) : element_bytes_(element_bytes) {}

    std::int64_t element_bytes() const override { return element_bytes_; }

    /// Overwrite the slot at `row` (grows the disk as needed).
    Status write(RowId row, ConstByteSpan data) override;

    /// Copy the slot at `row` into `out`. Fails when the disk is failed,
    /// the row was never written, or `out` has the wrong size.
    Status read(RowId row, ByteSpan out) const override;

    /// Vectored batch ops: one lock acquisition for the whole batch
    /// instead of one per element.
    Status read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                      std::size_t* completed = nullptr) const override;
    Status write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                       std::size_t* completed = nullptr) override;

    /// Mark the device failed: reads fail and all content is dropped
    /// (a failed-and-replaced drive comes back empty).
    void fail() override;

    /// Bring a replacement device online (empty).
    void replace() override;

    /// Failure-injection hook: flip one stored byte in place (silent
    /// corruption — the disk still serves the row without error). Fails if
    /// the row was never written or the disk is failed.
    Status corrupt_byte(RowId row, std::size_t offset) override;

    bool failed() const override;

    /// Rows currently allocated (monotone high-water mark of writes).
    RowId rows() const override;

  private:
    mutable std::mutex mu_;
    std::int64_t element_bytes_;
    std::vector<AlignedBuffer> slots_;
    std::vector<bool> written_;
    bool failed_ = false;
};

}  // namespace ecfrm::store
