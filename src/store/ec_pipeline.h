// EcPipeline: the online write/repair stage in front of a StripeStore.
//
// Write side (the paper's online-encoding regime): appends land as
// data-only stripe commits immediately — the caller observes commit
// latency without the parity encode on its critical path — while pool
// workers encode and flush parity from retained stripe buffers behind a
// bounded pending-EC queue. When the backlog reaches the watermark the
// appending thread encodes synchronously instead (backpressure), so the
// durability debt is always bounded by max_pending_stripes.
//
// Repair side: a background scheduler drives chunked online rebuilds
// (StripeStore::begin_rebuild / rebuild_rows / finish_rebuild) under a
// policy:
//   immediate  start at once, unthrottled — the naive comparator that
//              lets rebuild traffic trample foreground reads;
//   delayed    start after repair_delay_seconds, rate-limited;
//   threshold  start once >= repair_min_failed disks are down,
//              rate-limited by a token bucket and yielding to the
//              foreground whenever its fast SLO burn rate spikes.
// The encode backlog is drained before a rebuild begins (a parity-pending
// stripe cannot be rebuilt), and every rebuilt chunk flows through the
// same PlanExecutor write path as foreground commits.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "store/stripe_store.h"

namespace ecfrm::store {

enum class RepairPolicy { immediate, delayed, threshold };

const char* repair_policy_name(RepairPolicy policy);
Result<RepairPolicy> parse_repair_policy(const std::string& name);

struct PipelineOptions {
    /// Encode-queue watermark: appends commit data-only while fewer than
    /// this many stripes are parity-pending; at the watermark the
    /// appending thread encodes synchronously (backpressure).
    std::size_t max_pending_stripes = 8;

    RepairPolicy repair_policy = RepairPolicy::threshold;
    /// delayed: seconds between the repair request and the rebuild start.
    double repair_delay_seconds = 0.0;
    /// threshold: failed/mid-rebuild disks required before rebuilding.
    int repair_min_failed = 1;
    /// Rebuild rate limit in rows/second (<= 0: unthrottled). Ignored by
    /// the immediate policy, which is deliberately unthrottled.
    double repair_rows_per_second = 0.0;
    /// Token-bucket burst, rows.
    double repair_burst_rows = 32.0;
    /// Rows rebuilt per scheduler step (one rebuild_rows call).
    RowId repair_chunk_rows = 8;
    /// threshold: pause rebuild steps while the foreground read classes'
    /// fast SLO burn rate exceeds this (0 disables yielding). Needs a
    /// forensics attached via attach_observability.
    double yield_burn_threshold = 2.0;
    /// Scheduler sleep while gated (tokens, delay, yield), milliseconds.
    double poll_interval_ms = 1.0;
};

class EcPipeline {
  public:
    /// `store` and `pool` must outlive the pipeline. A null pool makes
    /// every encode synchronous (the pipeline degenerates to
    /// StripeStore::append semantics with commit/encode split costs).
    EcPipeline(StripeStore& store, ThreadPool* pool, PipelineOptions options = {});

    /// Quiesces the encode backlog and joins the repair scheduler.
    ~EcPipeline();

    EcPipeline(const EcPipeline&) = delete;
    EcPipeline& operator=(const EcPipeline&) = delete;

    const PipelineOptions& options() const { return options_; }

    /// Append user bytes. Full stripes commit data-only immediately and
    /// queue their parity encode; the tail buffers until flush().
    Status append(ConstByteSpan data);

    /// Commit the padded tail, then drain the encode backlog: after a
    /// successful flush every committed stripe has parity on the devices.
    Status flush();

    /// Block until the encode backlog is empty. Fails with the first
    /// encode error recorded since construction.
    Status quiesce();

    /// Queue a repair of `disk` (which the caller has observed failed).
    /// The scheduler applies the configured policy; wait_repairs() joins.
    Status request_repair(DiskId disk);

    /// Block until every queued repair finished (successfully or not).
    /// Returns the first repair error recorded, if any.
    Status wait_repairs();

    struct Snapshot {
        std::size_t pending_stripes = 0;     // parity encodes queued or running
        std::size_t max_pending_stripes = 0;
        std::int64_t encoded_stripes = 0;    // async encodes completed
        std::int64_t sync_encodes = 0;       // watermark-forced synchronous encodes
        RepairPolicy policy = RepairPolicy::threshold;
        std::int64_t repairs_queued = 0;
        std::int64_t repairs_active = 0;
        std::int64_t repairs_done = 0;
        std::int64_t repairs_failed = 0;
        std::int64_t repair_rows_done = 0;
        std::int64_t repair_rows_total = 0;  // target rows across started rebuilds
        double repair_tokens = 0.0;
        double repair_rows_per_second = 0.0;
        std::int64_t repair_yields = 0;      // chunks deferred to a burning foreground
        std::int64_t repair_waits = 0;       // chunks deferred waiting for tokens
    };
    Snapshot snapshot() const;

    /// One-line JSON document (schema ecfrm.pipeline.v1) for the CLI and
    /// the /pipeline exposition route.
    std::string to_json() const;

    /// Attach pipeline gauges (ecfrm_pipeline_depth,
    /// ecfrm_pipeline_repair_tokens) and counters, and the foreground
    /// forensics whose fast burn rate gates threshold-policy rebuild
    /// steps. Null detaches.
    void attach_observability(obs::MetricRegistry* metrics,
                              obs::RequestForensics* foreground = nullptr);

  private:
    struct RepairJob {
        DiskId disk = -1;
        double requested_at = 0.0;  // steady seconds
    };

    /// Commit one full retained stripe buffer (caller holds `lock` on
    /// mu_): data-only commit, then either queue the parity encode or —
    /// at the watermark / with no pool — encode synchronously with the
    /// lock dropped.
    Status commit_stripe_locked(std::unique_lock<std::mutex>& lock,
                                std::shared_ptr<std::vector<std::uint8_t>> buf,
                                std::int64_t user_bytes);
    void encode_one(StripeId stripe, const std::vector<std::uint8_t>& buf);
    void repair_loop();
    void run_repair(RepairJob job);
    bool stopped() const;
    bool foreground_burning() const;
    void record_repair_error(const Error& error);
    double steady_seconds() const;
    void publish_depth_locked();

    StripeStore& store_;
    ThreadPool* pool_;
    const PipelineOptions options_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::uint8_t> tail_;
    std::map<StripeId, std::shared_ptr<std::vector<std::uint8_t>>> pending_;  // retained stripe buffers
    std::int64_t encoded_stripes_ = 0;
    std::int64_t sync_encodes_ = 0;
    Status first_encode_error_ = Status::success();

    std::deque<RepairJob> repair_queue_;
    bool repair_active_ = false;
    bool repair_triggered_ = false;  // threshold round latched open until the queue drains
    std::int64_t repairs_done_ = 0;
    std::int64_t repairs_failed_ = 0;
    std::int64_t repair_rows_done_ = 0;
    std::int64_t repair_rows_total_ = 0;
    std::int64_t repair_yields_ = 0;
    std::int64_t repair_waits_ = 0;
    double repair_tokens_ = 0.0;
    Status first_repair_error_ = Status::success();
    bool stop_ = false;
    std::thread repair_thread_;  // spawned on first request_repair

    obs::MetricRegistry* metrics_ = nullptr;        // guarded by mu_
    obs::RequestForensics* foreground_ = nullptr;   // guarded by mu_
    obs::Gauge* depth_gauge_ = nullptr;
    obs::Gauge* tokens_gauge_ = nullptr;
    obs::Counter* sync_encodes_counter_ = nullptr;
    obs::Counter* encoded_counter_ = nullptr;
    obs::Counter* repair_rows_counter_ = nullptr;
    obs::Counter* repair_yields_counter_ = nullptr;
};

}  // namespace ecfrm::store
