// UringDisk: the fd-based asynchronous file BlockDevice.
//
// Same on-disk format as FileDisk (disk_<i>.dat / disk_<i>.map /
// disk_<i>.failed), so the two backends are interchangeable on the same
// directory; what changes is how batches reach the kernel:
//
//   - positional I/O (pread/pwrite/preadv) instead of stdio streams — no
//     shared stream position, so concurrent readers on one disk do NOT
//     serialize (reads hold only a shared lock);
//   - adjacent rows coalesce into one transfer, and adjacent rows whose
//     destination buffers are also contiguous in memory collapse into a
//     single large read (the zero-copy fast path: an EC-FRM per-disk
//     sequential batch lands in the caller's buffer with one op);
//   - in `uring` mode, a batch's coalesced runs map 1:1 onto io_uring
//     SQEs submitted together (true per-disk in-kernel queue depth), with
//     the data file registered as a fixed file and — when a BufferPool
//     arena is attached — destinations inside the arena issued as
//     registered-buffer fixed reads. The ring layer is a minimal raw
//     syscall shim (no liburing dependency); when the kernel lacks
//     io_uring the device transparently degrades to the pread path.
//
// submit_read_batch() genuinely overlaps: it puts the whole batch in
// flight and completes it in await(), which is how PlanExecutor overlaps
// submission across disks.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/buffer_pool.h"
#include "store/block_device.h"

namespace ecfrm::store {

namespace uring_detail {
class RingPool;  // per-device pool of io_uring instances (uring_disk.cpp)
}

class UringDisk final : public BlockDevice {
  public:
    enum class Mode {
        pread,  // positional syscalls only
        uring,  // io_uring batched submission, pread fallback when absent
    };

    /// Open (or create) the device files for disk `index` under `dir`.
    /// `arena` (optional, must outlive the device) is registered with the
    /// rings so destinations inside it use fixed reads.
    static Result<std::unique_ptr<UringDisk>> open(const std::string& dir, int index,
                                                   std::int64_t element_bytes, Mode mode,
                                                   BufferPool* arena = nullptr);

    ~UringDisk() override;

    std::int64_t element_bytes() const override { return element_bytes_; }
    Status write(RowId row, ConstByteSpan data) override;
    Status read(RowId row, ByteSpan out) const override;
    Status read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                      std::size_t* completed = nullptr) const override;
    Status write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                       std::size_t* completed = nullptr) override;
    std::unique_ptr<AsyncBatch> submit_read_batch(std::span<const RowId> rows,
                                                  std::span<const ByteSpan> outs) const override;
    bool async_reads() const override;
    void fail() override;
    void replace() override;
    bool failed() const override;
    RowId rows() const override;
    Status corrupt_byte(RowId row, std::size_t offset) override;

    /// True when this device actually drives an io_uring (mode uring AND
    /// the kernel provides it AND ring setup succeeded).
    bool uring_active() const;

    const std::string& data_path() const { return data_path_; }

    /// Whether this build/kernel can set up an io_uring at all (cached
    /// runtime probe; false in ECFRM_WITH_URING=OFF builds).
    static bool uring_available();

  private:
    UringDisk(std::string data_path, std::string map_path, std::string failed_path,
              std::int64_t element_bytes, Mode mode, BufferPool* arena);

    Status open_files();
    void close_files();
    Status load_map();
    Status ensure_map(RowId row);  // pad map bytes up to `row` (excl.), exclusive lock held
    Status flush_files();          // fsync both files under ECFRM_FSYNC=1 (counted)

    /// One coalesced transfer: `count` elements starting at batch index
    /// `first`, file offset `offset`. `contiguous` when the destination
    /// buffers also form one memory run (single-iovec fast path).
    struct Run {
        std::size_t first = 0;
        std::size_t count = 0;
        std::int64_t offset = 0;
        bool contiguous = false;
    };
    static std::vector<Run> coalesce(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                                     std::int64_t element_bytes);

    /// Blocking positional read of one run (preadv loop handling partial
    /// transfers). Shared lock held by the caller.
    Status read_run(const Run& run, std::span<const ByteSpan> outs) const;

    class UringBatch;  // AsyncBatch implementation (uring_disk.cpp)

    std::string data_path_;
    std::string map_path_;
    std::string failed_path_;
    std::int64_t element_bytes_;
    Mode mode_;
    BufferPool* arena_;

    /// Guards written_/failed_ and fd lifecycle: reads + in-flight async
    /// batches hold it shared (positional I/O needs no serialization),
    /// writes and fail()/replace() hold it exclusive.
    mutable std::shared_mutex mu_;
    int data_fd_ = -1;
    int map_fd_ = -1;
    std::vector<bool> written_;
    bool failed_ = false;

    std::unique_ptr<uring_detail::RingPool> rings_;
};

}  // namespace ecfrm::store
