// Manifest: the tiny metadata record that makes a FileDisk-backed archive
// reopenable — which code, which layout, element size, and how much data
// has been committed. Stored as key=value lines in <dir>/MANIFEST.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "layout/layout.h"
#include "store/extent.h"

namespace ecfrm::store {

/// A named object stored inside the archive's logical byte stream.
struct ObjectRecord {
    std::string name;  // no ':' or newline characters
    std::int64_t offset = 0;
    std::int64_t bytes = 0;

    friend bool operator==(const ObjectRecord&, const ObjectRecord&) = default;
};

struct Manifest {
    std::string code_spec;                                    // e.g. "rs:6,3"
    layout::LayoutKind kind = layout::LayoutKind::ecfrm;
    std::int64_t element_bytes = 0;
    std::int64_t logical_bytes = 0;
    std::int64_t stripes = 0;
    std::vector<Extent> extents;        // committed user-byte runs, logical order
    std::vector<ObjectRecord> objects;  // named objects, insertion order

    /// Look up an object by name; nullptr when absent.
    const ObjectRecord* find_object(const std::string& name) const;

    /// Write to <dir>/MANIFEST (atomically via rename).
    Status save(const std::string& dir) const;

    /// Load from <dir>/MANIFEST.
    static Result<Manifest> load(const std::string& dir);
};

/// Parse a layout-kind name ("standard" | "rotated" | "ecfrm").
Result<layout::LayoutKind> parse_layout_kind(const std::string& name);

}  // namespace ecfrm::store
