#include "store/file_disk.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace ecfrm::store {

namespace fs = std::filesystem;

namespace {

/// 64-bit file offset of `row` — off_t arithmetic throughout, so >2 GiB
/// device files work even where `long` is 32-bit.
off_t element_offset(RowId row, std::int64_t element_bytes) {
    return static_cast<off_t>(row) * static_cast<off_t>(element_bytes);
}

/// ECFRM_FSYNC=1 upgrades the per-batch fflush to a real fsync (opt-in
/// durability knob; read once per process).
bool fsync_enabled() {
    static const bool enabled = []() {
        const char* v = std::getenv("ECFRM_FSYNC");
        return v != nullptr && v[0] != '\0' && v[0] != '0';
    }();
    return enabled;
}

}  // namespace

FileDisk::FileDisk(std::string data_path, std::string map_path, std::string failed_path,
                   std::int64_t element_bytes)
    : data_path_(std::move(data_path)),
      map_path_(std::move(map_path)),
      failed_path_(std::move(failed_path)),
      element_bytes_(element_bytes) {}

Result<std::unique_ptr<FileDisk>> FileDisk::open(const std::string& dir, int index,
                                                 std::int64_t element_bytes) {
    if (element_bytes <= 0) return Error::invalid("element_bytes must be positive");
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) return Error::io("not a directory: " + dir);

    const std::string stem = dir + "/disk_" + std::to_string(index);
    auto disk = std::unique_ptr<FileDisk>(
        new FileDisk(stem + ".dat", stem + ".map", stem + ".failed", element_bytes));
    disk->failed_ = fs::exists(disk->failed_path_, ec);
    if (!disk->failed_) {
        auto status = disk->open_files();
        if (!status.ok()) return status.error();
        status = disk->load_map();
        if (!status.ok()) return status.error();
    }
    return disk;
}

FileDisk::~FileDisk() { close_files(); }

Status FileDisk::open_files() {
    // "a" then reopen "r+b" so the files exist without truncating them.
    for (const auto& path : {data_path_, map_path_}) {
        std::FILE* touch = std::fopen(path.c_str(), "ab");
        if (touch == nullptr) return Error::io("cannot create " + path);
        std::fclose(touch);
    }
    data_ = std::fopen(data_path_.c_str(), "r+b");
    map_ = std::fopen(map_path_.c_str(), "r+b");
    if (data_ == nullptr || map_ == nullptr) {
        close_files();
        return Error::io("cannot open device files under " + data_path_);
    }
    return Status::success();
}

void FileDisk::close_files() {
    if (data_ != nullptr) {
        std::fclose(data_);
        data_ = nullptr;
    }
    if (map_ != nullptr) {
        std::fclose(map_);
        map_ = nullptr;
    }
}

Status FileDisk::load_map() {
    written_.clear();
    if (std::fseek(map_, 0, SEEK_END) != 0) return Error::io("seek failed on map file");
    const long size = std::ftell(map_);
    if (size < 0) return Error::io("tell failed on map file");
    written_.resize(static_cast<std::size_t>(size), false);
    std::rewind(map_);
    std::vector<char> raw(static_cast<std::size_t>(size));
    if (size > 0 && std::fread(raw.data(), 1, raw.size(), map_) != raw.size()) {
        return Error::io("short read on map file");
    }
    for (std::size_t i = 0; i < raw.size(); ++i) written_[i] = raw[i] != 0;
    return Status::success();
}

Status FileDisk::persist_map_bit(RowId row, bool value) {
    // No flush here: callers batch one flush_files() per write (batch).
    if (fseeko(map_, static_cast<off_t>(row), SEEK_SET) != 0) return Error::io("seek failed on map file");
    const char byte = value ? 1 : 0;
    if (std::fwrite(&byte, 1, 1, map_) != 1) return Error::io("write failed on map file");
    return Status::success();
}

Status FileDisk::flush_files() {
    // One durability point per write (batch): stdio buffers of both files
    // are flushed together, upgraded to fsync under ECFRM_FSYNC=1. Counted
    // so tests can pin "one flush per batch, not per element".
    if (std::fflush(data_) != 0 || std::fflush(map_) != 0) {
        return Error::io("flush failed on device files");
    }
    io_stats().on_flush(2);
    if (fsync_enabled()) {
        if (::fsync(fileno(data_)) != 0 || ::fsync(fileno(map_)) != 0) {
            return Error::io("fsync failed on device files");
        }
        io_stats().on_flush(2);
    }
    return Status::success();
}

Status FileDisk::write(RowId row, ConstByteSpan data) {
    if (row < 0) return Error::range("negative row");
    if (static_cast<std::int64_t>(data.size()) != element_bytes_) {
        return Error::invalid("element size mismatch on write");
    }
    IoTimer timer(io_stats(), /*is_read=*/false, static_cast<std::int64_t>(data.size()));
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("write to failed disk");
        if (fseeko(data_, element_offset(row, element_bytes_), SEEK_SET) != 0) {
            return Error::io("seek failed on data file");
        }
        if (std::fwrite(data.data(), 1, data.size(), data_) != data.size()) {
            return Error::io("write failed on data file");
        }
        // The map file may need zero padding for skipped rows.
        if (static_cast<std::size_t>(row) >= written_.size()) {
            const RowId old = static_cast<RowId>(written_.size());
            written_.resize(static_cast<std::size_t>(row) + 1, false);
            for (RowId r = old; r < row; ++r) {
                auto status = persist_map_bit(r, false);
                if (!status.ok()) return status;
            }
        }
        written_[static_cast<std::size_t>(row)] = true;
        auto status = persist_map_bit(row, true);
        if (!status.ok()) return status;
        return flush_files();
    }();
    timer.done(status);
    return status;
}

Status FileDisk::read(RowId row, ByteSpan out) const {
    if (row < 0) return Error::range("negative row");
    if (static_cast<std::int64_t>(out.size()) != element_bytes_) {
        return Error::invalid("element size mismatch on read");
    }
    IoTimer timer(io_stats(), /*is_read=*/true, static_cast<std::int64_t>(out.size()));
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("read from failed disk");
        if (static_cast<std::size_t>(row) >= written_.size() || !written_[static_cast<std::size_t>(row)]) {
            return Error::range("row never written");
        }
        if (fseeko(data_, element_offset(row, element_bytes_), SEEK_SET) != 0) {
            return Error::io("seek failed on data file");
        }
        if (std::fread(out.data(), 1, out.size(), data_) != out.size()) {
            return Error::io("short read on data file");
        }
        return Status::success();
    }();
    timer.done(status);
    return status;
}

Status FileDisk::read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                            std::size_t* completed) const {
    if (completed != nullptr) *completed = 0;
    if (rows.size() != outs.size()) return Error::invalid("batch rows/buffers size mismatch");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] < 0) return Error::range("negative row");
        if (static_cast<std::int64_t>(outs[i].size()) != element_bytes_) {
            return Error::invalid("element size mismatch on read");
        }
    }
    BatchIoTimer timer(io_stats(), /*is_read=*/true, element_bytes_, rows.size());
    std::size_t done = 0;
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("read from failed disk");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto row = static_cast<std::size_t>(rows[i]);
            if (row >= written_.size() || !written_[row]) return Error::range("row never written");
        }
        std::int64_t runs = 0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            // Seek only at the start of each run of consecutive rows; the
            // stream position is already correct inside a run.
            if (i == 0 || rows[i] != rows[i - 1] + 1) {
                ++runs;
                if (fseeko(data_, element_offset(rows[i], element_bytes_), SEEK_SET) != 0) {
                    return Error::io("seek failed on data file");
                }
            }
            if (std::fread(outs[i].data(), 1, outs[i].size(), data_) != outs[i].size()) {
                return Error::io("short read on data file");
            }
            done = i + 1;
        }
        // Serial backend: the "queue depth" is the coalesced run count —
        // each run is still one blocking transfer at a time.
        io_stats().on_batch_depth(runs);
        return Status::success();
    }();
    timer.done(done, !status.ok());
    if (completed != nullptr) *completed = done;
    return status;
}

Status FileDisk::write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                             std::size_t* completed) {
    if (completed != nullptr) *completed = 0;
    if (rows.size() != payloads.size()) return Error::invalid("batch rows/payloads size mismatch");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] < 0) return Error::range("negative row");
        if (static_cast<std::int64_t>(payloads[i].size()) != element_bytes_) {
            return Error::invalid("element size mismatch on write");
        }
    }
    BatchIoTimer timer(io_stats(), /*is_read=*/false, element_bytes_, rows.size());
    std::size_t done = 0;
    auto status = [&]() -> Status {
        std::lock_guard lk(mu_);
        if (failed_) return Error::disk_failed("write to failed disk");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (i == 0 || rows[i] != rows[i - 1] + 1) {
                if (fseeko(data_, element_offset(rows[i], element_bytes_), SEEK_SET) != 0) {
                    return Error::io("seek failed on data file");
                }
            }
            if (std::fwrite(payloads[i].data(), 1, payloads[i].size(), data_) != payloads[i].size()) {
                return Error::io("write failed on data file");
            }
            const auto row = static_cast<std::size_t>(rows[i]);
            if (row >= written_.size()) {
                const RowId old = static_cast<RowId>(written_.size());
                written_.resize(row + 1, false);
                for (RowId r = old; r < rows[i]; ++r) {
                    auto pad = persist_map_bit(r, false);
                    if (!pad.ok()) return pad;
                }
            }
            written_[row] = true;
            auto bit = persist_map_bit(rows[i], true);
            if (!bit.ok()) return bit;
            done = i + 1;
        }
        return flush_files();
    }();
    timer.done(done, !status.ok());
    if (completed != nullptr) *completed = done;
    return status;
}

void FileDisk::fail() {
    std::lock_guard lk(mu_);
    failed_ = true;
    close_files();
    std::error_code ec;
    fs::remove(data_path_, ec);
    fs::remove(map_path_, ec);
    std::FILE* marker = std::fopen(failed_path_.c_str(), "wb");
    if (marker != nullptr) std::fclose(marker);
    written_.clear();
}

void FileDisk::replace() {
    std::lock_guard lk(mu_);
    failed_ = false;
    std::error_code ec;
    fs::remove(failed_path_, ec);
    fs::remove(data_path_, ec);
    fs::remove(map_path_, ec);
    written_.clear();
    (void)open_files();
}

bool FileDisk::failed() const {
    std::lock_guard lk(mu_);
    return failed_;
}

RowId FileDisk::rows() const {
    std::lock_guard lk(mu_);
    return static_cast<RowId>(written_.size());
}

Status FileDisk::corrupt_byte(RowId row, std::size_t offset) {
    std::lock_guard lk(mu_);
    if (failed_) return Error::disk_failed("corrupting a failed disk");
    if (row < 0 || static_cast<std::size_t>(row) >= written_.size() ||
        !written_[static_cast<std::size_t>(row)]) {
        return Error::range("row never written");
    }
    if (offset >= static_cast<std::size_t>(element_bytes_)) return Error::range("offset beyond element");
    const off_t pos = element_offset(row, element_bytes_) + static_cast<off_t>(offset);
    unsigned char byte = 0;
    if (fseeko(data_, pos, SEEK_SET) != 0 || std::fread(&byte, 1, 1, data_) != 1) {
        return Error::io("read failed during corruption");
    }
    byte ^= 0xff;
    if (fseeko(data_, pos, SEEK_SET) != 0 || std::fwrite(&byte, 1, 1, data_) != 1) {
        return Error::io("write failed during corruption");
    }
    std::fflush(data_);
    return Status::success();
}

}  // namespace ecfrm::store
