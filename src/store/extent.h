// Extent: a committed run of user bytes inside a StripeStore.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ecfrm::store {

/// `bytes` user bytes starting at logical offset `logical_start`, stored
/// from data element `element_start` onwards. Extents arise because
/// flush() zero-pads the current stripe — the next append then starts on
/// a fresh stripe boundary, leaving unused padding elements between
/// extents.
struct Extent {
    std::int64_t logical_start = 0;
    ElementId element_start = 0;
    std::int64_t bytes = 0;

    friend bool operator==(const Extent&, const Extent&) = default;
};

}  // namespace ecfrm::store
