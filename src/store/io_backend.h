// I/O backend selection for file-backed devices.
//
// Three interchangeable backends share one on-disk format:
//   stdio — FileDisk (buffered streams, one mutex per disk; the portable
//           baseline and the pre-io_uring behaviour)
//   pread — UringDisk in positional-syscall mode (concurrent readers,
//           coalesced preadv batches; portable fallback)
//   uring — UringDisk driving io_uring (batched SQE submission, fixed
//           files, registered buffers); degrades to pread when the kernel
//           or build lacks io_uring
//
// The default is uring-when-available, else pread. ECFRM_IO_BACKEND
// overrides it ("uring" | "pread" | "stdio") — one knob flips every
// file-backed archive, which is how the differential tests and the
// bench compare backends on identical data.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/buffer_pool.h"
#include "store/block_device.h"

namespace ecfrm::store {

enum class IoBackend {
    stdio,
    pread,
    uring,
};

const char* to_string(IoBackend backend);

/// Parse a backend name; nullopt for unknown names.
std::optional<IoBackend> parse_io_backend(const std::string& name);

/// The process-wide backend: ECFRM_IO_BACKEND when set to a valid name,
/// else uring when the kernel provides it, else pread. Read once.
IoBackend default_io_backend();

/// The shared element arena registered with every uring-backed device:
/// one BufferPool per element size, process-lifetime, so executor staging
/// buffers come from registered memory (READ_FIXED-eligible). Never
/// null; sized for a few concurrent stripes' worth of elements.
BufferPool* element_arena(std::int64_t element_bytes);

/// Open disk `index` under `dir` with the given backend (process default
/// when omitted). All backends read and write the same files.
Result<std::unique_ptr<BlockDevice>> open_file_device(
    const std::string& dir, int index, std::int64_t element_bytes,
    std::optional<IoBackend> backend = std::nullopt);

}  // namespace ecfrm::store
