// FileDisk: a persistent BlockDevice backed by two files in a directory:
//   disk_<i>.dat — element payloads at offset row * element_bytes
//   disk_<i>.map — one byte per row: 1 when the row has been written
// A "disk_<i>.failed" marker file records the failed state across runs.
//
// This backs the ecfrm_cli tool so an archive survives process restarts,
// and demonstrates that StripeStore is genuinely device-agnostic.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/block_device.h"

namespace ecfrm::store {

class FileDisk final : public BlockDevice {
  public:
    /// Open (or create) the device files for disk `index` under `dir`.
    /// `dir` must already exist.
    static Result<std::unique_ptr<FileDisk>> open(const std::string& dir, int index,
                                                  std::int64_t element_bytes);

    ~FileDisk() override;

    std::int64_t element_bytes() const override { return element_bytes_; }
    Status write(RowId row, ConstByteSpan data) override;
    Status read(RowId row, ByteSpan out) const override;

    /// Vectored batch ops: one lock acquisition per batch, adjacent rows
    /// coalesced into single sequential file transfers (one seek per run),
    /// one flush per write batch.
    Status read_batch(std::span<const RowId> rows, std::span<const ByteSpan> outs,
                      std::size_t* completed = nullptr) const override;
    Status write_batch(std::span<const RowId> rows, std::span<const ConstByteSpan> payloads,
                       std::size_t* completed = nullptr) override;
    void fail() override;
    void replace() override;
    bool failed() const override;
    RowId rows() const override;
    Status corrupt_byte(RowId row, std::size_t offset) override;

    const std::string& data_path() const { return data_path_; }

  private:
    FileDisk(std::string data_path, std::string map_path, std::string failed_path,
             std::int64_t element_bytes);

    Status open_files();
    void close_files();
    /// Reload the written-row map from disk (after open/replace).
    Status load_map();
    Status persist_map_bit(RowId row, bool value);
    /// One durability point per write (batch): fflush both files, fsync
    /// under ECFRM_FSYNC=1, counted in IoStats::flushes.
    Status flush_files();

    mutable std::mutex mu_;
    std::string data_path_;
    std::string map_path_;
    std::string failed_path_;
    std::int64_t element_bytes_;
    std::FILE* data_ = nullptr;
    std::FILE* map_ = nullptr;
    std::vector<bool> written_;
    bool failed_ = false;
};

}  // namespace ecfrm::store
