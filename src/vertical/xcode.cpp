#include "vertical/xcode.h"

#include <algorithm>
#include <cassert>

#include "gf/gf2_solver.h"
#include "gf/region.h"

namespace ecfrm::vertical {

namespace {

bool is_prime(int n) {
    if (n < 2) return false;
    for (int d = 2; d * d <= n; ++d) {
        if (n % d == 0) return false;
    }
    return true;
}

int mod(int a, int p) {
    int r = a % p;
    return r < 0 ? r + p : r;
}

}  // namespace

Result<std::unique_ptr<XCode>> XCode::make(int p) {
    if (p < 5) return Error::invalid("X-Code requires p >= 5");
    if (!is_prime(p)) return Error::invalid("X-Code requires a prime number of disks");
    auto code = std::unique_ptr<XCode>(new XCode(p));

    // Validate the diagonal construction: every single and double column
    // erasure must be decodable (the MDS property of X-Code for prime p).
    for (int c1 = 0; c1 < p; ++c1) {
        if (!code->decodable_columns({c1})) {
            return Error::internal("X-Code single-column erasure undecodable — construction bug");
        }
        for (int c2 = c1 + 1; c2 < p; ++c2) {
            if (!code->decodable_columns({c1, c2})) {
                return Error::internal("X-Code double-column erasure undecodable — construction bug");
            }
        }
    }
    return code;
}

Location XCode::locate_data(ElementId e) const {
    const std::int64_t per_stripe = data_per_stripe();
    const StripeId stripe = e / per_stripe;
    const std::int64_t within = e % per_stripe;
    const int row = static_cast<int>(within / p_);
    const int col = static_cast<int>(within % p_);
    return {col, stripe * p_ + row};
}

std::vector<int> XCode::parity_sources(int parity_row, int col) const {
    assert(parity_row == p_ - 2 || parity_row == p_ - 1);
    std::vector<int> sources;
    sources.reserve(static_cast<std::size_t>(p_ - 2));
    for (int k = 0; k < p_ - 2; ++k) {
        // Xu & Bruck's diagonals: the first parity row sums the slope-(+1)
        // diagonal C(k, i+k+2), the second the slope-(-1) anti-diagonal
        // C(k, i-k-2); the +/-2 offset steps over the two parity rows.
        const int c = parity_row == p_ - 2 ? mod(col + k + 2, p_) : mod(col - k - 2, p_);
        sources.push_back(cell(k, c));
    }
    return sources;
}

void XCode::encode(const std::vector<ByteSpan>& cells) const {
    assert(static_cast<int>(cells.size()) == p_ * p_);
    for (int parity_row : {p_ - 2, p_ - 1}) {
        for (int col = 0; col < p_; ++col) {
            ByteSpan out = cells[static_cast<std::size_t>(cell(parity_row, col))];
            gf::zero_region(out);
            for (int src : parity_sources(parity_row, col)) {
                gf::xor_region(out, cells[static_cast<std::size_t>(src)]);
            }
        }
    }
}

XCode::System XCode::build_system(const std::vector<int>& erased_cols) const {
    System sys;
    std::vector<bool> erased(static_cast<std::size_t>(p_), false);
    for (int c : erased_cols) erased[static_cast<std::size_t>(c)] = true;

    std::vector<int> unknown_of_cell(static_cast<std::size_t>(p_) * p_, -1);
    for (int row = 0; row < p_; ++row) {
        for (int col = 0; col < p_; ++col) {
            if (erased[static_cast<std::size_t>(col)]) {
                unknown_of_cell[static_cast<std::size_t>(cell(row, col))] =
                    static_cast<int>(sys.unknown_cells.size());
                sys.unknown_cells.push_back(cell(row, col));
            }
        }
    }

    // One equation per parity cell: parity ^ sources == 0.
    for (int parity_row : {p_ - 2, p_ - 1}) {
        for (int col = 0; col < p_; ++col) {
            std::vector<std::uint8_t> row_coeffs(sys.unknown_cells.size(), 0);
            std::vector<int> knowns;
            auto touch = [&](int c) {
                const int u = unknown_of_cell[static_cast<std::size_t>(c)];
                if (u >= 0) {
                    row_coeffs[static_cast<std::size_t>(u)] ^= 1;
                } else {
                    knowns.push_back(c);
                }
            };
            touch(cell(parity_row, col));
            for (int src : parity_sources(parity_row, col)) touch(src);
            sys.coeffs.push_back(std::move(row_coeffs));
            sys.knowns.push_back(std::move(knowns));
        }
    }
    return sys;
}

bool XCode::decodable_columns(const std::vector<int>& erased_cols) const {
    if (erased_cols.empty()) return true;
    if (static_cast<int>(erased_cols.size()) > fault_tolerance()) return false;
    const System sys = build_system(erased_cols);
    return gf::gf2_rank(sys.coeffs) == static_cast<int>(sys.unknown_cells.size());
}

Status XCode::decode_columns(const std::vector<ByteSpan>& cells, const std::vector<int>& erased_cols) const {
    if (erased_cols.empty()) return Status::success();
    if (static_cast<int>(erased_cols.size()) > fault_tolerance()) {
        return Error::undecodable("X-Code tolerates at most two column erasures");
    }
    System sys = build_system(erased_cols);
    gf::Gf2System generic;
    generic.coeffs = std::move(sys.coeffs);
    generic.knowns = std::move(sys.knowns);
    generic.unknown_cells = std::move(sys.unknown_cells);
    return gf::gf2_solve(std::move(generic), cells);
}

}  // namespace ecfrm::vertical
