// X-Code (Xu & Bruck, IEEE-IT 1999): the representative VERTICAL code the
// paper contrasts against (Sections II-B, III-A). A stripe is a p x p cell
// array over p disks (p prime): rows [0, p-2) hold data, the last two rows
// hold diagonal / anti-diagonal XOR parities. Every disk stores both data
// and parity, so normal reads spread over all p disks — the property
// EC-FRM retrofits onto horizontal codes — but the code tolerates exactly
// two disk failures and exists only for prime disk counts, which is the
// paper's argument for why vertical codes are rarely deployed.
//
// The diagonal definitions below are validated at construction: every
// single- and double-column erasure must be solvable, checked by rank over
// GF(2). Construction fails for non-prime p.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace ecfrm::vertical {

class XCode {
  public:
    /// p must be prime and >= 5.
    static Result<std::unique_ptr<XCode>> make(int p);

    int disks() const { return p_; }
    int rows_per_stripe() const { return p_; }
    int data_rows() const { return p_ - 2; }
    std::int64_t data_per_stripe() const { return static_cast<std::int64_t>(p_ - 2) * p_; }
    int fault_tolerance() const { return 2; }

    /// Data element e of a stripe: row e / p, disk e mod p (row-major —
    /// logical contiguity spreads over all p disks, like EC-FRM).
    Location locate_data(ElementId e) const;

    /// Cell index helpers: cell = row * p + col; rows p-2 and p-1 are the
    /// diagonal and anti-diagonal parity rows.
    int cell(int row, int col) const { return row * p_ + col; }

    /// Data cells feeding parity cell (parity_row in {p-2, p-1}, col).
    std::vector<int> parity_sources(int parity_row, int col) const;

    /// Compute the 2p parity cells from the (p-2)*p data cells. Cells are
    /// indexed row-major; `cells` must hold all p*p spans, with the data
    /// spans filled and the parity spans writable.
    void encode(const std::vector<ByteSpan>& cells) const;

    /// True when the stripe survives erasing the given columns (|cols| <= 2).
    bool decodable_columns(const std::vector<int>& erased_cols) const;

    /// Rebuild every cell of the erased columns in place: `cells` holds
    /// all p*p spans; erased columns' spans are overwritten with the
    /// recovered payloads. Fails for undecodable patterns (> 2 columns).
    Status decode_columns(const std::vector<ByteSpan>& cells, const std::vector<int>& erased_cols) const;

    /// Max per-disk element count for a normal read of `count` sequential
    /// data elements — ceil(count / p), the vertical-spread property.
    int normal_read_max_load(std::int64_t count) const {
        return static_cast<int>((count + p_ - 1) / p_);
    }

  private:
    explicit XCode(int p) : p_(p) {}

    /// Build the GF(2) constraint matrix restricted to the erased columns'
    /// cells (unknowns), plus, per equation, the list of surviving source
    /// cells (knowns) to fold into the right-hand side.
    struct System {
        std::vector<std::vector<std::uint8_t>> coeffs;  // [equation][unknown]
        std::vector<std::vector<int>> knowns;           // surviving cells per equation
        std::vector<int> unknown_cells;                 // cell index per unknown
    };
    System build_system(const std::vector<int>& erased_cols) const;

    int p_;
};

}  // namespace ecfrm::vertical
