// WEAVER codes (Hafner, FAST'05): the paper's second named vertical family
// (Section II-B). We implement the k = t member: every disk stores one
// data symbol and one parity symbol per stripe, with parity on disk i
// covering the t data symbols at offsets O = {o_1..o_t}:
//     P_i = XOR_{o in O} D_{(i + o) mod n}.
// Storage efficiency is therefore exactly 50% — the paper's argument that
// vertical codes trade capacity for their balance — while the code works
// for ARBITRARY n (unlike X-Code) and tolerates any t concurrent disk
// failures. The offset set is searched and the tolerance validated
// exhaustively at construction, in the same spirit as the LRC coefficient
// search.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace ecfrm::vertical {

class WeaverCode {
  public:
    /// n disks, tolerance t. Requires n >= 2t + 1 and t >= 1.
    static Result<std::unique_ptr<WeaverCode>> make(int n, int t);

    int disks() const { return n_; }
    int fault_tolerance() const { return t_; }
    int rows_per_stripe() const { return 2; }  // row 0 data, row 1 parity
    std::int64_t data_per_stripe() const { return n_; }
    double storage_efficiency() const { return 0.5; }

    /// Data element e: disk e mod n, global row 2 * (e / n).
    Location locate_data(ElementId e) const;

    /// The parity offsets in use (validated at construction).
    const std::vector<int>& offsets() const { return offsets_; }

    /// Data disks feeding parity i.
    std::vector<int> parity_sources(int i) const;

    /// Compute all n parity buffers from the n data buffers.
    void encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity) const;

    /// True when the stripe survives losing the given disks (|set| <= t).
    bool decodable_disks(const std::vector<int>& erased_disks) const;

    /// Rebuild the data and parity symbols of the erased disks in place:
    /// `data` and `parity` hold all n spans each; erased entries are
    /// overwritten with the recovered payloads.
    Status decode_disks(const std::vector<ByteSpan>& data, const std::vector<ByteSpan>& parity,
                        const std::vector<int>& erased_disks) const;

  private:
    WeaverCode(int n, int t, std::vector<int> offsets)
        : n_(n), t_(t), offsets_(std::move(offsets)) {}

    int n_;
    int t_;
    std::vector<int> offsets_;
};

}  // namespace ecfrm::vertical
