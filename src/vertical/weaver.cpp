#include "vertical/weaver.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "gf/gf2_solver.h"
#include "gf/region.h"

namespace ecfrm::vertical {

namespace {

int mod(int a, int n) {
    int r = a % n;
    return r < 0 ? r + n : r;
}

/// GF(2) rank of the recovery system for the given erased-disk set: the
/// unknowns are the erased disks' data symbols, the equations are the
/// surviving parities that touch at least one unknown.
bool recoverable(int n, const std::vector<int>& offsets, const std::vector<int>& erased) {
    std::vector<int> unknown_of_disk(static_cast<std::size_t>(n), -1);
    for (std::size_t i = 0; i < erased.size(); ++i) {
        unknown_of_disk[static_cast<std::size_t>(erased[i])] = static_cast<int>(i);
    }
    const int unknowns = static_cast<int>(erased.size());

    std::vector<std::vector<std::uint8_t>> rows;
    for (int i = 0; i < n; ++i) {
        if (unknown_of_disk[static_cast<std::size_t>(i)] >= 0) continue;  // parity lost with the disk
        std::vector<std::uint8_t> row(static_cast<std::size_t>(unknowns), 0);
        bool touches = false;
        for (int o : offsets) {
            const int u = unknown_of_disk[static_cast<std::size_t>(mod(i + o, n))];
            if (u >= 0) {
                row[static_cast<std::size_t>(u)] ^= 1;
                touches = true;
            }
        }
        if (touches) rows.push_back(std::move(row));
    }

    // Gaussian elimination over GF(2).
    int rank = 0;
    for (int col = 0; col < unknowns && rank < static_cast<int>(rows.size()); ++col) {
        int pivot = -1;
        for (int r = rank; r < static_cast<int>(rows.size()); ++r) {
            if (rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) return false;
        std::swap(rows[static_cast<std::size_t>(rank)], rows[static_cast<std::size_t>(pivot)]);
        for (int r = 0; r < static_cast<int>(rows.size()); ++r) {
            if (r == rank || rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] == 0) continue;
            for (int c = 0; c < unknowns; ++c) {
                rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] ^=
                    rows[static_cast<std::size_t>(rank)][static_cast<std::size_t>(c)];
            }
        }
        ++rank;
    }
    return rank == unknowns;
}

bool tolerance_holds(int n, int t, const std::vector<int>& offsets) {
    std::vector<int> idx(static_cast<std::size_t>(t));
    std::function<bool(int, int)> walk = [&](int from, int depth) {
        if (depth == t) {
            return recoverable(n, offsets, idx);
        }
        for (int d = from; d < n; ++d) {
            idx[static_cast<std::size_t>(depth)] = d;
            if (!walk(d + 1, depth + 1)) return false;
        }
        return true;
    };
    return walk(0, 0);
}

}  // namespace

Result<std::unique_ptr<WeaverCode>> WeaverCode::make(int n, int t) {
    if (t < 1) return Error::invalid("WEAVER requires t >= 1");
    if (n < 2 * t + 1) return Error::invalid("WEAVER(k=t) requires n >= 2t + 1");

    // Exhaustive offset search: every t-subset of [1, n-1], contiguous
    // offsets first (they usually work and give the nicest locality).
    std::vector<int> offsets;
    for (int j = 1; j <= t; ++j) offsets.push_back(j);
    if (tolerance_holds(n, t, offsets)) {
        return std::unique_ptr<WeaverCode>(new WeaverCode(n, t, std::move(offsets)));
    }
    std::vector<int> idx(static_cast<std::size_t>(t));
    std::function<bool(int, int)> walk = [&](int from, int depth) -> bool {
        if (depth == t) return tolerance_holds(n, t, idx);
        for (int o = from; o <= n - 1; ++o) {
            idx[static_cast<std::size_t>(depth)] = o;
            if (walk(o + 1, depth + 1)) return true;
        }
        return false;
    };
    if (walk(1, 0)) {
        return std::unique_ptr<WeaverCode>(new WeaverCode(n, t, std::move(idx)));
    }
    return Error::undecodable("no WEAVER offset set reaches tolerance " + std::to_string(t) + " at n = " +
                              std::to_string(n));
}

Location WeaverCode::locate_data(ElementId e) const {
    const StripeId stripe = e / n_;
    return {static_cast<DiskId>(e % n_), stripe * 2};
}

std::vector<int> WeaverCode::parity_sources(int i) const {
    std::vector<int> sources;
    sources.reserve(offsets_.size());
    for (int o : offsets_) sources.push_back(mod(i + o, n_));
    return sources;
}

void WeaverCode::encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity) const {
    assert(static_cast<int>(data.size()) == n_ && static_cast<int>(parity.size()) == n_);
    for (int i = 0; i < n_; ++i) {
        gf::zero_region(parity[static_cast<std::size_t>(i)]);
        for (int src : parity_sources(i)) {
            gf::xor_region(parity[static_cast<std::size_t>(i)], data[static_cast<std::size_t>(src)]);
        }
    }
}

bool WeaverCode::decodable_disks(const std::vector<int>& erased_disks) const {
    if (erased_disks.empty()) return true;
    if (static_cast<int>(erased_disks.size()) > t_) return false;
    return recoverable(n_, offsets_, erased_disks);
}

Status WeaverCode::decode_disks(const std::vector<ByteSpan>& data, const std::vector<ByteSpan>& parity,
                                const std::vector<int>& erased_disks) const {
    if (erased_disks.empty()) return Status::success();
    if (static_cast<int>(erased_disks.size()) > t_) {
        return Error::undecodable("WEAVER tolerates at most t disk erasures");
    }

    // Unified cell ids for the shared solver: data disk i -> i, parity
    // disk i -> n + i.
    std::vector<int> unknown_of_disk(static_cast<std::size_t>(n_), -1);
    gf::Gf2System sys;
    for (int d : erased_disks) {
        unknown_of_disk[static_cast<std::size_t>(d)] = static_cast<int>(sys.unknown_cells.size());
        sys.unknown_cells.push_back(d);
    }
    for (int i = 0; i < n_; ++i) {
        if (unknown_of_disk[static_cast<std::size_t>(i)] >= 0) continue;  // parity lost with the disk
        std::vector<std::uint8_t> row(sys.unknown_cells.size(), 0);
        std::vector<int> knowns{n_ + i};  // the surviving parity cell
        bool touches = false;
        for (int src : parity_sources(i)) {
            const int u = unknown_of_disk[static_cast<std::size_t>(src)];
            if (u >= 0) {
                row[static_cast<std::size_t>(u)] ^= 1;
                touches = true;
            } else {
                knowns.push_back(src);
            }
        }
        if (!touches) continue;
        sys.coeffs.push_back(std::move(row));
        sys.knowns.push_back(std::move(knowns));
    }

    std::vector<ByteSpan> cells;
    cells.reserve(static_cast<std::size_t>(2 * n_));
    cells.insert(cells.end(), data.begin(), data.end());
    cells.insert(cells.end(), parity.begin(), parity.end());
    auto status = gf::gf2_solve(std::move(sys), cells);
    if (!status.ok()) return status;

    // Regenerate the erased disks' parity symbols from the restored data.
    for (int disk : erased_disks) {
        gf::zero_region(parity[static_cast<std::size_t>(disk)]);
        for (int src : parity_sources(disk)) {
            gf::xor_region(parity[static_cast<std::size_t>(disk)], data[static_cast<std::size_t>(src)]);
        }
    }
    return Status::success();
}

}  // namespace ecfrm::vertical
