// Standard and rotated horizontal layouts: one candidate row per stripe.
#pragma once

#include "layout/layout.h"

namespace ecfrm::layout {

/// Data on disks [0, k), parity on disks [k, n); stripe s is row s.
class StandardLayout final : public Layout {
  public:
    StandardLayout(int n, int k) : Layout(n, k) {}

    std::string name() const override { return "standard"; }
    int rows_per_stripe() const override { return 1; }
    int groups_per_stripe() const override { return 1; }
    int data_rows_per_stripe() const override { return 1; }

    Location locate(const GroupCoord& c) const override {
        return {static_cast<DiskId>(c.position), static_cast<RowId>(c.stripe)};
    }

    GroupCoord coord_at(Location loc) const override {
        return {static_cast<StripeId>(loc.row), 0, loc.disk};
    }
};

/// Standard layout with the logical->physical disk map rotated by the
/// stripe index (the paper's R-RS / R-LRC baseline). The map rotates
/// AGAINST the logical read direction (classic left-symmetric RAID
/// convention): stripe s places position j on disk (j - s) mod n, so a
/// multi-stripe sequential read slides over all n disks instead of
/// tracking the same k data disks.
class RotatedLayout final : public Layout {
  public:
    RotatedLayout(int n, int k) : Layout(n, k) {}

    std::string name() const override { return "rotated"; }
    int rows_per_stripe() const override { return 1; }
    int groups_per_stripe() const override { return 1; }
    int data_rows_per_stripe() const override { return 1; }

    Location locate(const GroupCoord& c) const override {
        int disk = static_cast<int>((c.position - c.stripe) % n_);
        if (disk < 0) disk += n_;
        return {disk, static_cast<RowId>(c.stripe)};
    }

    GroupCoord coord_at(Location loc) const override {
        const auto stripe = static_cast<StripeId>(loc.row);
        int position = static_cast<int>((loc.disk + stripe) % n_);
        if (position < 0) position += n_;
        return {stripe, 0, position};
    }
};

}  // namespace ecfrm::layout
