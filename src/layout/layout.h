// Stripe layouts: how candidate-code elements map onto an array of n disks.
//
// Three layouts reproduce the paper's three experimental arms:
//   StandardLayout — one candidate row per stripe, data on disks 0..k-1,
//                    parity on disks k..n-1 (classic horizontal code).
//   RotatedLayout  — same stripe shape, but the logical->physical disk map
//                    rotates by one per stripe (the paper's "rotated
//                    stripes" baseline, R-RS / R-LRC).
//   EcfrmLayout    — the paper's contribution: a super-stripe of n/gcd(n,k)
//                    rows x n columns whose groups each occupy n distinct
//                    disks while data stays sequential across all disks
//                    (Section IV-B, Equations 1-4).
//
// A layout is pure geometry: it never touches bytes. Codes supply algebra,
// layouts supply placement, and ecfrm::core::Scheme composes the two.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace ecfrm::layout {

/// Candidate-code coordinates of one element: which stripe, which group
/// (candidate-row instance) inside the stripe, and which code position
/// 0..n-1 within the group (positions < k are data).
struct GroupCoord {
    StripeId stripe = 0;
    int group = 0;
    int position = 0;

    friend bool operator==(const GroupCoord&, const GroupCoord&) = default;
};

class Layout {
  public:
    Layout(int n, int k) : n_(n), k_(k) {}
    virtual ~Layout() = default;

    virtual std::string name() const = 0;

    /// Number of disks (columns) — the candidate code's n for w = 1
    /// codes; sub-packetized layouts override (n elements spread over
    /// n / w node columns).
    virtual int disks() const { return n_; }
    /// Data positions per group — the candidate code's k.
    int data_per_group() const { return k_; }

    /// Rows of one (super-)stripe.
    virtual int rows_per_stripe() const = 0;
    /// Candidate-code rows (groups) per stripe.
    virtual int groups_per_stripe() const = 0;
    /// Of the rows_per_stripe() rows, how many hold data elements.
    virtual int data_rows_per_stripe() const = 0;

    /// User-visible data elements per stripe.
    std::int64_t data_per_stripe() const {
        return static_cast<std::int64_t>(groups_per_stripe()) * k_;
    }

    /// Candidate coordinates of logical data element `e`.
    GroupCoord coord_of_data(ElementId e) const;

    /// Logical data element at a data coordinate (position must be < k).
    ElementId data_id(const GroupCoord& c) const;

    /// Physical location of the element with the given coordinates.
    virtual Location locate(const GroupCoord& c) const = 0;

    /// Convenience: physical location of logical data element `e`.
    Location locate_data(ElementId e) const { return locate(coord_of_data(e)); }

    /// Inverse map: what lives at a physical (disk, row) slot.
    virtual GroupCoord coord_at(Location loc) const = 0;

    /// Within-stripe data index of a coordinate (group-major order).
    std::int64_t stripe_data_index(const GroupCoord& c) const {
        return static_cast<std::int64_t>(c.group) * k_ + c.position;
    }

  protected:
    int n_;
    int k_;
};

/// The three layout arms of the paper's evaluation.
enum class LayoutKind { standard, rotated, ecfrm };

const char* to_string(LayoutKind kind);

/// Factory for a layout of the given kind over an (n, k) candidate code.
std::unique_ptr<Layout> make_layout(LayoutKind kind, int n, int k);

}  // namespace ecfrm::layout
