#include "layout/ecfrm_layout.h"

#include <cassert>

namespace ecfrm::layout {

EcfrmLayout::EcfrmLayout(int n, int k) : Layout(n, k), r_(std::gcd(n, k)) {
    assert(n > k && k > 0);
    const int groups = n_ / r_;
    const int rows = n_ / r_;
    forward_.assign(static_cast<std::size_t>(groups) * n_, Location{});
    grid_.assign(static_cast<std::size_t>(rows) * n_, Cell{-1, -1});

    for (int g = 0; g < groups; ++g) {
        // Data positions: stripe-sequential, row-major (Equation 1).
        for (int t = 0; t < k_; ++t) {
            const int e = g * k_ + t;            // within-stripe data index
            const int row = e / n_;
            const int disk = e % n_;
            forward_[static_cast<std::size_t>(g) * n_ + t] = {disk, row};
            grid_[static_cast<std::size_t>(row) * n_ + disk] = {g, t};
        }
        // Parity positions (Equation 2): q-th parity of group g.
        for (int q = 0; q < n_ - k_; ++q) {
            const int row = k_ / r_ + q / r_;
            const int disk = (g * k_ + k_ + q) % n_;
            forward_[static_cast<std::size_t>(g) * n_ + k_ + q] = {disk, row};
            grid_[static_cast<std::size_t>(row) * n_ + disk] = {g, k_ + q};
        }
    }

    // The construction must tile the grid exactly (paper Section IV-B);
    // assert it here so a bad parameterisation cannot ship silent holes.
    for (const Cell& cell : grid_) {
        assert(cell.group >= 0 && "EC-FRM grid has an unassigned cell");
        (void)cell;
    }
}

Location EcfrmLayout::locate(const GroupCoord& c) const {
    assert(c.group >= 0 && c.group < groups_per_stripe());
    assert(c.position >= 0 && c.position < n_);
    Location in_stripe = forward_[static_cast<std::size_t>(c.group) * n_ + c.position];
    in_stripe.row += c.stripe * rows_per_stripe();
    return in_stripe;
}

GroupCoord EcfrmLayout::coord_at(Location loc) const {
    assert(loc.disk >= 0 && loc.disk < n_);
    const int rows = rows_per_stripe();
    const StripeId stripe = loc.row / rows;
    const int row_in_stripe = static_cast<int>(loc.row % rows);
    const Cell& cell = grid_[static_cast<std::size_t>(row_in_stripe) * n_ + loc.disk];
    return {stripe, cell.group, cell.position};
}

}  // namespace ecfrm::layout
