// Sub-packetized layout adapter: places a w-substripe code (Hitchhiker /
// HTEC style, n = w * n_nodes elements per group on n_nodes disks) by
// delegating to an ordinary inner layout built over the NODE counts
// (n_nodes, k_nodes).
//
// Each substripe of an outer group becomes one inner group, in order, so
// the global data-element -> disk map is IDENTICAL to the inner layout's
// over (n_nodes, k_nodes): outer flattened data index
//   f = group * (w * k_nodes) + substripe * k_nodes + node
// equals the inner flattened index (group * w + substripe) * k_nodes +
// node. Every max-load property of the inner layout (the paper's
// ceil(E/k)- and ceil(E/n)-shaped closed forms, Lemma 1 invariance)
// therefore carries over with k -> k_nodes, n -> n_nodes, untouched by
// sub-packetization. One outer stripe spans w inner stripes.
#pragma once

#include <memory>

#include "layout/layout.h"

namespace ecfrm::layout {

class SubPacketizedLayout final : public Layout {
  public:
    /// `inner` must be built over the node counts (n_nodes, k_nodes).
    SubPacketizedLayout(std::unique_ptr<Layout> inner, int w)
        : Layout(inner->disks() * w, inner->data_per_group() * w),
          inner_(std::move(inner)),
          w_(w),
          k_nodes_(inner_->data_per_group()),
          m_nodes_(inner_->disks() - inner_->data_per_group()),
          inner_groups_(inner_->groups_per_stripe()) {}

    std::string name() const override { return inner_->name(); }
    int disks() const override { return inner_->disks(); }
    int rows_per_stripe() const override { return w_ * inner_->rows_per_stripe(); }
    int groups_per_stripe() const override { return inner_groups_; }
    int data_rows_per_stripe() const override { return w_ * inner_->data_rows_per_stripe(); }

    int sub_packetization() const { return w_; }

    Location locate(const GroupCoord& c) const override {
        int inner_position;
        int sub;
        if (c.position < k_) {
            inner_position = c.position % k_nodes_;
            sub = c.position / k_nodes_;
        } else {
            inner_position = k_nodes_ + (c.position - k_) % m_nodes_;
            sub = (c.position - k_) / m_nodes_;
        }
        const std::int64_t gg =
            (c.stripe * inner_groups_ + c.group) * w_ + sub;  // global inner group
        return inner_->locate({static_cast<StripeId>(gg / inner_groups_),
                               static_cast<int>(gg % inner_groups_), inner_position});
    }

    GroupCoord coord_at(Location loc) const override {
        const GroupCoord ic = inner_->coord_at(loc);
        const std::int64_t gg = ic.stripe * inner_groups_ + ic.group;
        const std::int64_t per_stripe = static_cast<std::int64_t>(inner_groups_) * w_;
        const StripeId stripe = gg / per_stripe;
        const std::int64_t rem = gg % per_stripe;
        const int group = static_cast<int>(rem / w_);
        const int sub = static_cast<int>(rem % w_);
        const int position = ic.position < k_nodes_
                                 ? sub * k_nodes_ + ic.position
                                 : k_ + sub * m_nodes_ + (ic.position - k_nodes_);
        return {stripe, group, position};
    }

  private:
    std::unique_ptr<Layout> inner_;
    int w_;
    int k_nodes_;
    int m_nodes_;
    int inner_groups_;
};

}  // namespace ecfrm::layout
