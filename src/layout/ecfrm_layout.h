// The EC-FRM layout (paper Section IV-B).
//
// With n total and k data elements per candidate row and r = gcd(n, k),
// one super-stripe is an (n/r) x n grid:
//   * rows [0, k/r) hold data, laid ROW-MAJOR: data element e of the
//     stripe sits at row e / n, column e mod n — logical contiguity thus
//     spans all n disks (Equation 1);
//   * rows [k/r, n/r) hold parity: group i's q-th parity (q in [0, n-k))
//     sits at row k/r + q/r, column (i*k + k + q) mod n (Equation 2).
// Group i consists of data elements [i*k, (i+1)*k) of the stripe plus its
// n-k parities; the columns covered are the n consecutive values
// (i*k .. i*k + n - 1) mod n, hence all n disks exactly once (Section IV-B).
#pragma once

#include <numeric>
#include <vector>

#include "layout/layout.h"

namespace ecfrm::layout {

class EcfrmLayout final : public Layout {
  public:
    EcfrmLayout(int n, int k);

    std::string name() const override { return "ecfrm"; }
    int rows_per_stripe() const override { return n_ / r_; }
    int groups_per_stripe() const override { return n_ / r_; }
    int data_rows_per_stripe() const override { return k_ / r_; }

    Location locate(const GroupCoord& c) const override;
    GroupCoord coord_at(Location loc) const override;

    /// r = gcd(n, k): the row-count divisor of the construction.
    int r() const { return r_; }

  private:
    struct Cell {
        int group;
        int position;
    };

    int r_;
    // Forward map (group, position) -> (row-in-stripe, disk) and the
    // inverse grid, both precomputed from the closed-form equations.
    std::vector<Location> forward_;    // indexed group * n + position
    std::vector<Cell> grid_;           // indexed row_in_stripe * n + disk
};

}  // namespace ecfrm::layout
