#include "layout/layout.h"

#include <cassert>

#include "layout/ecfrm_layout.h"
#include "layout/standard.h"

namespace ecfrm::layout {

GroupCoord Layout::coord_of_data(ElementId e) const {
    assert(e >= 0);
    const std::int64_t per_stripe = data_per_stripe();
    const StripeId stripe = e / per_stripe;
    const std::int64_t within = e % per_stripe;
    return {stripe, static_cast<int>(within / k_), static_cast<int>(within % k_)};
}

ElementId Layout::data_id(const GroupCoord& c) const {
    assert(c.position < k_);
    return c.stripe * data_per_stripe() + static_cast<std::int64_t>(c.group) * k_ + c.position;
}

const char* to_string(LayoutKind kind) {
    switch (kind) {
        case LayoutKind::standard: return "standard";
        case LayoutKind::rotated: return "rotated";
        case LayoutKind::ecfrm: return "ecfrm";
    }
    return "?";
}

std::unique_ptr<Layout> make_layout(LayoutKind kind, int n, int k) {
    switch (kind) {
        case LayoutKind::standard: return std::make_unique<StandardLayout>(n, k);
        case LayoutKind::rotated: return std::make_unique<RotatedLayout>(n, k);
        case LayoutKind::ecfrm: return std::make_unique<EcfrmLayout>(n, k);
    }
    return nullptr;
}

}  // namespace ecfrm::layout
