#include "obs/request_trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "obs/metrics.h"  // json_escape

namespace ecfrm::obs {

namespace {

std::uint64_t this_tid() {
    thread_local const std::uint64_t tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
    return tid;
}

std::string format_us(double us) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

std::string format_frac(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void append_attrs_json(std::string& out,
                       const std::vector<std::pair<std::string, std::string>>& attrs) {
    out += "{";
    bool first = true;
    for (const auto& [k, v] : attrs) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    out += "}";
}

}  // namespace

double forensic_now_us() {
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch)
        .count();
}

const char* request_class_name(RequestClass cls) {
    switch (cls) {
        case RequestClass::normal: return "normal";
        case RequestClass::degraded: return "degraded";
        case RequestClass::scrub: return "scrub";
        case RequestClass::write: return "write";
    }
    return "?";
}

// --------------------------------------------------------------- RequestTrace

RequestTrace::RequestTrace(std::uint64_t id, RequestClass cls, double start_us,
                           std::size_t max_nodes)
    : id_(id), start_us_(start_us), max_nodes_(std::max<std::size_t>(1, max_nodes)), cls_(cls) {
    phase_cursor_us_ = start_us;
    SpanNode root;
    root.id = kRoot;
    root.parent = 0;
    root.name = "request";
    root.ts_us = start_us;
    root.tid = this_tid();
    root.seq = 0;
    // A clean read records ~10 spans with ~2 attrs each; the vectors
    // grow past this only when the recovery ladder gets involved.
    nodes_.reserve(std::min<std::size_t>(max_nodes_, 16));
    attrs_.reserve(24);
    nodes_.push_back(std::move(root));
}

std::uint32_t RequestTrace::append_locked(std::uint32_t parent, std::string&& name,
                                          double ts_us) {
    if (nodes_.size() >= max_nodes_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
    SpanNode node;
    node.id = static_cast<std::uint32_t>(nodes_.size() + 1);
    node.parent = parent;
    node.name = std::move(name);
    node.ts_us = ts_us;
    node.tid = this_tid();
    node.seq = nodes_.size();  // root holds seq 0
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

std::uint32_t RequestTrace::begin(std::uint32_t parent, std::string name, double ts_us) {
    if (ts_us < 0.0) ts_us = forensic_now_us();
    std::lock_guard lk(mu_);
    return append_locked(parent, std::move(name), ts_us);
}

void RequestTrace::end(std::uint32_t span, double ts_us) {
    if (span == 0) return;
    if (ts_us < 0.0) ts_us = forensic_now_us();
    std::lock_guard lk(mu_);
    if (span > nodes_.size()) return;
    SpanNode& node = nodes_[span - 1];
    if (node.dur_us < 0.0) node.dur_us = std::max(0.0, ts_us - node.ts_us);
    if (node.parent == kRoot) {
        phase_cursor_us_ = std::max(phase_cursor_us_, node.ts_us + node.dur_us);
    }
}

void RequestTrace::attr_locked(std::uint32_t span, const char* key, std::string&& value) {
    attrs_.push_back(AttrRec{span, key, 0, std::move(value), false});
}

void RequestTrace::attr_locked(std::uint32_t span, const char* key, std::int64_t value) {
    attrs_.push_back(AttrRec{span, key, value, {}, true});
}

std::uint32_t RequestTrace::begin_phase(std::string name, std::initializer_list<IntAttr> attrs) {
    std::lock_guard lk(mu_);
    const std::uint32_t id = append_locked(kRoot, std::move(name), phase_cursor_us_);
    if (id != 0) {
        for (const auto& [k, v] : attrs) attr_locked(id, k, v);
    }
    return id;
}

double RequestTrace::phase_cursor_us() const {
    std::lock_guard lk(mu_);
    return phase_cursor_us_;
}

std::uint32_t RequestTrace::complete(std::uint32_t parent, std::string name, double ts_us,
                                     double dur_us, std::initializer_list<StrAttr> attrs) {
    std::lock_guard lk(mu_);
    const std::uint32_t id = append_locked(parent, std::move(name), ts_us);
    if (id == 0) return 0;
    SpanNode& node = nodes_[id - 1];
    node.dur_us = std::max(0.0, dur_us);
    if (parent == kRoot) {
        phase_cursor_us_ = std::max(phase_cursor_us_, node.ts_us + node.dur_us);
    }
    for (const auto& [k, v] : attrs) attr_locked(id, k, std::string(v));
    return id;
}

std::uint32_t RequestTrace::complete(std::uint32_t parent, std::string name, double ts_us,
                                     double dur_us, std::initializer_list<IntAttr> attrs) {
    std::lock_guard lk(mu_);
    const std::uint32_t id = append_locked(parent, std::move(name), ts_us);
    if (id == 0) return 0;
    SpanNode& node = nodes_[id - 1];
    node.dur_us = std::max(0.0, dur_us);
    if (parent == kRoot) {
        phase_cursor_us_ = std::max(phase_cursor_us_, node.ts_us + node.dur_us);
    }
    for (const auto& [k, v] : attrs) attr_locked(id, k, v);
    return id;
}

void RequestTrace::end_with(std::uint32_t span, std::initializer_list<IntAttr> attrs,
                            double ts_us) {
    if (span == 0) return;
    if (ts_us < 0.0) ts_us = forensic_now_us();
    std::lock_guard lk(mu_);
    if (span > nodes_.size()) return;
    SpanNode& node = nodes_[span - 1];
    for (const auto& [k, v] : attrs) attr_locked(span, k, v);
    if (node.dur_us < 0.0) node.dur_us = std::max(0.0, ts_us - node.ts_us);
    if (node.parent == kRoot) {
        phase_cursor_us_ = std::max(phase_cursor_us_, node.ts_us + node.dur_us);
    }
}

void RequestTrace::attr(std::uint32_t span, const char* key, std::string value) {
    if (span == 0) return;
    std::lock_guard lk(mu_);
    if (span > nodes_.size()) return;
    attr_locked(span, key, std::move(value));
}

void RequestTrace::attr_all(std::uint32_t span, std::initializer_list<IntAttr> attrs) {
    if (span == 0) return;
    std::lock_guard lk(mu_);
    if (span > nodes_.size()) return;
    for (const auto& [k, v] : attrs) attr_locked(span, k, v);
}

void RequestTrace::attr(std::uint32_t span, const char* key, std::int64_t value) {
    if (span == 0) return;
    std::lock_guard lk(mu_);
    if (span > nodes_.size()) return;
    attr_locked(span, key, value);
}

void RequestTrace::finish(bool ok, double end_us) {
    if (end_us < 0.0) end_us = forensic_now_us();
    bool expected = false;
    if (!finished_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) return;
    ok_.store(ok, std::memory_order_relaxed);
    std::lock_guard lk(mu_);
    end_us_ = end_us;
    for (SpanNode& node : nodes_) {
        if (node.dur_us < 0.0) node.dur_us = std::max(0.0, end_us - node.ts_us);
    }
}

bool RequestTrace::finish_with_totals(bool ok, double end_us,
                                      std::vector<std::pair<std::string, double>>& totals) {
    if (end_us < 0.0) end_us = forensic_now_us();
    bool expected = false;
    if (!finished_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
        return false;
    }
    ok_.store(ok, std::memory_order_relaxed);
    std::lock_guard lk(mu_);
    end_us_ = end_us;
    for (SpanNode& node : nodes_) {
        if (node.dur_us < 0.0) node.dur_us = std::max(0.0, end_us - node.ts_us);
    }
    totals = phase_totals_locked();
    return true;
}

double RequestTrace::dur_us() const {
    std::lock_guard lk(mu_);
    return end_us_ < 0.0 ? 0.0 : end_us_ - start_us_;
}

std::vector<SpanNode> RequestTrace::nodes() const {
    std::lock_guard lk(mu_);
    std::vector<SpanNode> out = nodes_;
    // Scatter the attribute arena back onto the snapshot: append order
    // within a span is preserved because the arena itself is in append
    // order.
    for (const AttrRec& rec : attrs_) {
        if (rec.span == 0 || rec.span > out.size()) continue;
        out[rec.span - 1].attrs.emplace_back(rec.key,
                                             rec.is_int ? std::to_string(rec.ival) : rec.sval);
    }
    return out;
}

std::size_t RequestTrace::node_count() const {
    std::lock_guard lk(mu_);
    return nodes_.size();
}

std::vector<std::pair<std::string, double>> RequestTrace::phase_totals() const {
    std::lock_guard lk(mu_);
    return phase_totals_locked();
}

std::vector<std::pair<std::string, double>> RequestTrace::phase_totals_locked() const {
    std::vector<std::pair<std::string, double>> totals;
    for (const SpanNode& node : nodes_) {
        if (node.parent != kRoot || node.dur_us < 0.0) continue;
        auto it = std::find_if(totals.begin(), totals.end(),
                               [&](const auto& t) { return t.first == node.name; });
        if (it == totals.end()) {
            totals.emplace_back(node.name, node.dur_us);
        } else {
            it->second += node.dur_us;
        }
    }
    return totals;
}

std::string RequestTrace::chrome_json() const {
    std::string out = "[";
    bool first = true;
    for (const SpanNode& node : nodes()) {
        if (!first) out += ",";
        first = false;
        out += "\n{\"name\":\"" + json_escape(node.name) + "\",\"cat\":\"request\"";
        out += ",\"ph\":\"X\",\"pid\":" + std::to_string(id_);
        out += ",\"tid\":" + std::to_string(node.tid);
        out += ",\"ts\":" + format_us(node.ts_us);
        out += ",\"dur\":" + format_us(std::max(0.0, node.dur_us));
        out += ",\"args\":{\"span\":\"" + std::to_string(node.id) + "\",\"parent\":\"" +
               std::to_string(node.parent) + "\",\"seq\":\"" + std::to_string(node.seq) + "\"";
        for (const auto& [k, v] : node.attrs) {
            out += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
        }
        out += "}}";
    }
    out += "\n]\n";
    return out;
}

std::string RequestTrace::json(bool include_spans) const {
    std::string out = "{\"id\":" + std::to_string(id_);
    out += ",\"class\":\"";
    out += request_class_name(cls());
    out += "\",\"start_us\":" + format_us(start_us_);
    out += ",\"dur_us\":" + format_us(dur_us());
    out += ",\"ok\":";
    out += ok() ? "true" : "false";
    out += ",\"retries\":" + std::to_string(retries());
    out += ",\"timeouts\":" + std::to_string(timeouts());
    out += ",\"hedges\":" + std::to_string(hedges());
    out += ",\"replans\":" + std::to_string(replans());
    out += ",\"decodes\":" + std::to_string(decodes());
    out += ",\"spans\":" + std::to_string(node_count());
    out += ",\"spans_dropped\":" + std::to_string(dropped());
    out += ",\"phase_us\":{";
    bool first = true;
    for (const auto& [name, us] : phase_totals()) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(name) + "\":" + format_us(us);
    }
    out += "}";
    if (include_spans) {
        out += ",\"tree\":[";
        first = true;
        for (const SpanNode& node : nodes()) {
            if (!first) out += ",";
            first = false;
            out += "{\"span\":" + std::to_string(node.id);
            out += ",\"parent\":" + std::to_string(node.parent);
            out += ",\"name\":\"" + json_escape(node.name) + "\"";
            out += ",\"ts_us\":" + format_us(node.ts_us);
            out += ",\"dur_us\":" + format_us(std::max(0.0, node.dur_us));
            out += ",\"tid\":" + std::to_string(node.tid);
            out += ",\"seq\":" + std::to_string(node.seq);
            out += ",\"args\":";
            append_attrs_json(out, node.attrs);
            out += "}";
        }
        out += "]";
    }
    out += "}";
    return out;
}

// ----------------------------------------------------------- RequestForensics

RequestForensics::RequestForensics(ForensicsOptions options) : options_(options) {
    classes_.reserve(kRequestClasses);
    for (int c = 0; c < kRequestClasses; ++c) {
        classes_.push_back(std::make_unique<PerClass>(options_));
    }
}

std::shared_ptr<RequestTrace> RequestForensics::start(RequestClass cls) {
    return start_at(cls, forensic_now_us());
}

std::shared_ptr<RequestTrace> RequestForensics::start_at(RequestClass cls, double ts_us) {
    const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<RequestTrace>(id, cls, ts_us, options_.max_nodes);
}

void RequestForensics::finish(const std::shared_ptr<RequestTrace>& trace, bool ok) {
    finish_at(trace, ok, forensic_now_us());
}

void RequestForensics::finish_at(const std::shared_ptr<RequestTrace>& trace, bool ok,
                                 double end_us) {
    if (trace == nullptr) return;
    if (end_us < 0.0) end_us = forensic_now_us();
    std::vector<std::pair<std::string, double>> totals;
    if (!trace->finish_with_totals(ok, end_us, totals)) return;

    const double dur = end_us - trace->start_us();
    const double now_seconds = end_us / 1e6;
    PerClass& pc = per_class(trace->cls());
    pc.window.record(dur, now_seconds);
    pc.slo.record(dur, ok, now_seconds);
    pc.finished.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard lk(pc.phase_mu);
        for (auto& [name, us] : totals) {
            auto it = std::find_if(pc.phase_totals.begin(), pc.phase_totals.end(),
                                   [&](const auto& t) { return t.first == name; });
            if (it == pc.phase_totals.end()) {
                pc.phase_totals.emplace_back(std::move(name), us);
            } else {
                it->second += us;
            }
        }
    }

    const bool slow = options_.slow_threshold_us >= 0.0 && dur >= options_.slow_threshold_us;
    if (!slow && ok && !trace->recovery_active()) return;
    std::lock_guard lk(exemplar_mu_);
    exemplars_.push_back(trace);
    while (exemplars_.size() > options_.max_exemplars) {
        exemplars_.pop_front();
        ++evicted_;
    }
}

std::int64_t RequestForensics::finished_total(RequestClass cls) const {
    return per_class(cls).finished.load(std::memory_order_relaxed);
}

double RequestForensics::windowed_percentile(RequestClass cls, double q, double now_us) const {
    if (now_us < 0.0) now_us = forensic_now_us();
    return per_class(cls).window.percentile(q, now_us / 1e6);
}

SloTracker::Snapshot RequestForensics::slo_snapshot(RequestClass cls, double now_us) const {
    if (now_us < 0.0) now_us = forensic_now_us();
    return per_class(cls).slo.snapshot(now_us / 1e6);
}

std::vector<std::pair<std::string, double>> RequestForensics::phase_totals(
    RequestClass cls) const {
    const PerClass& pc = per_class(cls);
    std::lock_guard lk(pc.phase_mu);
    return pc.phase_totals;
}

std::size_t RequestForensics::captured() const {
    std::lock_guard lk(exemplar_mu_);
    return exemplars_.size();
}

std::size_t RequestForensics::evicted() const {
    std::lock_guard lk(exemplar_mu_);
    return evicted_;
}

std::shared_ptr<const RequestTrace> RequestForensics::find(std::uint64_t id) const {
    std::lock_guard lk(exemplar_mu_);
    for (const auto& trace : exemplars_) {
        if (trace->id() == id) return trace;
    }
    return nullptr;
}

std::vector<std::shared_ptr<const RequestTrace>> RequestForensics::exemplars() const {
    std::lock_guard lk(exemplar_mu_);
    return {exemplars_.begin(), exemplars_.end()};
}

std::string RequestForensics::slo_json(double now_us) const {
    if (now_us < 0.0) now_us = forensic_now_us();
    std::string out = "{\"schema\":\"ecfrm.slo.v1\",\"now_us\":" + format_us(now_us);
    out += ",\"window_seconds\":" + format_frac(options_.window_seconds);
    out += ",\"target_us\":" + format_us(options_.slo_target_us);
    out += ",\"objective\":" + format_frac(options_.slo_objective);
    out += ",\"classes\":[";
    const double now_seconds = now_us / 1e6;
    bool first = true;
    for (int c = 0; c < kRequestClasses; ++c) {
        const auto cls = static_cast<RequestClass>(c);
        const PerClass& pc = per_class(cls);
        const SloTracker::Snapshot snap = pc.slo.snapshot(now_seconds);
        if (!first) out += ",";
        first = false;
        out += "{\"class\":\"";
        out += request_class_name(cls);
        out += "\",\"finished_total\":" + std::to_string(finished_total(cls));
        out += ",\"window_count\":" + std::to_string(pc.window.count(now_seconds));
        out += ",\"p50_us\":" + format_us(pc.window.percentile(0.50, now_seconds));
        out += ",\"p99_us\":" + format_us(pc.window.percentile(0.99, now_seconds));
        out += ",\"p999_us\":" + format_us(pc.window.percentile(0.999, now_seconds));
        out += ",\"breaches\":" + std::to_string(snap.breaches);
        out += ",\"compliance\":" + format_frac(snap.compliance);
        out += ",\"fast_burn\":" + format_frac(snap.fast_burn);
        out += ",\"slow_burn\":" + format_frac(snap.slow_burn);
        out += ",\"budget_remaining\":" + format_frac(snap.budget_remaining);
        out += "}";
    }
    out += "]}\n";
    return out;
}

std::string RequestForensics::slow_json() const {
    const auto traces = exemplars();
    std::string out = "{\"schema\":\"ecfrm.slow.v1\"";
    out += ",\"captured\":" + std::to_string(traces.size());
    std::size_t evicted;
    {
        std::lock_guard lk(exemplar_mu_);
        evicted = evicted_;
    }
    out += ",\"evicted\":" + std::to_string(evicted);
    out += ",\"requests\":[";
    bool first = true;
    for (const auto& trace : traces) {
        if (!first) out += ",";
        first = false;
        out += trace->json(/*include_spans=*/false);
    }
    out += "]}\n";
    return out;
}

std::string RequestForensics::slowlog_ndjson() const {
    std::string out;
    for (const auto& trace : exemplars()) {
        out += trace->json(/*include_spans=*/true);
        out += "\n";
    }
    return out;
}

}  // namespace ecfrm::obs
