// Sliding-window latency statistics: a ring of log-bucketed sub-windows
// (reusing Histogram's bucket geometry) that answers "what is p99 over
// the last W seconds", plus an SLO tracker that turns per-request
// good/bad outcomes into error-budget burn rates.
//
// The cumulative Histogram in metrics.h can only say "p99 since process
// start" — a tail regression during a fault burst is invisible once the
// denominator is large. The windowed variants forget: each sub-window
// covers window/sub_windows seconds, expired sub-windows are cleared on
// the next record/advance, and every query aggregates only the live
// ring. Both classes are mutex-guarded: they are touched once per
// *request* (not per device op), so a lock is cheap and keeps the
// bucket array compact (uint32 counts, no atomics).
//
// Clock domain is the caller's: pass seconds from any monotonic clock
// (wall or simulated), but stick to one per instance.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ecfrm::obs {

/// Sliding-window histogram over the last `window_seconds`, resolved
/// into `sub_windows` equal slices. record() and the queries take
/// `now_seconds` explicitly so tests (and the simulators) can drive the
/// clock; a query also expires old slices, so a stalled workload decays
/// to empty.
class WindowedHistogram {
  public:
    explicit WindowedHistogram(double window_seconds = 60.0, int sub_windows = 6);

    WindowedHistogram(const WindowedHistogram&) = delete;
    WindowedHistogram& operator=(const WindowedHistogram&) = delete;

    double window_seconds() const { return sub_seconds_ * static_cast<double>(subs_.size()); }
    double sub_seconds() const { return sub_seconds_; }
    int sub_windows() const { return static_cast<int>(subs_.size()); }

    void record(double value, double now_seconds);

    /// Samples currently inside the window.
    std::int64_t count(double now_seconds) const;
    double sum(double now_seconds) const;
    double mean(double now_seconds) const;

    /// Nearest-rank quantile over the live sub-windows (same bucket
    /// geometry and midpoint/clamp convention as Histogram::percentile).
    /// Returns 0 when the window is empty. q outside [0, 1] clamps.
    double percentile(double q, double now_seconds) const;

  private:
    struct Sub {
        std::int64_t epoch = -1;  // floor(now / sub_seconds); -1 = never used
        std::vector<std::uint32_t> buckets;
        std::int64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    std::int64_t epoch_of(double now_seconds) const;
    /// Clear sub-windows that have slid out of [epoch - subs + 1, epoch].
    void advance(std::int64_t epoch) const;

    double sub_seconds_;
    mutable std::mutex mu_;
    mutable std::vector<Sub> subs_;
};

/// Sliding-window counter: add() deltas land in the current sub-window
/// and total() sums only the live ring, so "ops in the last W seconds"
/// decays to zero when traffic stops. Same clock contract as
/// WindowedHistogram. rate() divides by the window span, yielding a
/// per-second figure that smooths over the sub-window granularity.
class WindowedCounter {
  public:
    explicit WindowedCounter(double window_seconds = 60.0, int sub_windows = 6);

    WindowedCounter(const WindowedCounter&) = delete;
    WindowedCounter& operator=(const WindowedCounter&) = delete;

    double window_seconds() const { return sub_seconds_ * static_cast<double>(subs_.size()); }

    void add(std::int64_t delta, double now_seconds);

    /// Sum of deltas inside the live window.
    std::int64_t total(double now_seconds) const;
    /// total / window_seconds (a smoothed per-second rate).
    double rate(double now_seconds) const;

  private:
    struct Sub {
        std::int64_t epoch = -1;
        std::int64_t value = 0;
    };

    std::int64_t epoch_of(double now_seconds) const;
    void advance(std::int64_t epoch) const;

    double sub_seconds_;
    mutable std::mutex mu_;
    mutable std::vector<Sub> subs_;
};

/// Windowed service-level objective: "`objective` of requests complete
/// under `target_latency_us`". Each finished request is good or bad
/// (bad: over target, or failed outright); the tracker keeps good/bad
/// totals per sub-window and reports the burn rate — the ratio of the
/// observed bad fraction to the budgeted one (1 - objective) — over a
/// short "fast" window (last sub-window, pages quickly) and the full
/// "slow" window (confirms a sustained burn). Burn rate 1.0 means the
/// budget is being consumed exactly as provisioned; 14.4 is the classic
/// page-now threshold.
struct SloOptions {
    double target_latency_us = 100000.0;  // 100 ms
    double objective = 0.99;              // fraction of requests under target
    double window_seconds = 60.0;
    int sub_windows = 6;
};

class SloTracker {
  public:
    /// Namespace-scope so `= {}` default arguments work (a nested
    /// struct's member initializers only complete with the outer class).
    using Options = SloOptions;

    struct Snapshot {
        std::int64_t total = 0;    // requests in the full window
        std::int64_t breaches = 0; // bad requests in the full window
        double compliance = 1.0;   // good fraction over the window (1.0 when idle)
        double fast_burn = 0.0;    // burn rate over the newest sub-window
        double slow_burn = 0.0;    // burn rate over the full window
        double budget_remaining = 1.0;  // 1 - slow_burn, floored at 0
    };

    explicit SloTracker(Options options = {});

    SloTracker(const SloTracker&) = delete;
    SloTracker& operator=(const SloTracker&) = delete;

    const Options& options() const { return options_; }

    /// `ok == false` is always a breach; otherwise the request breaches
    /// when its latency exceeds the target.
    void record(double latency_us, bool ok, double now_seconds);

    Snapshot snapshot(double now_seconds) const;

  private:
    struct Sub {
        std::int64_t epoch = -1;
        std::int64_t good = 0;
        std::int64_t bad = 0;
    };

    std::int64_t epoch_of(double now_seconds) const;
    void advance(std::int64_t epoch) const;

    Options options_;
    double sub_seconds_;
    mutable std::mutex mu_;
    mutable std::vector<Sub> subs_;
};

}  // namespace ecfrm::obs
