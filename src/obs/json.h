// Minimal dependency-free JSON reader for the telemetry pipeline: the
// regression reporter loads bench artifacts, tests validate /metrics.json
// scrapes, and NDJSON metric snapshots parse line by line.
//
// This is a reader, not a writer (emission stays with the exporters):
// strict RFC 8259 grammar, numbers as double, no comments, UTF-8 passed
// through verbatim (\uXXXX escapes decode to UTF-8). Parse errors carry
// the byte offset in the message.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ecfrm::obs::json {

/// One parsed JSON value. Object member order is preserved (duplicate
/// keys keep every occurrence; find() returns the first).
class Value {
  public:
    enum class Type { null, boolean, number, string, array, object };

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::null; }
    bool is_bool() const { return type_ == Type::boolean; }
    bool is_number() const { return type_ == Type::number; }
    bool is_string() const { return type_ == Type::string; }
    bool is_array() const { return type_ == Type::array; }
    bool is_object() const { return type_ == Type::object; }

    bool as_bool() const { return bool_; }
    double as_number() const { return number_; }
    const std::string& as_string() const { return string_; }
    const std::vector<Value>& items() const { return items_; }
    const std::vector<std::pair<std::string, Value>>& members() const { return members_; }

    std::size_t size() const { return is_object() ? members_.size() : items_.size(); }

    /// First member with this key, or nullptr (also nullptr on non-objects).
    const Value* find(std::string_view key) const;

    /// Typed member lookups with defaults — the common artifact-reading idiom.
    double number_or(std::string_view key, double fallback) const;
    std::string string_or(std::string_view key, std::string fallback) const;

    static Value make_null() { return Value(); }
    static Value make_bool(bool b);
    static Value make_number(double n);
    static Value make_string(std::string s);
    static Value make_array(std::vector<Value> items);
    static Value make_object(std::vector<std::pair<std::string, Value>> members);

  private:
    Type type_ = Type::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

/// Parse exactly one JSON document (leading/trailing whitespace allowed).
Result<Value> parse(std::string_view text);

/// Parse newline-delimited JSON: one document per non-empty line (the
/// MetricRegistry::to_json export format).
Result<std::vector<Value>> parse_ndjson(std::string_view text);

}  // namespace ecfrm::obs::json
