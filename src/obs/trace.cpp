#include "obs/trace.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "obs/metrics.h"  // json_escape

namespace ecfrm::obs {

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)), epoch_(std::chrono::steady_clock::now()) {
    ring_.reserve(capacity_);
}

double Tracer::now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_).count();
}

void Tracer::push(TraceEvent event) {
    event.tid = std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
    std::lock_guard lk(mu_);
    event.seq = total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
    } else {
        ring_[total_ % capacity_] = std::move(event);
        if (dropped_counter_ != nullptr) dropped_counter_->add(1);
    }
    ++total_;
}

void Tracer::complete(std::string name, std::string cat, double ts_us, double dur_us,
                      std::vector<std::pair<std::string, std::string>> args) {
    TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = 'X';
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.args = std::move(args);
    push(std::move(event));
}

void Tracer::instant(std::string name, std::string cat, double ts_us,
                     std::vector<std::pair<std::string, std::string>> args) {
    TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = 'i';
    event.ts_us = ts_us;
    event.args = std::move(args);
    push(std::move(event));
}

std::size_t Tracer::recorded() const {
    std::lock_guard lk(mu_);
    return total_;
}

std::size_t Tracer::dropped() const {
    std::lock_guard lk(mu_);
    return total_ > capacity_ ? total_ - capacity_ : 0;
}

void Tracer::attach_metrics(MetricRegistry* registry) {
    std::lock_guard lk(mu_);
    if (registry == nullptr) {
        dropped_counter_ = nullptr;
        return;
    }
    registry->describe("ecfrm_obs_trace_dropped_total",
                       "Trace events lost to ring-buffer wraparound");
    Counter& c = registry->counter("ecfrm_obs_trace_dropped_total");
    const std::size_t already = total_ > capacity_ ? total_ - capacity_ : 0;
    if (already > static_cast<std::size_t>(c.value())) {
        c.add(static_cast<std::int64_t>(already) - c.value());
    }
    dropped_counter_ = &c;
}

std::size_t Tracer::size() const {
    std::lock_guard lk(mu_);
    return ring_.size();
}

std::vector<TraceEvent> Tracer::events() const {
    std::lock_guard lk(mu_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (total_ <= capacity_) {
        out = ring_;
    } else {
        const std::size_t head = total_ % capacity_;  // oldest retained slot
        for (std::size_t i = 0; i < capacity_; ++i) out.push_back(ring_[(head + i) % capacity_]);
    }
    return out;
}

namespace {

std::string format_us(double us) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

}  // namespace

std::string Tracer::to_chrome_json() const {
    std::string out = "[";
    bool first = true;
    for (const TraceEvent& e : events()) {
        if (!first) out += ",";
        first = false;
        out += "\n{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" + json_escape(e.cat) + "\"";
        out += ",\"ph\":\"";
        out += e.phase;
        out += "\",\"pid\":0,\"tid\":" + std::to_string(e.tid);
        out += ",\"seq\":" + std::to_string(e.seq);
        out += ",\"ts\":" + format_us(e.ts_us);
        if (e.phase == 'X') out += ",\"dur\":" + format_us(e.dur_us);
        if (e.phase == 'i') out += ",\"s\":\"t\"";
        if (!e.args.empty()) {
            out += ",\"args\":{";
            bool first_arg = true;
            for (const auto& [k, v] : e.args) {
                if (!first_arg) out += ",";
                first_arg = false;
                out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n]\n";
    return out;
}

}  // namespace ecfrm::obs
