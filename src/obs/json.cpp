#include "obs/json.h"

#include <cmath>
#include <cstdlib>

namespace ecfrm::obs::json {

const Value* Value::find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : members_) {
        if (k == key) return &v;
    }
    return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? v->as_string() : std::move(fallback);
}

Value Value::make_bool(bool b) {
    Value v;
    v.type_ = Type::boolean;
    v.bool_ = b;
    return v;
}

Value Value::make_number(double n) {
    Value v;
    v.type_ = Type::number;
    v.number_ = n;
    return v;
}

Value Value::make_string(std::string s) {
    Value v;
    v.type_ = Type::string;
    v.string_ = std::move(s);
    return v;
}

Value Value::make_array(std::vector<Value> items) {
    Value v;
    v.type_ = Type::array;
    v.items_ = std::move(items);
    return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
    Value v;
    v.type_ = Type::object;
    v.members_ = std::move(members);
    return v;
}

namespace {

/// Recursive-descent parser over a string_view with a byte cursor.
class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<Value> document() {
        skip_ws();
        auto v = value();
        if (!v.ok()) return v;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing characters");
        return v;
    }

  private:
    Error fail(const std::string& what) const {
        return Error::invalid("json: " + what + " at byte " + std::to_string(pos_));
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skip_ws() {
        while (!eof()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool consume(char c) {
        if (eof() || peek() != c) return false;
        ++pos_;
        return true;
    }

    bool consume_word(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    Result<Value> value() {
        if (eof()) return fail("unexpected end of input");
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': {
                auto s = string_body();
                if (!s.ok()) return s.error();
                return Value::make_string(std::move(s).take());
            }
            case 't':
                if (consume_word("true")) return Value::make_bool(true);
                return fail("bad literal");
            case 'f':
                if (consume_word("false")) return Value::make_bool(false);
                return fail("bad literal");
            case 'n':
                if (consume_word("null")) return Value::make_null();
                return fail("bad literal");
            default: return number();
        }
    }

    Result<Value> number() {
        const std::size_t begin = pos_;
        if (consume('-')) {
        }
        while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == 'e' ||
                          peek() == 'E' || peek() == '+' || peek() == '-')) {
            ++pos_;
        }
        if (pos_ == begin) return fail("expected a value");
        const std::string token(text_.substr(begin, pos_ - begin));
        char* end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0' || !std::isfinite(parsed)) {
            pos_ = begin;
            return fail("bad number '" + token + "'");
        }
        return Value::make_number(parsed);
    }

    static void append_utf8(std::string& out, unsigned int cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Result<unsigned int> hex4() {
        if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
        unsigned int cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9') {
                cp |= static_cast<unsigned int>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                cp |= static_cast<unsigned int>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                cp |= static_cast<unsigned int>(c - 'A' + 10);
            } else {
                return fail("bad \\u escape");
            }
        }
        return cp;
    }

    Result<std::string> string_body() {
        if (!consume('"')) return fail("expected string");
        std::string out;
        for (;;) {
            if (eof()) return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof()) return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    auto cp = hex4();
                    if (!cp.ok()) return cp.error();
                    unsigned int code = cp.value();
                    // Surrogate pair: \uD800-\uDBFF must chain a low half.
                    if (code >= 0xD800 && code <= 0xDBFF && consume('\\') && consume('u')) {
                        auto low = hex4();
                        if (!low.ok()) return low.error();
                        code = 0x10000 + ((code - 0xD800) << 10) + (low.value() - 0xDC00);
                    }
                    append_utf8(out, code);
                    break;
                }
                default: return fail("bad escape");
            }
        }
    }

    Result<Value> array() {
        consume('[');
        std::vector<Value> items;
        skip_ws();
        if (consume(']')) return Value::make_array(std::move(items));
        for (;;) {
            skip_ws();
            auto v = value();
            if (!v.ok()) return v;
            items.push_back(std::move(v).take());
            skip_ws();
            if (consume(']')) return Value::make_array(std::move(items));
            if (!consume(',')) return fail("expected ',' or ']'");
        }
    }

    Result<Value> object() {
        consume('{');
        std::vector<std::pair<std::string, Value>> members;
        skip_ws();
        if (consume('}')) return Value::make_object(std::move(members));
        for (;;) {
            skip_ws();
            auto key = string_body();
            if (!key.ok()) return key.error();
            skip_ws();
            if (!consume(':')) return fail("expected ':'");
            skip_ws();
            auto v = value();
            if (!v.ok()) return v;
            members.emplace_back(std::move(key).take(), std::move(v).take());
            skip_ws();
            if (consume('}')) return Value::make_object(std::move(members));
            if (!consume(',')) return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).document(); }

Result<std::vector<Value>> parse_ndjson(std::string_view text) {
    std::vector<Value> out;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos) eol = text.size();
        const std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;
        bool blank = true;
        for (char c : line) {
            if (c != ' ' && c != '\t' && c != '\r') {
                blank = false;
                break;
            }
        }
        if (blank) continue;
        auto v = parse(line);
        if (!v.ok()) {
            return Error::invalid("ndjson line " + std::to_string(line_no) + ": " +
                                  v.error().message);
        }
        out.push_back(std::move(v).take());
    }
    return out;
}

}  // namespace ecfrm::obs::json
