// Lock-cheap metrics substrate: Counter / Gauge / Histogram owned by a
// named MetricRegistry, addressed by (name, labels) pairs following the
// convention ecfrm_<subsystem>_<name>{label="value",...}.
//
// Registration (registry lookup) takes a mutex and may allocate; the hot
// path never does — callers cache the returned reference and each update
// is one (or a few) relaxed atomic operations. Every instrumented call
// site in the tree accepts a null metric pointer and degrades to a no-op
// branch, so the instrumentation costs nothing when no registry is
// attached.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ecfrm::obs {

/// Metric labels: key/value pairs. Order does not matter — the registry
/// canonicalises by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
inline void atomic_add(std::atomic<double>& target, double delta) {
    double old = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(old, old + delta, std::memory_order_relaxed)) {
    }
}
inline void atomic_min(std::atomic<double>& target, double v) {
    double old = target.load(std::memory_order_relaxed);
    while (v < old && !target.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
    }
}
inline void atomic_max(std::atomic<double>& target, double v) {
    double old = target.load(std::memory_order_relaxed);
    while (v > old && !target.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
    }
}
}  // namespace detail

/// Monotonic counter. add() is one relaxed atomic add.
class Counter {
  public:
    void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
    std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/// Last-value gauge with atomic set/add.
class Gauge {
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double delta) { detail::atomic_add(value_, delta); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram of non-negative values (latencies, loads,
/// sizes): each power-of-two octave splits into kSubBuckets linear
/// buckets, so any quantile estimate carries at most ~1/(2*kSubBuckets)
/// relative error. record() is a handful of relaxed atomic updates —
/// no locks, no allocation. Covers [2^kMinExp, 2^kMaxExp); values
/// outside clamp into the edge buckets.
class Histogram {
  public:
    static constexpr int kSubBuckets = 16;
    static constexpr int kMinExp = -40;  // lower edge ~9.1e-13
    static constexpr int kMaxExp = 40;   // upper edge ~1.1e12
    static constexpr int kBuckets = (kMaxExp - kMinExp) * kSubBuckets;

    void record(double v) {
        buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        detail::atomic_add(sum_, v);
        detail::atomic_min(min_, v);
        detail::atomic_max(max_, v);
    }

    std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double min() const { return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed); }
    double max() const { return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed); }
    double mean() const { return count() == 0 ? 0.0 : sum() / static_cast<double>(count()); }

    /// Nearest-rank quantile estimated from the buckets (bucket midpoint,
    /// clamped into the observed [min, max]). q outside [0, 1] clamps.
    double percentile(double q) const;

    /// Bucket edges: bucket i covers [bucket_lower(i), bucket_upper(i)).
    static int bucket_index(double v);
    static double bucket_lower(int index);
    static double bucket_upper(int index) { return bucket_lower(index + 1); }

    /// Samples recorded into bucket `index` (test/exporter hook).
    std::int64_t bucket_count(int index) const {
        return buckets_[static_cast<std::size_t>(index)].load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
    std::atomic<std::int64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{1e300};
    std::atomic<double> max_{-1e300};
};

/// Per-device I/O accounting bundle handed to a BlockDevice (or anything
/// else that reads/writes). All pointers may be null: an unattached
/// device pays one branch per op. Timing is only taken when the matching
/// histogram is attached.
struct IoStats {
    Counter* read_ops = nullptr;
    Counter* read_bytes = nullptr;
    Histogram* read_seconds = nullptr;
    Counter* write_ops = nullptr;
    Counter* write_bytes = nullptr;
    Histogram* write_seconds = nullptr;
    // Failed ops and the bytes they attempted — degraded-mode error rates
    // (ecfrm_store_io_errors_total / ecfrm_store_io_error_bytes_total).
    Counter* read_errors = nullptr;
    Counter* read_error_bytes = nullptr;
    Counter* write_errors = nullptr;
    Counter* write_error_bytes = nullptr;
    // Live per-device queue depth: ops issued but not yet completed
    // (ecfrm_disk_in_flight_ops). Incremented at issue, decremented at
    // completion whether the op succeeded or failed.
    Gauge* in_flight = nullptr;
    // Durability flushes the device actually issued (fflush/fsync). The
    // batched write path flushes once per batch, not once per element —
    // this counter is how tests pin that down (ecfrm_disk_flushes_total).
    Counter* flushes = nullptr;
    // Submitted batch depth: how many I/O ops (SQEs / coalesced runs) one
    // vectored submission put in flight at once — the in-kernel queue
    // depth the async backends achieve (ecfrm_disk_batch_depth).
    Histogram* batch_depth = nullptr;

    void on_read(std::int64_t bytes, double seconds) const {
        if (read_ops != nullptr) read_ops->add(1);
        if (read_bytes != nullptr) read_bytes->add(bytes);
        if (read_seconds != nullptr) read_seconds->record(seconds);
    }
    void on_write(std::int64_t bytes, double seconds) const {
        if (write_ops != nullptr) write_ops->add(1);
        if (write_bytes != nullptr) write_bytes->add(bytes);
        if (write_seconds != nullptr) write_seconds->record(seconds);
    }
    void on_read_error(std::int64_t bytes) const {
        if (read_errors != nullptr) read_errors->add(1);
        if (read_error_bytes != nullptr) read_error_bytes->add(bytes);
    }
    void on_write_error(std::int64_t bytes) const {
        if (write_errors != nullptr) write_errors->add(1);
        if (write_error_bytes != nullptr) write_error_bytes->add(bytes);
    }
    void on_flush(std::int64_t count = 1) const {
        if (flushes != nullptr) flushes->add(count);
    }
    void on_batch_depth(std::int64_t depth) const {
        if (batch_depth != nullptr) batch_depth->record(static_cast<double>(depth));
    }
    void on_issue(std::int64_t ops = 1) const {
        if (in_flight != nullptr) in_flight->add(static_cast<double>(ops));
    }
    void on_settled(std::int64_t ops = 1) const {
        if (in_flight != nullptr) in_flight->add(-static_cast<double>(ops));
    }
    bool reads_timed() const { return read_seconds != nullptr; }
    bool writes_timed() const { return write_seconds != nullptr; }
};

enum class MetricKind { counter, gauge, histogram };

/// One registered metric: (name, canonical labels, kind, instance).
struct MetricEntry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

/// Owns every metric of one process/component. Lookups are keyed on
/// (kind, name, sorted labels); repeated lookups return the same
/// instance, whose address stays stable for the registry's lifetime.
class MetricRegistry {
  public:
    explicit MetricRegistry(std::string name = "ecfrm") : name_(std::move(name)) {}

    MetricRegistry(const MetricRegistry&) = delete;
    MetricRegistry& operator=(const MetricRegistry&) = delete;

    const std::string& name() const { return name_; }

    Counter& counter(const std::string& name, Labels labels = {});
    Gauge& gauge(const std::string& name, Labels labels = {});
    Histogram& histogram(const std::string& name, Labels labels = {});

    /// Attach a HELP string to a metric family (rendered as `# HELP` in
    /// the Prometheus exposition). Later calls overwrite.
    void describe(const std::string& name, std::string help);

    /// HELP string for a family ("" when none was set).
    std::string help(const std::string& name) const;

    /// Per-disk I/O bundle under the ecfrm_disk_* / ecfrm_store_* family.
    IoStats disk_io_stats(int disk);

    std::size_t size() const;

    /// Snapshot of every entry, in registration order (exporters walk
    /// this; the metric pointers stay valid while the registry lives).
    std::vector<const MetricEntry*> entries() const;

    /// Exporters. JSON is newline-delimited (one object per metric);
    /// Prometheus is the text exposition format (histograms as
    /// summaries); console is an aligned human-readable table.
    std::string to_json() const;
    std::string to_prometheus() const;
    std::string to_console() const;

  private:
    MetricEntry& entry(MetricKind kind, const std::string& name, Labels labels);

    std::string name_;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<MetricEntry>> entries_;
    std::map<std::string, MetricEntry*> index_;
    std::map<std::string, std::string> help_;
};

/// Escape a string for a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

/// Escape a Prometheus label value (backslash, quote, newline).
std::string prometheus_escape(const std::string& s);

}  // namespace ecfrm::obs
