// Span-based request tracing into a bounded ring buffer, exportable as
// chrome://tracing "trace event format" JSON (open the file via
// chrome://tracing or https://ui.perfetto.dev).
//
// Two clock domains coexist: wall-clock spans (RAII Span against the
// tracer's steady-clock epoch) for the real store path, and explicit
// timestamps (complete()/instant() with caller-provided microseconds)
// for the simulators' virtual clocks. The ring keeps the most recent
// `capacity` events; older ones are overwritten, never reallocated.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ecfrm::obs {

class Counter;
class MetricRegistry;

struct TraceEvent {
    std::string name;
    std::string cat;
    char phase = 'X';  // 'X' complete, 'i' instant
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::uint64_t tid = 0;
    /// Global append order across all threads (0-based, assigned under
    /// the ring lock). Spans from hedge/pool threads interleave in the
    /// ring and can share identical timestamps; (tid, seq) makes them
    /// orderable and attributable after the fact.
    std::uint64_t seq = 0;
    std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
  public:
    explicit Tracer(std::size_t capacity = 4096);

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Microseconds elapsed since the tracer was constructed (wall clock).
    double now_us() const;

    /// Record a completed span with an explicit timestamp and duration
    /// (simulated or wall clock — the caller owns the clock domain).
    void complete(std::string name, std::string cat, double ts_us, double dur_us,
                  std::vector<std::pair<std::string, std::string>> args = {});

    /// Record a zero-duration instant event.
    void instant(std::string name, std::string cat, double ts_us,
                 std::vector<std::pair<std::string, std::string>> args = {});

    std::size_t capacity() const { return capacity_; }

    /// Events recorded over the tracer's lifetime (>= size()).
    std::size_t recorded() const;

    /// Events lost to ring wraparound (recorded() - size()): the ring
    /// keeps only the newest `capacity` events, and overwrites are
    /// otherwise silent.
    std::size_t dropped() const;

    /// Publish drop accounting as ecfrm_obs_trace_dropped_total in the
    /// given registry (pass nullptr to detach). Drops that already
    /// happened seed the counter, so late attachment loses nothing. Not
    /// synchronised against concurrent push — attach before tracing.
    void attach_metrics(MetricRegistry* registry);

    /// Events currently held (min(recorded, capacity)).
    std::size_t size() const;

    /// Snapshot of the retained events, oldest first.
    std::vector<TraceEvent> events() const;

    /// Chrome trace-event JSON: an array of {"name","cat","ph","ts",...}.
    std::string to_chrome_json() const;

  private:
    void push(TraceEvent event);

    const std::size_t capacity_;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> ring_;
    std::size_t total_ = 0;  // lifetime event count; ring slot = total_ % capacity_
    Counter* dropped_counter_ = nullptr;  // guarded by mu_
};

/// RAII wall-clock span. A null tracer makes every operation a no-op, so
/// instrumented paths stay branch-only when tracing is detached.
class Span {
  public:
    Span(Tracer* tracer, const char* name, const char* cat)
        : tracer_(tracer), name_(name), cat_(cat),
          start_us_(tracer != nullptr ? tracer->now_us() : 0.0) {}

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Annotate the span (shown under "args" in the trace viewer).
    void arg(const char* key, std::string value) {
        if (tracer_ != nullptr) args_.emplace_back(key, std::move(value));
    }
    void arg(const char* key, std::int64_t value) {
        if (tracer_ != nullptr) args_.emplace_back(key, std::to_string(value));
    }

    ~Span() {
        if (tracer_ == nullptr) return;
        tracer_->complete(name_, cat_, start_us_, tracer_->now_us() - start_us_, std::move(args_));
    }

  private:
    Tracer* tracer_;
    const char* name_;
    const char* cat_;
    double start_us_;
    std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace ecfrm::obs
