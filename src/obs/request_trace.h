// Per-request forensics: causal span trees with trace-context
// propagation, per-class sliding SLO windows, and a bounded slow-request
// exemplar store.
//
// The Tracer in trace.h answers "what did the process do recently" — a
// flat ring of spans with no request identity. This layer answers "why
// was *this* read slow": every StripeStore read (and ClusterSim request)
// gets a RequestTrace with a unique id, the recovery ladder appends a
// causal tree under it (plan -> per-disk batch -> retry -> backoff ->
// hedge decode -> replan -> decode -> assemble), and RequestForensics
// aggregates finished traces into windowed percentiles and SLO burn
// rates per request class. Requests that breach a latency threshold or
// that needed recovery (retry/timeout/hedge/replan) keep their full tree
// in a bounded FIFO exemplar store, exportable as NDJSON or as a
// per-request chrome://tracing document.
//
// Thread safety: a RequestTrace may be appended to from hedge/pool
// threads concurrently (one mutex per trace); RequestForensics is fully
// thread-safe. Two clock domains are supported exactly like the Tracer:
// wall-clock callers use the start()/finish() overloads (a process-wide
// steady epoch), the simulators pass explicit microsecond timestamps.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/window.h"

namespace ecfrm::obs {

/// Microseconds on the process-wide forensic steady-clock epoch (set the
/// first time anything asks). All wall-clock traces share it so their
/// timestamps are mutually comparable.
double forensic_now_us();

enum class RequestClass { normal = 0, degraded = 1, scrub = 2, write = 3 };
inline constexpr int kRequestClasses = 4;

const char* request_class_name(RequestClass cls);

/// One node of a request's span tree. Nodes are identified by 1-based
/// ids (0 = no parent, i.e. the root); `seq` is the per-trace append
/// order and `tid` the recording thread, so spans landed by hedge/pool
/// threads stay orderable and attributable after the fact.
///
/// `attrs` is populated on RequestTrace::nodes() snapshots; internally
/// attributes live in one per-trace arena so the hot path never pays a
/// per-span vector allocation.
struct SpanNode {
    std::uint32_t id = 0;
    std::uint32_t parent = 0;
    std::string name;
    double ts_us = 0.0;
    double dur_us = -1.0;  // -1 while the span is still open
    std::uint64_t tid = 0;
    std::uint64_t seq = 0;
    std::vector<std::pair<std::string, std::string>> attrs;
};

/// The causal span tree of one request. Created by RequestForensics and
/// handed down the execution path by pointer; a null pointer anywhere
/// means "not traced" and every operation is a cheap no-op branch at the
/// call site.
class RequestTrace {
  public:
    /// Id of the root span ("request"), created by the constructor.
    static constexpr std::uint32_t kRoot = 1;

    RequestTrace(std::uint64_t id, RequestClass cls, double start_us,
                 std::size_t max_nodes = 512);

    RequestTrace(const RequestTrace&) = delete;
    RequestTrace& operator=(const RequestTrace&) = delete;

    std::uint64_t id() const { return id_; }
    double start_us() const { return start_us_; }

    RequestClass cls() const { return cls_.load(std::memory_order_relaxed); }
    /// Reclassify mid-flight (a normal read that replans is degraded).
    void set_class(RequestClass cls) { cls_.store(cls, std::memory_order_relaxed); }

    /// Attributes for the batched append paths below. Keys must be
    /// string literals (or otherwise outlive the call).
    using IntAttr = std::pair<const char*, std::int64_t>;
    using StrAttr = std::pair<const char*, std::string>;

    /// Open a child span of `parent` at `ts_us` (defaults to the wall
    /// clock). Returns the new span's id, or 0 when the node budget is
    /// exhausted (the drop is counted; attr/end on id 0 are no-ops).
    std::uint32_t begin(std::uint32_t parent, std::string name, double ts_us = -1.0);

    /// Open a phase span (direct child of the root) whose start is pinned
    /// to the previous phase's end — the trace start for the first — so
    /// consecutive phases tile the request with no sampling gap even when
    /// the thread is preempted between two spans. Initial attributes land
    /// in the same lock round-trip as the span itself.
    std::uint32_t begin_phase(std::string name, std::initializer_list<IntAttr> attrs = {});

    /// End timestamp of the last closed root-child span (the trace start
    /// until one closes). Callers finishing a request on the phase
    /// boundary pass this to RequestForensics::finish_at so the root span
    /// ends exactly where its last phase did.
    double phase_cursor_us() const;

    /// Close an open span at `ts_us` (defaults to the wall clock).
    void end(std::uint32_t span, double ts_us = -1.0);

    /// Close an open span and attach integer attributes, one lock
    /// round-trip for the whole batch.
    void end_with(std::uint32_t span, std::initializer_list<IntAttr> attrs, double ts_us = -1.0);

    /// Record an already-measured span in one call. The integer overload
    /// is the hot one: values stay integers until a snapshot formats
    /// them.
    std::uint32_t complete(std::uint32_t parent, std::string name, double ts_us, double dur_us,
                           std::initializer_list<StrAttr> attrs = {});
    std::uint32_t complete(std::uint32_t parent, std::string name, double ts_us, double dur_us,
                           std::initializer_list<IntAttr> attrs);

    /// Attach a typed attribute to a span (disk id, attempt, bytes,
    /// error, ...).
    void attr(std::uint32_t span, const char* key, std::string value);
    void attr(std::uint32_t span, const char* key, std::int64_t value);
    /// Attach several integer attributes under one lock acquisition.
    void attr_all(std::uint32_t span, std::initializer_list<IntAttr> attrs);

    /// Recovery accounting, mirrored from the executor's counters but
    /// scoped to this request — the capture policy keys off these.
    void count_retry() { retries_.fetch_add(1, std::memory_order_relaxed); }
    void count_timeout() { timeouts_.fetch_add(1, std::memory_order_relaxed); }
    void count_hedge() { hedges_.fetch_add(1, std::memory_order_relaxed); }
    void count_replan() { replans_.fetch_add(1, std::memory_order_relaxed); }
    void add_decodes(std::int64_t n) { decodes_.fetch_add(n, std::memory_order_relaxed); }

    int retries() const { return retries_.load(std::memory_order_relaxed); }
    int timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
    int hedges() const { return hedges_.load(std::memory_order_relaxed); }
    int replans() const { return replans_.load(std::memory_order_relaxed); }
    std::int64_t decodes() const { return decodes_.load(std::memory_order_relaxed); }

    /// True when the recovery ladder did anything beyond the clean path.
    bool recovery_active() const {
        return retries() > 0 || timeouts() > 0 || hedges() > 0 || replans() > 0;
    }

    /// Close the root span (and any still-open children) and freeze the
    /// outcome. Idempotent.
    void finish(bool ok, double end_us = -1.0);

    /// Finish and hand back the per-phase attribution in the same lock
    /// round-trip — the RequestForensics sink path, which would otherwise
    /// re-lock for the totals. Returns false (totals untouched) when the
    /// trace was already finished by someone else.
    bool finish_with_totals(bool ok, double end_us,
                            std::vector<std::pair<std::string, double>>& totals);

    bool finished() const { return finished_.load(std::memory_order_acquire); }
    bool ok() const { return ok_.load(std::memory_order_relaxed); }
    /// End-to-end duration (0 until finished).
    double dur_us() const;

    /// Spans appended so far (snapshot, in seq order).
    std::vector<SpanNode> nodes() const;
    std::size_t node_count() const;
    /// Spans rejected by the per-trace node budget.
    std::size_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

    /// Phase attribution: total closed duration of the root's direct
    /// children, merged by name in first-appearance order. The execution
    /// path records those children contiguously, so their sum tracks the
    /// request's end-to-end latency.
    std::vector<std::pair<std::string, double>> phase_totals() const;

    /// This request as a standalone chrome://tracing document.
    std::string chrome_json() const;

    /// One-line JSON object: id/class/timing/recovery counters/phase
    /// breakdown, plus the full span tree when `include_spans`.
    std::string json(bool include_spans) const;

  private:
    /// One attribute in the per-trace arena: attrs of every span live in
    /// a single growing vector instead of one heap vector per node. Keys
    /// are literal pointers and integer values stay integers until a
    /// nodes() snapshot renders them, so the hot path never formats.
    struct AttrRec {
        std::uint32_t span;
        const char* key;
        std::int64_t ival;
        std::string sval;
        bool is_int;
    };

    // All require mu_ held.
    std::uint32_t append_locked(std::uint32_t parent, std::string&& name, double ts_us);
    void attr_locked(std::uint32_t span, const char* key, std::string&& value);
    void attr_locked(std::uint32_t span, const char* key, std::int64_t value);
    std::vector<std::pair<std::string, double>> phase_totals_locked() const;

    const std::uint64_t id_;
    const double start_us_;
    const std::size_t max_nodes_;
    std::atomic<RequestClass> cls_;

    mutable std::mutex mu_;
    std::vector<SpanNode> nodes_;    // guarded by mu_; node id = index + 1
    std::vector<AttrRec> attrs_;     // guarded by mu_; append order
    double end_us_ = -1.0;           // guarded by mu_
    double phase_cursor_us_ = 0.0;   // guarded by mu_; last root-child end

    std::atomic<std::size_t> dropped_{0};
    std::atomic<int> retries_{0};
    std::atomic<int> timeouts_{0};
    std::atomic<int> hedges_{0};
    std::atomic<int> replans_{0};
    std::atomic<std::int64_t> decodes_{0};
    std::atomic<bool> finished_{false};
    std::atomic<bool> ok_{false};
};

/// Tunables for RequestForensics. Defaults suit an interactive store:
/// one-minute windows, capture anything over 100 ms or that needed
/// recovery, keep the last 128 exemplars.
struct ForensicsOptions {
    double window_seconds = 60.0;
    int sub_windows = 6;
    /// Finished requests at or above this latency are captured even when
    /// the recovery ladder stayed cold. <0 disables the latency trigger.
    double slow_threshold_us = 100000.0;
    /// Exemplar store bound (FIFO eviction).
    std::size_t max_exemplars = 128;
    /// Span budget per trace.
    std::size_t max_nodes = 512;
    /// SLO: `slo_objective` of requests under `slo_target_us`.
    double slo_target_us = 100000.0;
    double slo_objective = 0.99;
};

/// Owns the per-class windows/SLOs and the slow-request exemplar store;
/// the factory and sink for every RequestTrace.
class RequestForensics {
  public:
    explicit RequestForensics(ForensicsOptions options = {});

    RequestForensics(const RequestForensics&) = delete;
    RequestForensics& operator=(const RequestForensics&) = delete;

    const ForensicsOptions& options() const { return options_; }

    double now_us() const { return forensic_now_us(); }

    /// Begin a request on the wall clock / at an explicit timestamp.
    std::shared_ptr<RequestTrace> start(RequestClass cls);
    std::shared_ptr<RequestTrace> start_at(RequestClass cls, double ts_us);

    /// Finish a request: close its tree, fold it into the class window,
    /// SLO tracker and cumulative phase totals, and capture it when slow
    /// or recovery-active. Null/already-finished traces are ignored.
    void finish(const std::shared_ptr<RequestTrace>& trace, bool ok);
    void finish_at(const std::shared_ptr<RequestTrace>& trace, bool ok, double end_us);

    /// Requests finished per class (lifetime).
    std::int64_t finished_total(RequestClass cls) const;

    /// Windowed latency quantile for a class at `now_us` (defaults to
    /// the wall clock).
    double windowed_percentile(RequestClass cls, double q, double now_us = -1.0) const;

    SloTracker::Snapshot slo_snapshot(RequestClass cls, double now_us = -1.0) const;

    /// Cumulative per-phase attribution for a class since construction,
    /// microseconds, merged by phase name.
    std::vector<std::pair<std::string, double>> phase_totals(RequestClass cls) const;

    /// Exemplars currently held / evicted so far.
    std::size_t captured() const;
    std::size_t evicted() const;

    /// Look up a captured request by id (null when never captured or
    /// already evicted).
    std::shared_ptr<const RequestTrace> find(std::uint64_t id) const;

    /// Captured traces, oldest first.
    std::vector<std::shared_ptr<const RequestTrace>> exemplars() const;

    /// "ecfrm.slo.v1": per-class windowed p50/p99/p999, counts, target
    /// and burn rates, evaluated at `now_us` (wall clock by default).
    std::string slo_json(double now_us = -1.0) const;

    /// "ecfrm.slow.v1": summaries of every captured request, oldest
    /// first (no span trees — fetch /requests/<id> for one).
    std::string slow_json() const;

    /// One captured request per line, full span tree included.
    std::string slowlog_ndjson() const;

  private:
    struct PerClass {
        PerClass(const ForensicsOptions& o)
            : window(o.window_seconds, o.sub_windows),
              slo(SloTracker::Options{o.slo_target_us, o.slo_objective, o.window_seconds,
                                      o.sub_windows}) {}
        WindowedHistogram window;
        SloTracker slo;
        std::atomic<std::int64_t> finished{0};
        mutable std::mutex phase_mu;
        std::vector<std::pair<std::string, double>> phase_totals;  // guarded by phase_mu
    };

    PerClass& per_class(RequestClass cls) {
        return *classes_[static_cast<std::size_t>(cls)];
    }
    const PerClass& per_class(RequestClass cls) const {
        return *classes_[static_cast<std::size_t>(cls)];
    }

    ForensicsOptions options_;
    std::atomic<std::uint64_t> next_id_{1};
    std::vector<std::unique_ptr<PerClass>> classes_;

    mutable std::mutex exemplar_mu_;
    std::deque<std::shared_ptr<RequestTrace>> exemplars_;  // guarded by exemplar_mu_
    std::size_t evicted_ = 0;                              // guarded by exemplar_mu_
};

}  // namespace ecfrm::obs
