// Live metrics exposition: a dependency-free HTTP/1.1 server that scrapes
// a MetricRegistry, plus a Snapshotter that turns monotonic counters into
// per-second rates by differencing periodic captures.
//
// The server is deliberately tiny — a blocking accept loop on one
// background thread, line-oriented request parsing, Connection: close on
// every response. It exists so a running simulation or CLI archive can be
// watched from `curl`/Prometheus without linking any HTTP library, not to
// survive the open internet: it binds loopback only.
//
// Routes:
//   GET /               index: every route with a one-line description
//   GET /metrics        Prometheus text exposition (to_prometheus)
//   GET /metrics.json   registry snapshot + snapshotter rates, one document
//   GET /slo            windowed SLO per request class (ecfrm.slo.v1)
//   GET /slow           captured slow-request summaries (ecfrm.slow.v1)
//   GET /slowlog        captured slow requests as NDJSON, full span trees
//   GET /requests/<id>  one captured request as chrome://tracing JSON
//   GET /disks          live per-disk heat snapshots (ecfrm.disks.v1)
//   GET /heat           cluster balance + straggler view (ecfrm.heat.v1)
//   GET /pipeline       online write/repair pipeline state (ecfrm.pipeline.v1)
//   GET /healthz        "ok"
//   GET /quitquitquit   releases wait_for_quit() — remote shutdown hook
//
// The /slo, /slow, /slowlog and /requests routes answer 404 until a
// RequestForensics is attached; /disks and /heat answer 404 until a
// DiskHeatModel is attached; /pipeline answers 404 until a source is set
// via set_pipeline_source.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace ecfrm::obs {

class RequestForensics;
class DiskHeatModel;

/// Per-metric rate between the two most recent captures.
struct MetricRate {
    std::string name;
    Labels labels;
    double per_second = 0.0;
};

/// Periodically snapshots a registry's monotonic totals (counter values,
/// histogram counts) and exposes the delta over the last interval as a
/// rate. Counters only ever tell you "how much so far"; the snapshotter
/// is what makes "how fast right now" observable from a live scrape.
///
/// capture() is public so tests (and single-shot tools) can drive the
/// clock deterministically instead of running the background thread.
class Snapshotter {
  public:
    explicit Snapshotter(const MetricRegistry* registry, double interval_seconds = 1.0);
    ~Snapshotter();

    Snapshotter(const Snapshotter&) = delete;
    Snapshotter& operator=(const Snapshotter&) = delete;

    /// Start the periodic capture thread. No-op when already running.
    void start();

    /// Stop and join the capture thread. Safe to call when not running.
    void stop();

    /// Take one capture at `now_seconds` (defaults to the steady clock).
    /// Gauges and non-monotonic values are skipped — rates only make
    /// sense for totals.
    void capture();
    void capture(double now_seconds);

    /// Rates computed from the last two captures, in registration order.
    /// Empty until two time-distinct captures exist. A capture whose
    /// clock did not advance past the newest one folds into the current
    /// window (its totals replace the latest sample) rather than
    /// truncating the window to zero width. New metrics (present in the
    /// newest capture only) are reported as if they started from zero at
    /// the previous capture.
    std::vector<MetricRate> rates() const;

    /// Captures taken so far.
    std::int64_t captures() const;

  private:
    struct Sample {
        std::string name;
        Labels labels;
        double total = 0.0;
    };
    struct Capture {
        double at_seconds = 0.0;
        std::vector<Sample> samples;
    };

    const MetricRegistry* registry_;
    double interval_seconds_;

    mutable std::mutex mu_;
    Capture previous_;
    Capture latest_;
    std::int64_t captures_ = 0;

    std::mutex run_mu_;
    std::condition_variable run_cv_;
    bool running_ = false;
    std::thread thread_;
};

/// Loopback HTTP server exposing one registry (and optionally one
/// snapshotter's rates). start() binds and spawns the accept thread;
/// stop() (or destruction) shuts it down. Scrape traffic is itself
/// counted as ecfrm_obs_http_requests_total{path=...}.
class ExpositionServer {
  public:
    explicit ExpositionServer(MetricRegistry* registry, Snapshotter* snapshotter = nullptr,
                              RequestForensics* forensics = nullptr,
                              DiskHeatModel* heat = nullptr);
    ~ExpositionServer();

    ExpositionServer(const ExpositionServer&) = delete;
    ExpositionServer& operator=(const ExpositionServer&) = delete;

    /// Bind 127.0.0.1:port (0 picks an ephemeral port, readable via
    /// port()) and start serving. Fails if already running or the bind
    /// is refused.
    Status start(int port);

    /// Stop accepting, close the socket, join the server thread.
    void stop();

    bool running() const;

    /// Bound port (valid after a successful start()).
    int port() const { return port_; }

    /// Attach (or swap) the heat model serving /disks and /heat. Safe
    /// while running: callers that only learn the device count after the
    /// server is up (the CLI opens its archive post-bind) attach late.
    void attach_heat(DiskHeatModel* heat) { heat_.store(heat, std::memory_order_release); }

    /// Attach the /pipeline route's JSON producer (typically
    /// EcPipeline::to_json bound to a live pipeline). An empty function
    /// detaches; the route answers 404 until one is set. Safe while
    /// running.
    void set_pipeline_source(std::function<std::string()> source);

    /// Block until GET /quitquitquit arrives or `timeout_seconds`
    /// passes. Returns true when quit was requested. Lets a CLI hold a
    /// finished run open for scraping with a remote release valve.
    bool wait_for_quit(double timeout_seconds);

  private:
    void serve_loop();
    void handle_connection(int fd);
    std::string respond(const std::string& path);

    MetricRegistry* registry_;
    Snapshotter* snapshotter_;
    RequestForensics* forensics_;
    std::atomic<DiskHeatModel*> heat_;
    mutable std::mutex pipeline_mu_;              // guards pipeline_source_
    std::function<std::string()> pipeline_source_;

    int listen_fd_ = -1;
    int port_ = 0;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};

    mutable std::mutex quit_mu_;
    std::condition_variable quit_cv_;
    bool quit_requested_ = false;
};

}  // namespace ecfrm::obs
