#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace ecfrm::obs {

int Histogram::bucket_index(double v) {
    if (!(v > 0.0)) return 0;
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
    if (exp <= kMinExp) return 0;
    if (exp > kMaxExp) return kBuckets - 1;
    int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return (exp - 1 - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int index) {
    const int octave = index / kSubBuckets;
    const int sub = index % kSubBuckets;
    return (0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets)) *
           std::ldexp(1.0, kMinExp + octave + 1);
}

double Histogram::percentile(double q) const {
    const std::int64_t n = count();
    if (n == 0) return 0.0;
    if (!(q >= 0.0)) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Nearest rank: the smallest bucket whose cumulative count reaches
    // ceil(q * n) (at least 1).
    const auto rank = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n))));
    std::int64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        cumulative += bucket_count(i);
        if (cumulative >= rank) {
            const double mid = 0.5 * (bucket_lower(i) + bucket_upper(i));
            return std::clamp(mid, min(), max());
        }
    }
    return max();  // racing writers: fall back to the observed maximum
}

namespace {

Labels canonical(Labels labels) {
    std::sort(labels.begin(), labels.end());
    return labels;
}

std::string entry_key(MetricKind kind, const std::string& name, const Labels& labels) {
    std::string key;
    key += static_cast<char>('0' + static_cast<int>(kind));
    key += name;
    for (const auto& [k, v] : labels) {
        key += '\x1f';
        key += k;
        key += '\x1e';
        key += v;
    }
    return key;
}

}  // namespace

MetricEntry& MetricRegistry::entry(MetricKind kind, const std::string& name, Labels labels) {
    labels = canonical(std::move(labels));
    const std::string key = entry_key(kind, name, labels);
    std::lock_guard lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) return *it->second;
    auto owned = std::make_unique<MetricEntry>();
    owned->name = name;
    owned->labels = std::move(labels);
    owned->kind = kind;
    switch (kind) {
        case MetricKind::counter: owned->counter = std::make_unique<Counter>(); break;
        case MetricKind::gauge: owned->gauge = std::make_unique<Gauge>(); break;
        case MetricKind::histogram: owned->histogram = std::make_unique<Histogram>(); break;
    }
    MetricEntry* raw = owned.get();
    entries_.push_back(std::move(owned));
    index_.emplace(key, raw);
    return *raw;
}

Counter& MetricRegistry::counter(const std::string& name, Labels labels) {
    return *entry(MetricKind::counter, name, std::move(labels)).counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, Labels labels) {
    return *entry(MetricKind::gauge, name, std::move(labels)).gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name, Labels labels) {
    return *entry(MetricKind::histogram, name, std::move(labels)).histogram;
}

void MetricRegistry::describe(const std::string& name, std::string help) {
    std::lock_guard lk(mu_);
    help_[name] = std::move(help);
}

std::string MetricRegistry::help(const std::string& name) const {
    std::lock_guard lk(mu_);
    auto it = help_.find(name);
    return it == help_.end() ? std::string() : it->second;
}

IoStats MetricRegistry::disk_io_stats(int disk) {
    const Labels labels{{"disk", std::to_string(disk)}};
    describe("ecfrm_disk_read_ops_total", "Successful element reads served by the device");
    describe("ecfrm_disk_write_ops_total", "Successful element writes absorbed by the device");
    describe("ecfrm_store_io_errors_total", "Device ops that returned an error, by op type");
    describe("ecfrm_store_io_error_bytes_total", "Payload bytes of failed device ops, by op type");
    describe("ecfrm_disk_in_flight_ops", "Device ops issued but not yet completed (live queue depth)");
    describe("ecfrm_disk_flushes_total", "Durability flushes (fflush/fsync) the device issued");
    describe("ecfrm_disk_batch_depth", "I/O ops one vectored submission put in flight at once");
    IoStats io;
    io.in_flight = &gauge("ecfrm_disk_in_flight_ops", labels);
    io.flushes = &counter("ecfrm_disk_flushes_total", labels);
    io.batch_depth = &histogram("ecfrm_disk_batch_depth", labels);
    io.read_ops = &counter("ecfrm_disk_read_ops_total", labels);
    io.read_bytes = &counter("ecfrm_disk_read_bytes_total", labels);
    io.read_seconds = &histogram("ecfrm_disk_read_seconds", labels);
    io.write_ops = &counter("ecfrm_disk_write_ops_total", labels);
    io.write_bytes = &counter("ecfrm_disk_write_bytes_total", labels);
    io.write_seconds = &histogram("ecfrm_disk_write_seconds", labels);
    const Labels read_labels{{"disk", std::to_string(disk)}, {"op", "read"}};
    const Labels write_labels{{"disk", std::to_string(disk)}, {"op", "write"}};
    io.read_errors = &counter("ecfrm_store_io_errors_total", read_labels);
    io.read_error_bytes = &counter("ecfrm_store_io_error_bytes_total", read_labels);
    io.write_errors = &counter("ecfrm_store_io_errors_total", write_labels);
    io.write_error_bytes = &counter("ecfrm_store_io_error_bytes_total", write_labels);
    return io;
}

std::size_t MetricRegistry::size() const {
    std::lock_guard lk(mu_);
    return entries_.size();
}

std::vector<const MetricEntry*> MetricRegistry::entries() const {
    std::lock_guard lk(mu_);
    std::vector<const MetricEntry*> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.get());
    return out;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string prometheus_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

namespace {

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string json_labels(const Labels& labels) {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    out += "}";
    return out;
}

std::string prometheus_labels(const Labels& labels, const Labels& extra = {}) {
    if (labels.empty() && extra.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto* set : {&labels, &extra}) {
        for (const auto& [k, v] : *set) {
            if (!first) out += ",";
            first = false;
            out += k + "=\"" + prometheus_escape(v) + "\"";
        }
    }
    out += "}";
    return out;
}

std::string display_labels(const Labels& labels) {
    if (labels.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ",";
        first = false;
        out += k + "=" + v;
    }
    out += "}";
    return out;
}

}  // namespace

std::string MetricRegistry::to_json() const {
    std::string out;
    for (const MetricEntry* e : entries()) {
        out += "{\"name\":\"" + json_escape(e->name) + "\",\"labels\":" + json_labels(e->labels);
        switch (e->kind) {
            case MetricKind::counter:
                out += ",\"type\":\"counter\",\"value\":" + std::to_string(e->counter->value());
                break;
            case MetricKind::gauge:
                out += ",\"type\":\"gauge\",\"value\":" + format_double(e->gauge->value());
                break;
            case MetricKind::histogram: {
                const Histogram& h = *e->histogram;
                out += ",\"type\":\"histogram\",\"count\":" + std::to_string(h.count());
                out += ",\"sum\":" + format_double(h.sum());
                out += ",\"min\":" + format_double(h.min());
                out += ",\"max\":" + format_double(h.max());
                out += ",\"mean\":" + format_double(h.mean());
                out += ",\"p50\":" + format_double(h.percentile(0.50));
                out += ",\"p95\":" + format_double(h.percentile(0.95));
                out += ",\"p99\":" + format_double(h.percentile(0.99));
                break;
            }
        }
        out += "}\n";
    }
    return out;
}

std::string MetricRegistry::to_prometheus() const {
    std::string out;
    std::set<std::string> typed;
    // First exposition of a family: `# HELP` (when described) then `# TYPE`.
    auto header = [&](const std::string& name, const char* type) {
        if (!typed.insert(name).second) return;
        const std::string h = help(name);
        if (!h.empty()) out += "# HELP " + name + " " + prometheus_escape(h) + "\n";
        out += "# TYPE " + name + " " + type + "\n";
    };
    for (const MetricEntry* e : entries()) {
        switch (e->kind) {
            case MetricKind::counter:
                header(e->name, "counter");
                out += e->name + prometheus_labels(e->labels) + " " +
                       std::to_string(e->counter->value()) + "\n";
                break;
            case MetricKind::gauge:
                header(e->name, "gauge");
                out += e->name + prometheus_labels(e->labels) + " " +
                       format_double(e->gauge->value()) + "\n";
                break;
            case MetricKind::histogram: {
                header(e->name, "summary");
                const Histogram& h = *e->histogram;
                for (const auto& [q, name] :
                     {std::pair{0.50, "0.5"}, std::pair{0.95, "0.95"}, std::pair{0.99, "0.99"}}) {
                    out += e->name + prometheus_labels(e->labels, {{"quantile", name}}) + " " +
                           format_double(h.percentile(q)) + "\n";
                }
                out += e->name + "_sum" + prometheus_labels(e->labels) + " " + format_double(h.sum()) + "\n";
                out += e->name + "_count" + prometheus_labels(e->labels) + " " +
                       std::to_string(h.count()) + "\n";
                break;
            }
        }
    }
    return out;
}

std::string MetricRegistry::to_console() const {
    const auto all = entries();
    std::size_t width = 0;
    std::vector<std::string> keys;
    keys.reserve(all.size());
    for (const MetricEntry* e : all) {
        keys.push_back(e->name + display_labels(e->labels));
        width = std::max(width, keys.back().size());
    }
    std::string out = "== metrics (" + name_ + ") ==\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
        const MetricEntry* e = all[i];
        std::string line = keys[i];
        line.resize(width + 2, ' ');
        switch (e->kind) {
            case MetricKind::counter: line += std::to_string(e->counter->value()); break;
            case MetricKind::gauge: line += format_double(e->gauge->value()); break;
            case MetricKind::histogram: {
                const Histogram& h = *e->histogram;
                line += "count=" + std::to_string(h.count()) + " mean=" + format_double(h.mean()) +
                        " p50=" + format_double(h.percentile(0.5)) +
                        " p95=" + format_double(h.percentile(0.95)) +
                        " p99=" + format_double(h.percentile(0.99)) + " max=" + format_double(h.max());
                break;
            }
        }
        out += line + "\n";
    }
    return out;
}

}  // namespace ecfrm::obs
