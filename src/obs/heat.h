// DiskHeatModel: a live per-device health/heat scoreboard with a
// cluster-level balance view — the runtime counterpart of the offline
// closed-form load analysis in core/analysis.
//
// The planners *predict* how a layout spreads read load across disks;
// this model *measures* it. Each device tracks, over a sliding window
// (reusing the obs::window machinery): completion latency (EWMA mean +
// windowed mean/p99), ops/bytes throughput, error/timeout/retry counts,
// and a live in-flight op gauge. The cluster view folds those into
// balance metrics — max/mean load factor, coefficient-of-variation skew
// index, hottest disk — plus the windowed mean of per-request max batch
// depth, which for fixed-size uniform reads converges to exactly
// core/analysis::closed_form_max_load (the predicted-vs-measured test
// hook). A straggler score flags devices whose windowed mean latency
// deviates from the fleet median by `straggler_factor`.
//
// The model is a *control input*, not just a dashboard: the executor's
// auto_hedge policy derives its hedge deadline from the fleet's windowed
// p99 (hedge_deadline_ms), and the degraded planner's health tie-break
// consumes straggler_mask().
//
// Cost model: hooks fire once per disk per fetch round (not per element
// op), so the mutex inside each windowed structure is touched a handful
// of times per request; in-flight tracking is one relaxed atomic per
// issue/complete. Clock domain is the caller's (wall or simulated) —
// stick to one per instance; wall-clock callers use now_seconds().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/window.h"

namespace ecfrm::obs {

struct HeatOptions {
    double window_seconds = 60.0;
    int sub_windows = 6;
    /// EWMA weight of the newest latency sample (per completion).
    double ewma_alpha = 0.2;
    /// Straggler flag: windowed mean latency >= factor * fleet median.
    double straggler_factor = 3.0;
    /// Windowed completions a disk needs before it is judged (straggler
    /// flagging and hedge-deadline derivation both skip colder disks).
    std::int64_t min_ops = 16;
};

/// Point-in-time view of one device (all windowed figures cover the
/// model's sliding window as of the query's `now`).
struct DiskHeatSnapshot {
    int disk = 0;
    std::int64_t in_flight = 0;
    std::int64_t total_ops = 0;    // cumulative element ops
    std::int64_t total_bytes = 0;  // cumulative payload bytes
    std::int64_t ops = 0;          // element ops in window
    std::int64_t bytes = 0;        // payload bytes in window
    double ops_per_sec = 0.0;
    double bytes_per_sec = 0.0;
    double ewma_latency_us = 0.0;  // EWMA of per-completion latency
    double mean_latency_us = 0.0;  // windowed mean
    double p99_latency_us = 0.0;   // windowed p99
    std::int64_t errors = 0;       // in window
    std::int64_t timeouts = 0;     // in window
    std::int64_t retries = 0;      // in window
    double error_rate = 0.0;       // (errors + timeouts) per completion
    /// mean_latency / fleet median of means; 0 when the disk (or the
    /// fleet) lacks min_ops samples.
    double straggler_score = 0.0;
    bool straggler = false;
};

/// Cluster-level balance view over the same window.
struct ClusterHeatSnapshot {
    double now_seconds = 0.0;
    double window_seconds = 0.0;
    int disks = 0;
    std::int64_t requests = 0;       // requests observed in window
    /// Windowed mean of per-request max per-disk batch depth — the
    /// measured counterpart of core/analysis::closed_form_max_load.
    double measured_max_load = 0.0;
    /// max/mean of per-disk windowed ops (1.0 = perfectly balanced;
    /// 0 when the window is empty).
    double load_factor = 0.0;
    /// Coefficient of variation (stddev/mean) of per-disk windowed ops.
    double skew_cov = 0.0;
    int hottest_disk = -1;           // most windowed ops (-1: idle)
    double fleet_median_latency_us = 0.0;  // median of windowed means
    std::vector<int> stragglers;     // flagged disk ids, ascending
};

class DiskHeatModel {
  public:
    explicit DiskHeatModel(int disks, HeatOptions options = {});

    DiskHeatModel(const DiskHeatModel&) = delete;
    DiskHeatModel& operator=(const DiskHeatModel&) = delete;

    int disks() const { return static_cast<int>(per_disk_.size()); }
    const HeatOptions& options() const { return options_; }

    /// Monotonic wall-clock seconds for callers without their own clock
    /// (the simulators pass sim-time instead).
    static double now_seconds();

    // ---- feed hooks (tolerant of out-of-range disk ids: no-ops) ----

    /// A submission queue for `disk` went in flight.
    void on_issue(int disk);
    /// The queue completed: `ops` element reads totalling `bytes`, the
    /// whole queue taking `latency_us`. Decrements in-flight.
    void on_complete(int disk, std::int64_t ops, std::int64_t bytes, double latency_us,
                     double now_seconds);
    /// A WRITE queue completed: accounted into the load side of the
    /// scoreboard (in-flight, ops, bytes) but kept out of the latency
    /// window and EWMA — those drive the READ hedge deadline and
    /// straggler flagging, and batched write-queue durations have a
    /// different shape that would poison both (a fill phase of fast
    /// write samples collapses the derived deadline below a healthy
    /// read queue's latency, hedging everything).
    void on_write_complete(int disk, std::int64_t ops, std::int64_t bytes, double now_seconds);
    void on_error(int disk, double now_seconds);
    void on_timeout(int disk, double now_seconds);
    void on_retry(int disk, double now_seconds);
    /// One request's first-round max per-disk batch depth (elements).
    void on_request(std::int64_t max_load, double now_seconds);

    std::int64_t in_flight(int disk) const;

    // ---- queries ----

    DiskHeatSnapshot disk_snapshot(int disk, double now_seconds) const;
    ClusterHeatSnapshot snapshot(double now_seconds) const;

    /// Per-disk straggler flags (size disks(), 1 = flagged). Cheap enough
    /// to call per degraded replan.
    std::vector<char> straggler_mask(double now_seconds) const;

    /// Adaptive hedge deadline: factor * median of the participating
    /// disks' windowed p99 latencies (in ms), clamped to at least
    /// `min_ms`. The median makes a single straggler unable to drag the
    /// deadline up to its own tail. Returns 0 when fewer than two
    /// participants have min_ops windowed samples (caller falls back to
    /// its static policy).
    double hedge_deadline_ms(const std::vector<int>& participating, double factor, double min_ms,
                             double now_seconds) const;

    // ---- exports ----

    /// "ecfrm.disks.v1": per-disk snapshot array (the /disks route).
    std::string disks_json(double now_seconds) const;
    /// "ecfrm.heat.v1": cluster balance + per-disk detail (the /heat
    /// route and `ecfrm_cli heat --out`).
    std::string heat_json(double now_seconds) const;
    /// One JSON object per disk per line (NDJSON dump).
    std::string disks_ndjson(double now_seconds) const;

  private:
    struct PerDisk {
        std::atomic<std::int64_t> in_flight{0};
        std::atomic<std::int64_t> total_ops{0};
        std::atomic<std::int64_t> total_bytes{0};
        std::atomic<double> ewma_us{0.0};
        std::atomic<bool> ewma_primed{false};
        WindowedHistogram latency_us;
        WindowedCounter ops;
        WindowedCounter bytes;
        WindowedCounter errors;
        WindowedCounter timeouts;
        WindowedCounter retries;

        explicit PerDisk(const HeatOptions& o)
            : latency_us(o.window_seconds, o.sub_windows),
              ops(o.window_seconds, o.sub_windows),
              bytes(o.window_seconds, o.sub_windows),
              errors(o.window_seconds, o.sub_windows),
              timeouts(o.window_seconds, o.sub_windows),
              retries(o.window_seconds, o.sub_windows) {}
    };

    bool valid(int disk) const { return disk >= 0 && disk < disks(); }
    /// Median of per-disk windowed mean latencies over disks with
    /// min_ops samples (0 when fewer than one qualifies).
    double fleet_median_mean_us(double now_seconds) const;

    HeatOptions options_;
    std::vector<std::unique_ptr<PerDisk>> per_disk_;
    WindowedHistogram request_max_load_;
};

}  // namespace ecfrm::obs
