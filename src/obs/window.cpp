#include "obs/window.h"

#include <algorithm>
#include <cmath>

namespace ecfrm::obs {

// ---------------------------------------------------------- WindowedHistogram

WindowedHistogram::WindowedHistogram(double window_seconds, int sub_windows) {
    const int subs = std::max(1, sub_windows);
    const double window = window_seconds > 0.0 ? window_seconds : 60.0;
    sub_seconds_ = window / static_cast<double>(subs);
    subs_.resize(static_cast<std::size_t>(subs));
    for (Sub& s : subs_) s.buckets.assign(static_cast<std::size_t>(Histogram::kBuckets), 0);
}

std::int64_t WindowedHistogram::epoch_of(double now_seconds) const {
    return static_cast<std::int64_t>(std::floor(now_seconds / sub_seconds_));
}

void WindowedHistogram::advance(std::int64_t epoch) const {
    // A slice is live while its epoch is within the last `subs` epochs;
    // anything older has slid out of the window and resets in place (the
    // ring slot is about to be reused for a newer epoch anyway).
    const std::int64_t oldest = epoch - static_cast<std::int64_t>(subs_.size()) + 1;
    for (Sub& s : subs_) {
        if (s.epoch >= oldest && s.epoch <= epoch) continue;
        if (s.epoch == -1) continue;
        s.epoch = -1;
        std::fill(s.buckets.begin(), s.buckets.end(), 0u);
        s.count = 0;
        s.sum = 0.0;
        s.min = 0.0;
        s.max = 0.0;
    }
}

void WindowedHistogram::record(double value, double now_seconds) {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);
    Sub& s = subs_[static_cast<std::size_t>(((epoch % static_cast<std::int64_t>(subs_.size())) +
                                             static_cast<std::int64_t>(subs_.size())) %
                                            static_cast<std::int64_t>(subs_.size()))];
    if (s.epoch != epoch) {
        // The slot held an expired epoch (cleared above) or is fresh.
        s.epoch = epoch;
    }
    ++s.buckets[static_cast<std::size_t>(Histogram::bucket_index(value))];
    if (s.count == 0) {
        s.min = value;
        s.max = value;
    } else {
        s.min = std::min(s.min, value);
        s.max = std::max(s.max, value);
    }
    ++s.count;
    s.sum += value;
}

std::int64_t WindowedHistogram::count(double now_seconds) const {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);
    std::int64_t total = 0;
    for (const Sub& s : subs_) {
        if (s.epoch != -1) total += s.count;
    }
    return total;
}

double WindowedHistogram::sum(double now_seconds) const {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);
    double total = 0.0;
    for (const Sub& s : subs_) {
        if (s.epoch != -1) total += s.sum;
    }
    return total;
}

double WindowedHistogram::mean(double now_seconds) const {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);
    std::int64_t n = 0;
    double total = 0.0;
    for (const Sub& s : subs_) {
        if (s.epoch == -1) continue;
        n += s.count;
        total += s.sum;
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double WindowedHistogram::percentile(double q, double now_seconds) const {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);

    std::int64_t total = 0;
    double lo = 0.0;
    double hi = 0.0;
    bool any = false;
    for (const Sub& s : subs_) {
        if (s.epoch == -1 || s.count == 0) continue;
        total += s.count;
        lo = any ? std::min(lo, s.min) : s.min;
        hi = any ? std::max(hi, s.max) : s.max;
        any = true;
    }
    if (total == 0) return 0.0;
    const double clamped_q = std::clamp(q, 0.0, 1.0);
    // Nearest rank over the merged bucket counts, mirroring
    // Histogram::percentile: midpoint of the target bucket, clamped into
    // the observed [min, max] so edge quantiles stay exact.
    const auto rank = static_cast<std::int64_t>(
        std::ceil(clamped_q * static_cast<double>(total)));
    const std::int64_t target = std::max<std::int64_t>(1, rank);
    std::int64_t seen = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        std::int64_t here = 0;
        for (const Sub& s : subs_) {
            if (s.epoch != -1) here += s.buckets[static_cast<std::size_t>(b)];
        }
        if (here == 0) continue;
        seen += here;
        if (seen >= target) {
            const double mid = 0.5 * (Histogram::bucket_lower(b) + Histogram::bucket_upper(b));
            return std::clamp(mid, lo, hi);
        }
    }
    return hi;
}

// ------------------------------------------------------------ WindowedCounter

WindowedCounter::WindowedCounter(double window_seconds, int sub_windows) {
    const int subs = std::max(1, sub_windows);
    const double window = window_seconds > 0.0 ? window_seconds : 60.0;
    sub_seconds_ = window / static_cast<double>(subs);
    subs_.resize(static_cast<std::size_t>(subs));
}

std::int64_t WindowedCounter::epoch_of(double now_seconds) const {
    return static_cast<std::int64_t>(std::floor(now_seconds / sub_seconds_));
}

void WindowedCounter::advance(std::int64_t epoch) const {
    const std::int64_t oldest = epoch - static_cast<std::int64_t>(subs_.size()) + 1;
    for (Sub& s : subs_) {
        if (s.epoch >= oldest && s.epoch <= epoch) continue;
        s.epoch = -1;
        s.value = 0;
    }
}

void WindowedCounter::add(std::int64_t delta, double now_seconds) {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);
    Sub& s = subs_[static_cast<std::size_t>(((epoch % static_cast<std::int64_t>(subs_.size())) +
                                             static_cast<std::int64_t>(subs_.size())) %
                                            static_cast<std::int64_t>(subs_.size()))];
    if (s.epoch != epoch) {
        s.epoch = epoch;
        s.value = 0;
    }
    s.value += delta;
}

std::int64_t WindowedCounter::total(double now_seconds) const {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);
    std::int64_t total = 0;
    for (const Sub& s : subs_) {
        if (s.epoch != -1) total += s.value;
    }
    return total;
}

double WindowedCounter::rate(double now_seconds) const {
    const double window = window_seconds();
    return window > 0.0 ? static_cast<double>(total(now_seconds)) / window : 0.0;
}

// ----------------------------------------------------------------- SloTracker

SloTracker::SloTracker(Options options) : options_(options) {
    const int subs = std::max(1, options_.sub_windows);
    const double window = options_.window_seconds > 0.0 ? options_.window_seconds : 60.0;
    options_.sub_windows = subs;
    options_.window_seconds = window;
    sub_seconds_ = window / static_cast<double>(subs);
    subs_.resize(static_cast<std::size_t>(subs));
}

std::int64_t SloTracker::epoch_of(double now_seconds) const {
    return static_cast<std::int64_t>(std::floor(now_seconds / sub_seconds_));
}

void SloTracker::advance(std::int64_t epoch) const {
    const std::int64_t oldest = epoch - static_cast<std::int64_t>(subs_.size()) + 1;
    for (Sub& s : subs_) {
        if (s.epoch >= oldest && s.epoch <= epoch) continue;
        s.epoch = -1;
        s.good = 0;
        s.bad = 0;
    }
}

void SloTracker::record(double latency_us, bool ok, double now_seconds) {
    const std::int64_t epoch = epoch_of(now_seconds);
    const bool breach = !ok || latency_us > options_.target_latency_us;
    std::lock_guard lk(mu_);
    advance(epoch);
    Sub& s = subs_[static_cast<std::size_t>(((epoch % static_cast<std::int64_t>(subs_.size())) +
                                             static_cast<std::int64_t>(subs_.size())) %
                                            static_cast<std::int64_t>(subs_.size()))];
    if (s.epoch != epoch) {
        s.epoch = epoch;
        s.good = 0;
        s.bad = 0;
    }
    if (breach) {
        ++s.bad;
    } else {
        ++s.good;
    }
}

SloTracker::Snapshot SloTracker::snapshot(double now_seconds) const {
    const std::int64_t epoch = epoch_of(now_seconds);
    std::lock_guard lk(mu_);
    advance(epoch);

    Snapshot snap;
    std::int64_t fast_total = 0;
    std::int64_t fast_bad = 0;
    for (const Sub& s : subs_) {
        if (s.epoch == -1) continue;
        snap.total += s.good + s.bad;
        snap.breaches += s.bad;
        if (s.epoch == epoch) {
            fast_total = s.good + s.bad;
            fast_bad = s.bad;
        }
    }
    const double budget = 1.0 - options_.objective;  // allowed bad fraction
    if (snap.total > 0) {
        snap.compliance = 1.0 - static_cast<double>(snap.breaches) /
                                    static_cast<double>(snap.total);
        if (budget > 0.0) {
            snap.slow_burn = (static_cast<double>(snap.breaches) /
                              static_cast<double>(snap.total)) /
                             budget;
        } else {
            snap.slow_burn = snap.breaches > 0 ? 1e9 : 0.0;
        }
    }
    if (fast_total > 0) {
        if (budget > 0.0) {
            snap.fast_burn =
                (static_cast<double>(fast_bad) / static_cast<double>(fast_total)) / budget;
        } else {
            snap.fast_burn = fast_bad > 0 ? 1e9 : 0.0;
        }
    }
    snap.budget_remaining = std::max(0.0, 1.0 - snap.slow_burn);
    return snap;
}

}  // namespace ecfrm::obs
