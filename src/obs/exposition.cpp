#include "obs/exposition.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/heat.h"
#include "obs/request_trace.h"

namespace ecfrm::obs {

namespace {

double steady_seconds() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

// ---------------------------------------------------------------- Snapshotter

Snapshotter::Snapshotter(const MetricRegistry* registry, double interval_seconds)
    : registry_(registry), interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 1.0) {}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::start() {
    {
        std::lock_guard lk(run_mu_);
        if (running_) return;
        running_ = true;
    }
    thread_ = std::thread([this] {
        std::unique_lock lk(run_mu_);
        while (running_) {
            lk.unlock();
            capture();
            lk.lock();
            run_cv_.wait_for(lk, std::chrono::duration<double>(interval_seconds_),
                             [this] { return !running_; });
        }
    });
}

void Snapshotter::stop() {
    {
        std::lock_guard lk(run_mu_);
        if (!running_) {
            if (thread_.joinable()) thread_.join();
            return;
        }
        running_ = false;
    }
    run_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

void Snapshotter::capture() { capture(steady_seconds()); }

void Snapshotter::capture(double now_seconds) {
    if (registry_ == nullptr) return;
    Capture next;
    next.at_seconds = now_seconds;
    for (const MetricEntry* e : registry_->entries()) {
        Sample s;
        s.name = e->name;
        s.labels = e->labels;
        switch (e->kind) {
            case MetricKind::counter: s.total = static_cast<double>(e->counter->value()); break;
            case MetricKind::histogram: s.total = static_cast<double>(e->histogram->count()); break;
            case MetricKind::gauge: continue;  // not monotonic — no rate
        }
        next.samples.push_back(std::move(s));
    }
    std::lock_guard lk(mu_);
    if (captures_ > 0 && next.at_seconds <= latest_.at_seconds) {
        // The clock did not advance past the newest capture (coarse
        // clock, or a test stepping a simulated clock in place): fold
        // the fresh totals into the current window instead of rotating,
        // which would leave previous_ == latest_ in time and destroy the
        // established rate window (dt == 0 -> no rates at all). Keep the
        // window's right edge where it was — an earlier timestamp must
        // not shrink the interval and inflate the rates.
        next.at_seconds = latest_.at_seconds;
        latest_ = std::move(next);
        ++captures_;
        return;
    }
    previous_ = std::move(latest_);
    latest_ = std::move(next);
    ++captures_;
}

std::vector<MetricRate> Snapshotter::rates() const {
    std::lock_guard lk(mu_);
    std::vector<MetricRate> out;
    if (captures_ < 2) return out;
    const double dt = latest_.at_seconds - previous_.at_seconds;
    if (!(dt > 0.0)) return out;
    out.reserve(latest_.samples.size());
    for (const Sample& now : latest_.samples) {
        double before = 0.0;
        // Registration order is append-only, so a linear scan anchored at
        // the same index finds the match immediately in the common case.
        for (const Sample& old : previous_.samples) {
            if (old.name == now.name && old.labels == now.labels) {
                before = old.total;
                break;
            }
        }
        out.push_back({now.name, now.labels, (now.total - before) / dt});
    }
    return out;
}

std::int64_t Snapshotter::captures() const {
    std::lock_guard lk(mu_);
    return captures_;
}

// ----------------------------------------------------------- ExpositionServer

ExpositionServer::ExpositionServer(MetricRegistry* registry, Snapshotter* snapshotter,
                                   RequestForensics* forensics, DiskHeatModel* heat)
    : registry_(registry), snapshotter_(snapshotter), forensics_(forensics), heat_(heat) {}

ExpositionServer::~ExpositionServer() { stop(); }

Status ExpositionServer::start(int port) {
    if (running_.load()) return Error::invalid("exposition: server already running");
    if (registry_ == nullptr) return Error::invalid("exposition: null registry");
    if (port < 0 || port > 65535) return Error::invalid("exposition: bad port");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Error::io(std::string("exposition: socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        return Error::io("exposition: bind 127.0.0.1:" + std::to_string(port) + ": " + what);
    }
    if (::listen(fd, 16) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        return Error::io("exposition: listen: " + what);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        return Error::io("exposition: getsockname: " + what);
    }
    port_ = static_cast<int>(ntohs(bound.sin_port));
    listen_fd_ = fd;
    stop_.store(false);
    running_.store(true);
    {
        std::lock_guard lk(quit_mu_);
        quit_requested_ = false;
    }
    thread_ = std::thread([this] { serve_loop(); });
    return Status::success();
}

void ExpositionServer::stop() {
    if (!running_.load()) {
        if (thread_.joinable()) thread_.join();
        return;
    }
    stop_.store(true);
    // Closing the listening socket unblocks the accept() the server
    // thread is parked in; it then sees stop_ and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (thread_.joinable()) thread_.join();
    running_.store(false);
}

bool ExpositionServer::running() const { return running_.load(); }

bool ExpositionServer::wait_for_quit(double timeout_seconds) {
    std::unique_lock lk(quit_mu_);
    quit_cv_.wait_for(lk, std::chrono::duration<double>(timeout_seconds),
                      [this] { return quit_requested_; });
    return quit_requested_;
}

void ExpositionServer::serve_loop() {
    while (!stop_.load()) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stop_.load()) break;
            if (errno == EINTR) continue;
            break;  // listening socket is gone — nothing left to serve
        }
        // Bound how long a silent client can pin the single server thread.
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        handle_connection(fd);
        ::close(fd);
    }
}

void ExpositionServer::handle_connection(int fd) {
    // Read until the end of the request headers (blank line) or 64 KiB,
    // whichever comes first; only the request line is interpreted.
    std::string request;
    char buf[4096];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos && request.size() < 64 * 1024) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        request.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t line_end = request.find_first_of("\r\n");
    const std::string line = request.substr(0, line_end == std::string::npos ? 0 : line_end);
    // "GET <path> HTTP/1.x"
    std::string method;
    std::string path;
    const std::size_t sp1 = line.find(' ');
    if (sp1 != std::string::npos) {
        method = line.substr(0, sp1);
        const std::size_t sp2 = line.find(' ', sp1 + 1);
        path = line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
    }
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);

    std::string response;
    if (method != "GET") {
        response =
            "HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
    } else {
        response = respond(path);
    }
    std::size_t sent = 0;
    while (sent < response.size()) {
        const ssize_t n = ::send(fd, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
    }
}

void ExpositionServer::set_pipeline_source(std::function<std::string()> source) {
    std::lock_guard<std::mutex> lock(pipeline_mu_);
    pipeline_source_ = std::move(source);
}

std::string ExpositionServer::respond(const std::string& path) {
    registry_->counter("ecfrm_obs_http_requests_total", {{"path", path}}).add(1);

    std::string body;
    std::string content_type = "text/plain; charset=utf-8";
    std::string status = "200 OK";
    if (path == "/" || path == "/index") {
        // Discoverability: one line per route. Routes gated on an
        // unattached sink are listed but marked unavailable.
        const bool f = forensics_ != nullptr;
        const bool h = heat_.load(std::memory_order_acquire) != nullptr;
        body += "ecfrm exposition server (" + registry_->name() + ")\n\n";
        body += "/               this index\n";
        body += "/metrics        Prometheus text exposition of every registered metric\n";
        body += "/metrics.json   registry snapshot + per-second rates, one JSON document\n";
        body += std::string("/slo            windowed SLO burn rates per request class") +
                (f ? "\n" : "  [unavailable: no forensics attached]\n");
        body += std::string("/slow           captured slow-request summaries") +
                (f ? "\n" : "  [unavailable: no forensics attached]\n");
        body += std::string("/slowlog        captured slow requests as NDJSON span trees") +
                (f ? "\n" : "  [unavailable: no forensics attached]\n");
        body += std::string("/requests/<id>  one captured request as chrome://tracing JSON") +
                (f ? "\n" : "  [unavailable: no forensics attached]\n");
        body += std::string("/disks          live per-disk heat snapshots (ecfrm.disks.v1)") +
                (h ? "\n" : "  [unavailable: no heat model attached]\n");
        body += std::string("/heat           cluster balance + straggler view (ecfrm.heat.v1)") +
                (h ? "\n" : "  [unavailable: no heat model attached]\n");
        bool p;
        {
            std::lock_guard<std::mutex> lock(pipeline_mu_);
            p = static_cast<bool>(pipeline_source_);
        }
        body +=
            std::string("/pipeline       online write/repair pipeline state (ecfrm.pipeline.v1)") +
            (p ? "\n" : "  [unavailable: no pipeline attached]\n");
        body += "/healthz        liveness probe\n";
        body += "/quitquitquit   release a held run (remote shutdown hook)\n";
    } else if (DiskHeatModel* heat = heat_.load(std::memory_order_acquire);
               path == "/disks" && heat != nullptr) {
        body = heat->disks_json(DiskHeatModel::now_seconds());
        content_type = "application/json";
    } else if (path == "/heat" && heat != nullptr) {
        body = heat->heat_json(DiskHeatModel::now_seconds());
        content_type = "application/json";
    } else if (path == "/metrics") {
        body = registry_->to_prometheus();
        content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (path == "/metrics.json") {
        body = "{\"registry\":\"" + json_escape(registry_->name()) + "\",\"metrics\":[";
        // to_json is newline-delimited objects; join them into an array.
        const std::string nd = registry_->to_json();
        bool first = true;
        std::size_t pos = 0;
        while (pos < nd.size()) {
            std::size_t eol = nd.find('\n', pos);
            if (eol == std::string::npos) eol = nd.size();
            if (eol > pos) {
                if (!first) body += ",";
                first = false;
                body.append(nd, pos, eol - pos);
            }
            pos = eol + 1;
        }
        body += "],\"rates\":[";
        if (snapshotter_ != nullptr) {
            first = true;
            for (const MetricRate& r : snapshotter_->rates()) {
                if (!first) body += ",";
                first = false;
                body += "{\"name\":\"" + json_escape(r.name) + "\",\"labels\":{";
                bool first_label = true;
                for (const auto& [k, v] : r.labels) {
                    if (!first_label) body += ",";
                    first_label = false;
                    body += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
                }
                char rate[64];
                std::snprintf(rate, sizeof(rate), "%.9g", r.per_second);
                body += std::string("},\"per_second\":") + rate + "}";
            }
        }
        body += "]}\n";
        content_type = "application/json";
    } else if (path == "/slo" && forensics_ != nullptr) {
        body = forensics_->slo_json();
        content_type = "application/json";
    } else if (path == "/slow" && forensics_ != nullptr) {
        body = forensics_->slow_json();
        content_type = "application/json";
    } else if (path == "/slowlog" && forensics_ != nullptr) {
        body = forensics_->slowlog_ndjson();
        content_type = "application/x-ndjson";
    } else if (path.rfind("/requests/", 0) == 0 && forensics_ != nullptr) {
        const std::string id_text = path.substr(std::string("/requests/").size());
        char* endp = nullptr;
        const std::uint64_t id = std::strtoull(id_text.c_str(), &endp, 10);
        std::shared_ptr<const RequestTrace> trace;
        if (endp != nullptr && *endp == '\0' && !id_text.empty()) trace = forensics_->find(id);
        if (trace != nullptr) {
            body = trace->chrome_json();
            content_type = "application/json";
        } else {
            status = "404 Not Found";
            body = "request " + id_text + " not captured (or already evicted)\n";
        }
    } else if (path == "/pipeline") {
        std::function<std::string()> source;
        {
            std::lock_guard<std::mutex> lock(pipeline_mu_);
            source = pipeline_source_;
        }
        if (source) {
            body = source();
            content_type = "application/json";
        } else {
            status = "404 Not Found";
            body = "no pipeline attached\n";
        }
    } else if (path == "/healthz") {
        body = "ok\n";
    } else if (path == "/quitquitquit") {
        body = "bye\n";
        {
            std::lock_guard lk(quit_mu_);
            quit_requested_ = true;
        }
        quit_cv_.notify_all();
    } else {
        status = "404 Not Found";
        body = "not found\n";
    }
    std::string out = "HTTP/1.1 " + status + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

}  // namespace ecfrm::obs
