#include "obs/heat.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ecfrm::obs {

namespace {

/// JSON number formatting: integers stay integral, everything else gets
/// enough digits to round-trip the interesting range without noise.
std::string num(double v) {
    if (std::floor(v) == v && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

double median_of(std::vector<double>& values) {
    if (values.empty()) return 0.0;
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.end());
    double m = values[mid];
    if (values.size() % 2 == 0) {
        const double lower =
            *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
        m = 0.5 * (m + lower);
    }
    return m;
}

void append_disk_json(std::ostringstream& out, const DiskHeatSnapshot& d) {
    out << "{\"disk\":" << d.disk << ",\"in_flight\":" << d.in_flight
        << ",\"total_ops\":" << d.total_ops << ",\"total_bytes\":" << d.total_bytes
        << ",\"window_ops\":" << d.ops << ",\"window_bytes\":" << d.bytes
        << ",\"ops_per_sec\":" << num(d.ops_per_sec)
        << ",\"bytes_per_sec\":" << num(d.bytes_per_sec)
        << ",\"ewma_latency_us\":" << num(d.ewma_latency_us)
        << ",\"mean_latency_us\":" << num(d.mean_latency_us)
        << ",\"p99_latency_us\":" << num(d.p99_latency_us) << ",\"errors\":" << d.errors
        << ",\"timeouts\":" << d.timeouts << ",\"retries\":" << d.retries
        << ",\"error_rate\":" << num(d.error_rate)
        << ",\"straggler_score\":" << num(d.straggler_score)
        << ",\"straggler\":" << (d.straggler ? "true" : "false") << "}";
}

}  // namespace

DiskHeatModel::DiskHeatModel(int disks, HeatOptions options)
    : options_(options),
      request_max_load_(options.window_seconds, options.sub_windows) {
    options_.sub_windows = std::max(1, options_.sub_windows);
    if (options_.window_seconds <= 0.0) options_.window_seconds = 60.0;
    if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) options_.ewma_alpha = 0.2;
    per_disk_.reserve(static_cast<std::size_t>(std::max(0, disks)));
    for (int d = 0; d < disks; ++d) per_disk_.push_back(std::make_unique<PerDisk>(options_));
}

double DiskHeatModel::now_seconds() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void DiskHeatModel::on_issue(int disk) {
    if (!valid(disk)) return;
    per_disk_[static_cast<std::size_t>(disk)]->in_flight.fetch_add(1, std::memory_order_relaxed);
}

void DiskHeatModel::on_complete(int disk, std::int64_t ops, std::int64_t bytes, double latency_us,
                                double now_seconds) {
    if (!valid(disk)) return;
    PerDisk& pd = *per_disk_[static_cast<std::size_t>(disk)];
    pd.in_flight.fetch_sub(1, std::memory_order_relaxed);
    pd.total_ops.fetch_add(ops, std::memory_order_relaxed);
    pd.total_bytes.fetch_add(bytes, std::memory_order_relaxed);
    pd.ops.add(ops, now_seconds);
    pd.bytes.add(bytes, now_seconds);
    pd.latency_us.record(latency_us, now_seconds);
    // EWMA update: a benign race between concurrent completions loses a
    // sample's weight, never corrupts the value — acceptable for a
    // smoothed health figure.
    if (!pd.ewma_primed.exchange(true, std::memory_order_relaxed)) {
        pd.ewma_us.store(latency_us, std::memory_order_relaxed);
    } else {
        const double old = pd.ewma_us.load(std::memory_order_relaxed);
        pd.ewma_us.store(old + options_.ewma_alpha * (latency_us - old),
                         std::memory_order_relaxed);
    }
}

void DiskHeatModel::on_write_complete(int disk, std::int64_t ops, std::int64_t bytes,
                                      double now_seconds) {
    if (!valid(disk)) return;
    PerDisk& pd = *per_disk_[static_cast<std::size_t>(disk)];
    pd.in_flight.fetch_sub(1, std::memory_order_relaxed);
    pd.total_ops.fetch_add(ops, std::memory_order_relaxed);
    pd.total_bytes.fetch_add(bytes, std::memory_order_relaxed);
    pd.ops.add(ops, now_seconds);
    pd.bytes.add(bytes, now_seconds);
    // Deliberately no latency_us.record / EWMA update: write-queue
    // durations must not steer the read hedge deadline or straggler
    // flagging (see the header).
}

void DiskHeatModel::on_error(int disk, double now_seconds) {
    if (!valid(disk)) return;
    per_disk_[static_cast<std::size_t>(disk)]->errors.add(1, now_seconds);
}

void DiskHeatModel::on_timeout(int disk, double now_seconds) {
    if (!valid(disk)) return;
    per_disk_[static_cast<std::size_t>(disk)]->timeouts.add(1, now_seconds);
}

void DiskHeatModel::on_retry(int disk, double now_seconds) {
    if (!valid(disk)) return;
    per_disk_[static_cast<std::size_t>(disk)]->retries.add(1, now_seconds);
}

void DiskHeatModel::on_request(std::int64_t max_load, double now_seconds) {
    if (max_load <= 0) return;
    request_max_load_.record(static_cast<double>(max_load), now_seconds);
}

std::int64_t DiskHeatModel::in_flight(int disk) const {
    if (!valid(disk)) return 0;
    return per_disk_[static_cast<std::size_t>(disk)]->in_flight.load(std::memory_order_relaxed);
}

double DiskHeatModel::fleet_median_mean_us(double now_seconds) const {
    std::vector<double> means;
    means.reserve(per_disk_.size());
    for (const auto& pd : per_disk_) {
        if (pd->latency_us.count(now_seconds) < options_.min_ops) continue;
        means.push_back(pd->latency_us.mean(now_seconds));
    }
    return median_of(means);
}

DiskHeatSnapshot DiskHeatModel::disk_snapshot(int disk, double now_seconds) const {
    DiskHeatSnapshot snap;
    snap.disk = disk;
    if (!valid(disk)) return snap;
    const PerDisk& pd = *per_disk_[static_cast<std::size_t>(disk)];
    snap.in_flight = pd.in_flight.load(std::memory_order_relaxed);
    snap.total_ops = pd.total_ops.load(std::memory_order_relaxed);
    snap.total_bytes = pd.total_bytes.load(std::memory_order_relaxed);
    snap.ops = pd.ops.total(now_seconds);
    snap.bytes = pd.bytes.total(now_seconds);
    snap.ops_per_sec = pd.ops.rate(now_seconds);
    snap.bytes_per_sec = pd.bytes.rate(now_seconds);
    snap.ewma_latency_us = pd.ewma_us.load(std::memory_order_relaxed);
    snap.mean_latency_us = pd.latency_us.mean(now_seconds);
    snap.p99_latency_us = pd.latency_us.percentile(0.99, now_seconds);
    snap.errors = pd.errors.total(now_seconds);
    snap.timeouts = pd.timeouts.total(now_seconds);
    snap.retries = pd.retries.total(now_seconds);
    const std::int64_t completions = pd.latency_us.count(now_seconds);
    if (completions > 0) {
        snap.error_rate = static_cast<double>(snap.errors + snap.timeouts) /
                          static_cast<double>(completions);
    }
    const double fleet = fleet_median_mean_us(now_seconds);
    if (fleet > 0.0 && completions >= options_.min_ops) {
        snap.straggler_score = snap.mean_latency_us / fleet;
        snap.straggler = snap.straggler_score >= options_.straggler_factor;
    }
    return snap;
}

ClusterHeatSnapshot DiskHeatModel::snapshot(double now_seconds) const {
    ClusterHeatSnapshot snap;
    snap.now_seconds = now_seconds;
    snap.window_seconds = options_.window_seconds;
    snap.disks = disks();
    snap.requests = request_max_load_.count(now_seconds);
    snap.measured_max_load = request_max_load_.mean(now_seconds);
    snap.fleet_median_latency_us = fleet_median_mean_us(now_seconds);

    double sum = 0.0;
    double sumsq = 0.0;
    std::int64_t max_ops = 0;
    for (int d = 0; d < snap.disks; ++d) {
        const std::int64_t ops = per_disk_[static_cast<std::size_t>(d)]->ops.total(now_seconds);
        const auto v = static_cast<double>(ops);
        sum += v;
        sumsq += v * v;
        if (ops > max_ops) {
            max_ops = ops;
            snap.hottest_disk = d;
        }
        const PerDisk& pd = *per_disk_[static_cast<std::size_t>(d)];
        if (snap.fleet_median_latency_us > 0.0 &&
            pd.latency_us.count(now_seconds) >= options_.min_ops &&
            pd.latency_us.mean(now_seconds) >=
                options_.straggler_factor * snap.fleet_median_latency_us) {
            snap.stragglers.push_back(d);
        }
    }
    if (snap.disks > 0 && sum > 0.0) {
        const double mean = sum / static_cast<double>(snap.disks);
        snap.load_factor = static_cast<double>(max_ops) / mean;
        const double var = std::max(0.0, sumsq / static_cast<double>(snap.disks) - mean * mean);
        snap.skew_cov = std::sqrt(var) / mean;
    }
    return snap;
}

std::vector<char> DiskHeatModel::straggler_mask(double now_seconds) const {
    std::vector<char> mask(per_disk_.size(), 0);
    const double fleet = fleet_median_mean_us(now_seconds);
    if (fleet <= 0.0) return mask;
    for (std::size_t d = 0; d < per_disk_.size(); ++d) {
        const PerDisk& pd = *per_disk_[d];
        if (pd.latency_us.count(now_seconds) < options_.min_ops) continue;
        if (pd.latency_us.mean(now_seconds) >= options_.straggler_factor * fleet) mask[d] = 1;
    }
    return mask;
}

double DiskHeatModel::hedge_deadline_ms(const std::vector<int>& participating, double factor,
                                        double min_ms, double now_seconds) const {
    std::vector<double> p99s;
    p99s.reserve(participating.size());
    for (int d : participating) {
        if (!valid(d)) continue;
        const PerDisk& pd = *per_disk_[static_cast<std::size_t>(d)];
        if (pd.latency_us.count(now_seconds) < options_.min_ops) continue;
        p99s.push_back(pd.latency_us.percentile(0.99, now_seconds));
    }
    if (p99s.size() < 2) return 0.0;
    const double median_us = median_of(p99s);
    return std::max(min_ms, factor * median_us / 1000.0);
}

std::string DiskHeatModel::disks_json(double now_seconds) const {
    std::ostringstream out;
    out << "{\"schema\":\"ecfrm.disks.v1\",\"disks\":[";
    for (int d = 0; d < disks(); ++d) {
        if (d > 0) out << ",";
        append_disk_json(out, disk_snapshot(d, now_seconds));
    }
    out << "]}\n";
    return out.str();
}

std::string DiskHeatModel::heat_json(double now_seconds) const {
    const ClusterHeatSnapshot c = snapshot(now_seconds);
    std::ostringstream out;
    out << "{\"schema\":\"ecfrm.heat.v1\",\"window_seconds\":" << num(c.window_seconds)
        << ",\"disks\":" << c.disks << ",\"requests\":" << c.requests
        << ",\"measured_max_load\":" << num(c.measured_max_load)
        << ",\"load_factor\":" << num(c.load_factor) << ",\"skew_cov\":" << num(c.skew_cov)
        << ",\"hottest_disk\":" << c.hottest_disk
        << ",\"fleet_median_latency_us\":" << num(c.fleet_median_latency_us)
        << ",\"stragglers\":[";
    for (std::size_t i = 0; i < c.stragglers.size(); ++i) {
        if (i > 0) out << ",";
        out << c.stragglers[i];
    }
    out << "],\"per_disk\":[";
    for (int d = 0; d < disks(); ++d) {
        if (d > 0) out << ",";
        append_disk_json(out, disk_snapshot(d, now_seconds));
    }
    out << "]}\n";
    return out.str();
}

std::string DiskHeatModel::disks_ndjson(double now_seconds) const {
    std::ostringstream out;
    for (int d = 0; d < disks(); ++d) {
        append_disk_json(out, disk_snapshot(d, now_seconds));
        out << "\n";
    }
    return out.str();
}

}  // namespace ecfrm::obs
