// Workload generators.
//
// `random_read` / `random_degraded_read` implement the paper's protocol
// verbatim (Section VI-B/C): start point uniform over the data elements,
// read size uniform in [1, 20] elements, failed disk uniform over all
// disks. The file-trace generators extend the evaluation to object-store
// style access (Zipf-popular files of MP3-like sizes, Section III-A's
// motivation).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ecfrm::workload {

struct ReadRequest {
    ElementId start = 0;
    std::int64_t count = 0;
};

struct DegradedRequest {
    ReadRequest read;
    DiskId failed_disk = 0;
};

/// One paper-protocol normal read over `total_elements` stored elements.
/// The size is clamped so the request stays in range.
ReadRequest random_read(Rng& rng, std::int64_t total_elements, int max_request_elements = 20);

/// One paper-protocol degraded read; the failed disk is uniform over
/// [0, disks).
DegradedRequest random_degraded_read(Rng& rng, std::int64_t total_elements, int disks,
                                     int max_request_elements = 20);

/// A population of files laid sequentially in the element space, with
/// sizes uniform in [min_elements, max_elements] (MP3-like objects when
/// elements are 1 MB). Returns (first element, element count) per file.
struct FileSpec {
    ElementId first = 0;
    std::int64_t elements = 0;
};
std::vector<FileSpec> make_file_population(Rng& rng, int files, std::int64_t min_elements,
                                           std::int64_t max_elements);

/// Zipf(s) sampler over ranks [0, n): rank 0 most popular. Inverse-CDF
/// over precomputed cumulative weights; O(log n) per sample.
class ZipfSampler {
  public:
    ZipfSampler(int n, double s);
    int sample(Rng& rng) const;

  private:
    std::vector<double> cdf_;
};

/// Whole-file reads with Zipf-popular file choice.
ReadRequest zipf_file_read(Rng& rng, const std::vector<FileSpec>& files, const ZipfSampler& zipf);

}  // namespace ecfrm::workload
