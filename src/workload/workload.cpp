#include "workload/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecfrm::workload {

ReadRequest random_read(Rng& rng, std::int64_t total_elements, int max_request_elements) {
    assert(total_elements > 0);
    ReadRequest req;
    req.start = rng.next_range(0, total_elements - 1);
    const std::int64_t size = rng.next_range(1, max_request_elements);
    req.count = std::min(size, total_elements - req.start);
    return req;
}

DegradedRequest random_degraded_read(Rng& rng, std::int64_t total_elements, int disks,
                                     int max_request_elements) {
    DegradedRequest req;
    req.read = random_read(rng, total_elements, max_request_elements);
    req.failed_disk = static_cast<DiskId>(rng.next_range(0, disks - 1));
    return req;
}

std::vector<FileSpec> make_file_population(Rng& rng, int files, std::int64_t min_elements,
                                           std::int64_t max_elements) {
    std::vector<FileSpec> specs;
    specs.reserve(static_cast<std::size_t>(files));
    ElementId next = 0;
    for (int i = 0; i < files; ++i) {
        FileSpec spec;
        spec.first = next;
        spec.elements = rng.next_range(min_elements, max_elements);
        next += spec.elements;
        specs.push_back(spec);
    }
    return specs;
}

ZipfSampler::ZipfSampler(int n, double s) {
    assert(n > 0);
    cdf_.resize(static_cast<std::size_t>(n));
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[static_cast<std::size_t>(i)] = acc;
    }
    for (auto& v : cdf_) v /= acc;
}

int ZipfSampler::sample(Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(it - cdf_.begin()),
                                                  cdf_.size() - 1));
}

ReadRequest zipf_file_read(Rng& rng, const std::vector<FileSpec>& files, const ZipfSampler& zipf) {
    const auto& f = files[static_cast<std::size_t>(zipf.sample(rng))];
    return {f.first, f.elements};
}

}  // namespace ecfrm::workload
