#include "codes/rs.h"

#include "matrix/builders.h"

namespace ecfrm::codes {

using matrix::Matrix;

Result<std::unique_ptr<RsCode>> RsCode::make(int k, int m, Variant variant) {
    if (k <= 0 || m <= 0) return Error::invalid("RS requires k > 0 and m > 0");
    if (k + m > 256) return Error::invalid("RS over GF(2^8) requires k + m <= 256");

    Matrix gen(k + m, k);
    if (variant == Variant::cauchy) {
        auto block = matrix::cauchy_parity_block(k, m);
        if (!block.ok()) return block.error();
        for (int i = 0; i < k; ++i) gen.at(i, i) = 1;
        for (int p = 0; p < m; ++p) {
            for (int j = 0; j < k; ++j) gen.at(k + p, j) = block->at(p, j);
        }
    } else {
        auto sys = matrix::systematize(matrix::vandermonde(k + m, k));
        if (!sys.ok()) return sys.error();
        gen = std::move(sys).take();
    }
    return std::unique_ptr<RsCode>(new RsCode(std::move(gen), variant));
}

std::string RsCode::name() const {
    return "RS(" + std::to_string(k()) + "," + std::to_string(m()) + ")" +
           (variant_ == Variant::cauchy ? "" : "[vand]");
}

RepairSpec RsCode::repair_spec(int position) const {
    (void)position;
    RepairSpec spec;
    spec.any_k = true;
    return spec;
}

}  // namespace ecfrm::codes
