// XOR(k): single-parity code (RAID-5 style), the simplest candidate in
// the zoo. One parity element equal to the XOR of the k data elements;
// tolerates any single erasure, and every repair is the XOR of the other
// k survivors. Distinct from codes/xor_codec.h, which is an EXECUTION
// technique (bitmatrix XOR schedules) for arbitrary codes.
#pragma once

#include <memory>
#include <string>

#include "codes/erasure_code.h"

namespace ecfrm::codes {

class XorCode final : public ErasureCode {
  public:
    /// Factory; requires k >= 2 (k = 1 would be plain replication).
    static Result<std::unique_ptr<XorCode>> make(int k);

    std::string name() const override;
    int fault_tolerance() const override { return 1; }
    const matrix::Matrix& generator() const override { return generator_; }

    /// Any k of the k + 1 elements rebuild anything (trivially MDS).
    RepairSpec repair_spec(int position) const override;

  private:
    explicit XorCode(matrix::Matrix generator) : generator_(std::move(generator)) {}

    matrix::Matrix generator_;
};

}  // namespace ecfrm::codes
