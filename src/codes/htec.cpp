#include "codes/htec.h"

#include <cassert>

#include "codes/validate.h"
#include "matrix/builders.h"

namespace ecfrm::codes {

using matrix::Matrix;

namespace {

/// Balanced contiguous partition of [0, k) into `groups` blocks (the
/// first k % groups blocks get one extra member).
int block_of(int j, int k, int groups) {
    const int base = k / groups;
    const int extra = k % groups;
    const int fat = (base + 1) * extra;
    if (j < fat) return j / (base + 1);
    return extra + (j - fat) / base;
}

/// Elastic pairing: pair p groups node j by its rotated index.
int group_of(int pair, int j, int k, int m) {
    return 1 + block_of((j + pair) % k, k, m - 1);
}

/// Substripe-major generator, column c = data position c (substripe
/// c / k, node c % k). See htec.h for the row recipe.
Matrix build_generator(int n, int k, int w, const Matrix& cauchy) {
    const int m = n - k;
    const int kk = w * k;
    Matrix gen(w * n, kk);
    for (int i = 0; i < kk; ++i) gen.at(i, i) = 1;
    for (int s = 0; s < w; ++s) {
        for (int q = 0; q < m; ++q) {
            const int row = kk + s * m + q;
            for (int j = 0; j < k; ++j) gen.at(row, s * k + j) = cauchy.at(q, j);
            // Odd substripes of a pair piggyback their pair-a data.
            if (s % 2 == 1 && q >= 1) {
                const int pair = s / 2;
                for (int j = 0; j < k; ++j) {
                    if (group_of(pair, j, k, m) == q) gen.at(row, (s - 1) * k + j) ^= 1;
                }
            }
        }
    }
    return gen;
}

}  // namespace

Result<std::unique_ptr<HtecCode>> HtecCode::make(int n, int k, int w) {
    if (k < 1 || n <= k) return Error::invalid("HTEC requires n > k >= 1");
    if (n - k < 2) return Error::invalid("HTEC requires m = n - k >= 2");
    if (w < 2) return Error::invalid("HTEC requires sub-packetization w >= 2");
    if (n > 256) return Error::invalid("HTEC over GF(2^8) requires n <= 256");

    auto cauchy = matrix::cauchy_parity_block(k, n - k);
    if (!cauchy.ok()) return cauchy.error();
    Matrix gen = build_generator(n, k, w, cauchy.value());

    // Prove node-level MDS: every way to lose m whole nodes must decode.
    std::unique_ptr<HtecCode> code(new HtecCode(std::move(gen), w));
    const bool mds = for_each_subset(code->nodes(), n - k, [&](const std::vector<int>& failed) {
        std::vector<int> erased;
        erased.reserve(failed.size() * static_cast<std::size_t>(w));
        for (int node : failed) {
            for (int s = 0; s < w; ++s) erased.push_back(code->position_of(node, s));
        }
        return survives(code->generator(), erased);
    });
    if (!mds) return Error::undecodable("HTEC generator failed the node-MDS exhaustion");
    return code;
}

std::string HtecCode::name() const {
    return "HTEC(" + std::to_string(nodes()) + "," + std::to_string(data_nodes()) + "," +
           std::to_string(w_) + ")";
}

int HtecCode::piggyback_group(int pair, int data_node) const {
    assert(pair >= 0 && pair < pairs());
    assert(data_node >= 0 && data_node < data_nodes());
    return group_of(pair, data_node, data_nodes(), parity_nodes());
}

std::vector<int> HtecCode::group_members(int pair, int q) const {
    assert(q >= 1 && q < parity_nodes());
    std::vector<int> members;
    for (int j = 0; j < data_nodes(); ++j) {
        if (piggyback_group(pair, j) == q) members.push_back(j);
    }
    return members;
}

RepairSpec HtecCode::repair_spec(int position) const {
    const int kd = data_nodes();
    const int node = node_of(position);
    const int sub = substripe_of(position);
    const bool trailing = (w_ % 2 == 1) && sub == w_ - 1;
    RepairSpec spec;

    if (node < kd) {
        if (trailing || sub % 2 == 1) {
            // Plain substripe-RS read: the other data elements of this
            // substripe plus its clean parity 0.
            for (int i = 0; i < kd; ++i) {
                if (i != node) spec.preferred.push_back(position_of(i, sub));
            }
            spec.preferred.push_back(position_of(kd, sub));
            return spec;
        }
        // Pair-a element: the b-side read of its pair plus the piggybacked
        // parity and the a-side group peers (the HHXOR repair).
        const int pair = sub / 2;
        const int b = sub + 1;
        const int q = piggyback_group(pair, node);
        for (int i = 0; i < kd; ++i) {
            if (i != node) spec.preferred.push_back(position_of(i, b));
        }
        spec.preferred.push_back(position_of(kd, b));
        spec.preferred.push_back(position_of(kd + q, b));
        for (int i : group_members(pair, q)) {
            if (i != node) spec.preferred.push_back(position_of(i, sub));
        }
        return spec;
    }

    // Parity node: regenerate from the data it covers.
    const int q = node - kd;
    for (int i = 0; i < kd; ++i) spec.preferred.push_back(position_of(i, sub));
    if (!trailing && sub % 2 == 1 && q >= 1) {
        for (int i : group_members(sub / 2, q)) {
            spec.preferred.push_back(position_of(i, sub - 1));
        }
    }
    return spec;
}

}  // namespace ecfrm::codes
