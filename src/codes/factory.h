// String-spec factory for candidate codes, used by benches, examples and
// the CLI-ish harnesses: "rs:6,3" / "lrc:6,2,2".
#pragma once

#include <memory>
#include <string>

#include "codes/erasure_code.h"

namespace ecfrm::codes {

/// Parse "rs:k,m" or "lrc:k,l,m" into a code instance.
Result<std::shared_ptr<ErasureCode>> make_code(const std::string& spec);

/// Convenience overloads.
Result<std::shared_ptr<ErasureCode>> make_rs(int k, int m);
Result<std::shared_ptr<ErasureCode>> make_lrc(int k, int l, int m);

}  // namespace ecfrm::codes
