// String-spec factory for candidate codes, used by benches, examples and
// the CLI-ish harnesses: "rs:6,3" / "lrc:6,2,2" / "xor:5" / "hhxor:6,4" /
// "htec:9,6,3".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codes/erasure_code.h"

namespace ecfrm::codes {

/// Parse "rs:k,m", "lrc:k,l,m", "xor:k", "hhxor:k,m" or "htec:n,k,w"
/// into a code instance.
Result<std::shared_ptr<ErasureCode>> make_code(const std::string& spec);

/// Convenience overloads.
Result<std::shared_ptr<ErasureCode>> make_rs(int k, int m);
Result<std::shared_ptr<ErasureCode>> make_lrc(int k, int l, int m);
Result<std::shared_ptr<ErasureCode>> make_xor(int k);
Result<std::shared_ptr<ErasureCode>> make_hhxor(int k, int m);
Result<std::shared_ptr<ErasureCode>> make_htec(int n, int k, int w);

/// One canonical spec per registered code family. The codec conformance
/// suite instantiates its full battery over this list, so registering a
/// new family here buys it complete coverage with no further test code.
const std::vector<std::string>& conformance_specs();

}  // namespace ecfrm::codes
