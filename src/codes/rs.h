// Reed-Solomon (k, m): the MDS candidate code used by Google/Facebook in
// the paper's motivation. Two generator constructions are provided:
//
//  * Cauchy      — parity block is a Cauchy matrix; MDS by construction.
//  * Vandermonde — classic Vandermonde generator made systematic by
//                  column transformation (Jerasure's construction).
//
// Both are verified MDS in the test suite by exhausting erasure patterns.
#pragma once

#include <memory>
#include <string>

#include "codes/erasure_code.h"

namespace ecfrm::codes {

class RsCode final : public ErasureCode {
  public:
    enum class Variant { cauchy, vandermonde };

    /// Factory; fails when parameters don't fit GF(2^8) (k + m > 256) or
    /// are non-positive.
    static Result<std::unique_ptr<RsCode>> make(int k, int m, Variant variant = Variant::cauchy);

    std::string name() const override;
    int fault_tolerance() const override { return m(); }
    const matrix::Matrix& generator() const override { return generator_; }

    /// Any k survivors rebuild anything (MDS).
    RepairSpec repair_spec(int position) const override;

    Variant variant() const { return variant_; }

  private:
    RsCode(matrix::Matrix generator, Variant variant)
        : generator_(std::move(generator)), variant_(variant) {}

    matrix::Matrix generator_;
    Variant variant_;
};

}  // namespace ecfrm::codes
