#include "codes/hhxor.h"

#include <cassert>

#include "codes/validate.h"
#include "matrix/builders.h"

namespace ecfrm::codes {

using matrix::Matrix;

namespace {

/// Balanced contiguous partition of [0, k) into `groups` blocks: the
/// first k % groups blocks get one extra member.
int block_of(int j, int k, int groups) {
    const int base = k / groups;
    const int extra = k % groups;
    const int fat = (base + 1) * extra;  // members held by the fat blocks
    if (j < fat) return j / (base + 1);
    return extra + (j - fat) / base;
}

/// Substripe-major generator, column c = data position c (substripe
/// c / k, node c % k). See hhxor.h for the row recipe.
Matrix build_generator(int k, int m, const Matrix& cauchy) {
    const int kk = 2 * k;
    const int nn = 2 * (k + m);
    Matrix gen(nn, kk);
    for (int i = 0; i < kk; ++i) gen.at(i, i) = 1;
    for (int s = 0; s < 2; ++s) {
        for (int q = 0; q < m; ++q) {
            const int row = kk + s * m + q;
            // f_q over this substripe's data block.
            for (int j = 0; j < k; ++j) gen.at(row, s * k + j) = cauchy.at(q, j);
            // XOR piggyback of substripe-a data onto b-parities q >= 1.
            if (s == 1 && q >= 1) {
                for (int j = 0; j < k; ++j) {
                    if (block_of(j, k, m - 1) == q - 1) gen.at(row, j) ^= 1;
                }
            }
        }
    }
    return gen;
}

}  // namespace

Result<std::unique_ptr<HhxorCode>> HhxorCode::make(int k, int m) {
    if (k < 1 || m < 2) return Error::invalid("HHXOR requires k >= 1 and m >= 2");
    if (k + m > 256) return Error::invalid("HHXOR over GF(2^8) requires k + m <= 256");

    auto cauchy = matrix::cauchy_parity_block(k, m);
    if (!cauchy.ok()) return cauchy.error();
    Matrix gen = build_generator(k, m, cauchy.value());

    // Prove node-level MDS: every way to lose m whole nodes must decode.
    std::unique_ptr<HhxorCode> code(new HhxorCode(std::move(gen)));
    const bool mds = for_each_subset(code->nodes(), m, [&](const std::vector<int>& failed) {
        std::vector<int> erased;
        erased.reserve(failed.size() * 2);
        for (int node : failed) {
            erased.push_back(code->position_of(node, 0));
            erased.push_back(code->position_of(node, 1));
        }
        return survives(code->generator(), erased);
    });
    if (!mds) return Error::undecodable("HHXOR generator failed the node-MDS exhaustion");
    return code;
}

std::string HhxorCode::name() const {
    return "HHXOR(" + std::to_string(data_nodes()) + "," + std::to_string(parity_nodes()) + ")";
}

int HhxorCode::piggyback_group(int data_node) const {
    assert(data_node >= 0 && data_node < data_nodes());
    return 1 + block_of(data_node, data_nodes(), parity_nodes() - 1);
}

std::vector<int> HhxorCode::group_members(int q) const {
    assert(q >= 1 && q < parity_nodes());
    std::vector<int> members;
    for (int j = 0; j < data_nodes(); ++j) {
        if (piggyback_group(j) == q) members.push_back(j);
    }
    return members;
}

RepairSpec HhxorCode::repair_spec(int position) const {
    const int kd = data_nodes();
    const int node = node_of(position);
    const int sub = substripe_of(position);
    RepairSpec spec;

    if (node < kd) {
        // The b-side read shared by both substripes: every other data b
        // plus the clean parity-0 b recovers the full b vector.
        for (int i = 0; i < kd; ++i) {
            if (i != node) spec.preferred.push_back(position_of(i, 1));
        }
        spec.preferred.push_back(position_of(kd, 1));
        if (sub == 0) {
            // a_j additionally needs the piggybacked parity (which, with b
            // known, exposes XOR over G_q) and the a-side group peers.
            const int q = piggyback_group(node);
            spec.preferred.push_back(position_of(kd + q, 1));
            for (int i : group_members(q)) {
                if (i != node) spec.preferred.push_back(position_of(i, 0));
            }
        }
        return spec;
    }

    // Parity node q: regenerate from the data it covers.
    const int q = node - kd;
    for (int i = 0; i < kd; ++i) spec.preferred.push_back(position_of(i, sub));
    if (sub == 1 && q >= 1) {
        for (int i : group_members(q)) spec.preferred.push_back(position_of(i, 0));
    }
    return spec;
}

}  // namespace ecfrm::codes
