// Hitchhiker-XOR (k, m): two-substripe XOR piggybacking over the Cauchy
// Reed-Solomon engine (Rashmi et al., "A 'Hitchhiker's' Guide to Fast and
// Efficient Data Reconstruction", piggybacking design framework arXiv
// 1302.5872).
//
// Geometry: w = 2 substripes, n = k + m nodes, each node holding one
// element per substripe (a_j, b_j). Substripe a is a plain RS codeword.
// Substripe b's parity 0 stays clean (f_0(b)); parity q >= 1 carries an
// XOR piggyback of substripe-a data, f_q(b) ^ XOR_{j in G_q} a_j, where
// the groups G_1..G_{m-1} partition the k data nodes (balanced,
// contiguous).
//
// Single data-node repair of node j in G_q downloads k + |G_q| elements
// instead of RS's 2k: the k-element b-side read (k-1 data b's + the clean
// parity) recovers ALL of b, so reading the piggybacked parity q exposes
// XOR_{G_q} a_i, and |G_q| - 1 a-side peers then free a_j. With m >= 3
// (|G_q| < k) that is a strict repair-download win; (6,4) reads 8 vs 12,
// a 0.67x ratio.
//
// Node-level MDS: any m node failures decode (the surviving a-row is k
// symbols of a pure RS codeword; once a is known the piggybacks subtract
// off b's parities). Verified exhaustively at construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codes/erasure_code.h"

namespace ecfrm::codes {

class HhxorCode final : public ErasureCode {
  public:
    /// Factory; requires k >= 1, m >= 2 (parity 0 must stay clean for the
    /// b-side repair read) and k + m <= 256 for the Cauchy block.
    static Result<std::unique_ptr<HhxorCode>> make(int k, int m);

    std::string name() const override;
    int fault_tolerance() const override { return parity_nodes(); }
    int sub_packetization() const override { return 2; }
    const matrix::Matrix& generator() const override { return generator_; }
    RepairSpec repair_spec(int position) const override;

    /// Piggyback group of a data node: index q in [1, m) of the parity
    /// whose b-element carries XOR_{i in G_q} a_i with j in G_q.
    int piggyback_group(int data_node) const;

    /// Data nodes of piggyback group q (q in [1, m)).
    std::vector<int> group_members(int q) const;

  private:
    explicit HhxorCode(matrix::Matrix generator) : generator_(std::move(generator)) {}

    matrix::Matrix generator_;
};

}  // namespace ecfrm::codes
