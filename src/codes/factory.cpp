#include "codes/factory.h"

#include <cstdlib>
#include <vector>

#include "codes/hhxor.h"
#include "codes/htec.h"
#include "codes/lrc.h"
#include "codes/rs.h"
#include "codes/xor_code.h"

namespace ecfrm::codes {

namespace {

/// Split "6,2,2" into integers; returns empty on malformed input.
std::vector<int> parse_ints(const std::string& s) {
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t end = s.find(',', pos);
        if (end == std::string::npos) end = s.size();
        const std::string tok = s.substr(pos, end - pos);
        if (tok.empty()) return {};
        char* rest = nullptr;
        const long v = std::strtol(tok.c_str(), &rest, 10);
        if (rest == nullptr || *rest != '\0') return {};
        out.push_back(static_cast<int>(v));
        pos = end + 1;
    }
    return out;
}

}  // namespace

Result<std::shared_ptr<ErasureCode>> make_code(const std::string& spec) {
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) return Error::invalid("code spec must look like 'rs:6,3' or 'lrc:6,2,2'");
    const std::string kind = spec.substr(0, colon);
    const std::vector<int> params = parse_ints(spec.substr(colon + 1));
    if (kind == "rs" && params.size() == 2) return make_rs(params[0], params[1]);
    if (kind == "lrc" && params.size() == 3) return make_lrc(params[0], params[1], params[2]);
    if (kind == "xor" && params.size() == 1) return make_xor(params[0]);
    if (kind == "hhxor" && params.size() == 2) return make_hhxor(params[0], params[1]);
    if (kind == "htec" && params.size() == 3) return make_htec(params[0], params[1], params[2]);
    return Error::invalid("unknown code spec: " + spec);
}

Result<std::shared_ptr<ErasureCode>> make_rs(int k, int m) {
    auto code = RsCode::make(k, m);
    if (!code.ok()) return code.error();
    return std::shared_ptr<ErasureCode>(std::move(code).take());
}

Result<std::shared_ptr<ErasureCode>> make_lrc(int k, int l, int m) {
    auto code = LrcCode::make(k, l, m);
    if (!code.ok()) return code.error();
    return std::shared_ptr<ErasureCode>(std::move(code).take());
}

Result<std::shared_ptr<ErasureCode>> make_xor(int k) {
    auto code = XorCode::make(k);
    if (!code.ok()) return code.error();
    return std::shared_ptr<ErasureCode>(std::move(code).take());
}

Result<std::shared_ptr<ErasureCode>> make_hhxor(int k, int m) {
    auto code = HhxorCode::make(k, m);
    if (!code.ok()) return code.error();
    return std::shared_ptr<ErasureCode>(std::move(code).take());
}

Result<std::shared_ptr<ErasureCode>> make_htec(int n, int k, int w) {
    auto code = HtecCode::make(n, k, w);
    if (!code.ok()) return code.error();
    return std::shared_ptr<ErasureCode>(std::move(code).take());
}

const std::vector<std::string>& conformance_specs() {
    static const std::vector<std::string> specs{
        "rs:6,3", "lrc:6,2,2", "xor:5", "hhxor:6,4", "htec:9,6,3",
    };
    return specs;
}

}  // namespace ecfrm::codes
