#include "codes/xor_code.h"

namespace ecfrm::codes {

using matrix::Matrix;

Result<std::unique_ptr<XorCode>> XorCode::make(int k) {
    if (k < 2) return Error::invalid("XOR requires k >= 2");
    Matrix gen(k + 1, k);
    for (int i = 0; i < k; ++i) gen.at(i, i) = 1;
    for (int j = 0; j < k; ++j) gen.at(k, j) = 1;
    return std::unique_ptr<XorCode>(new XorCode(std::move(gen)));
}

std::string XorCode::name() const { return "XOR(" + std::to_string(k()) + ")"; }

RepairSpec XorCode::repair_spec(int position) const {
    RepairSpec spec;
    spec.any_k = true;
    for (int p = 0; p < n(); ++p) {
        if (p != position) spec.preferred.push_back(p);
    }
    return spec;
}

}  // namespace ecfrm::codes
