#include "codes/erasure_code.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "gf/gf256.h"
#include "gf/kernels.h"
#include "gf/region.h"

namespace ecfrm::codes {

using gf::Gf256;
using matrix::Matrix;

int ErasureCode::node_of(int position) const {
    assert(position >= 0 && position < n());
    if (position < k()) return position % data_nodes();
    return data_nodes() + (position - k()) % parity_nodes();
}

int ErasureCode::substripe_of(int position) const {
    assert(position >= 0 && position < n());
    if (position < k()) return position / data_nodes();
    return (position - k()) / parity_nodes();
}

int ErasureCode::position_of(int node, int substripe) const {
    assert(node >= 0 && node < nodes());
    assert(substripe >= 0 && substripe < sub_packetization());
    if (node < data_nodes()) return substripe * data_nodes() + node;
    return k() + substripe * parity_nodes() + (node - data_nodes());
}

std::int64_t ErasureCode::repair_elements_bound(int node) const {
    assert(node >= 0 && node < nodes());
    std::set<int> reads;
    bool generic = false;
    for (int s = 0; s < sub_packetization(); ++s) {
        const int p = position_of(node, s);
        const RepairSpec spec = repair_spec(p);
        if (spec.preferred.empty()) {
            generic = true;
            continue;
        }
        for (int src : spec.preferred) {
            if (node_of(src) != node) reads.insert(src);
        }
    }
    // A position without a structured set falls back to a k-survivor read;
    // the structured fetches can ride along for free (plan dedup).
    if (generic) return std::max<std::int64_t>(k(), static_cast<std::int64_t>(reads.size()));
    return static_cast<std::int64_t>(reads.size());
}

RepairSpec ErasureCode::repair_spec(int position) const {
    (void)position;
    // Conservative default: no structured repair, no MDS promise. Codes
    // override this; the generic decoder still works without hints.
    return RepairSpec{};
}

void ErasureCode::encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity,
                         ThreadPool* pool) const {
    assert(static_cast<int>(data.size()) == k());
    assert(static_cast<int>(parity.size()) == m());
    // Rows k..n-1 of the row-major generator are contiguous — exactly the
    // m x k coefficient block the fused kernel wants.
    gf::encode_regions(data, parity, generator().row(k()), pool);
}

bool ErasureCode::decodable(const std::vector<int>& available) const {
    return generator().select_rows(available).rank() == k();
}

Result<ElementRepair> ErasureCode::solve_repair(int target, const std::vector<int>& sources) const {
    const Matrix& g = generator();
    const int kk = k();
    const int s = static_cast<int>(sources.size());

    // Solve c^T * G_S = G_target, i.e. G_S^T c = g_target^T: a kk x s system.
    // Augmented Gaussian elimination over GF(2^8).
    Matrix aug(kk, s + 1);
    for (int r = 0; r < kk; ++r) {
        for (int j = 0; j < s; ++j) aug.at(r, j) = g.at(sources[static_cast<std::size_t>(j)], r);
        aug.at(r, s) = g.at(target, r);
    }

    std::vector<int> pivot_col_of_row(static_cast<std::size_t>(kk), -1);
    int row = 0;
    for (int col = 0; col < s && row < kk; ++col) {
        int pivot = -1;
        for (int r = row; r < kk; ++r) {
            if (aug.at(r, col) != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) continue;
        aug.swap_rows(row, pivot);
        const std::uint8_t pinv = Gf256::inv(aug.at(row, col));
        const std::uint8_t* prow = Gf256::mul_row(pinv);
        for (int j = 0; j <= s; ++j) aug.at(row, j) = prow[aug.at(row, j)];
        for (int r = 0; r < kk; ++r) {
            if (r == row) continue;
            const std::uint8_t f = aug.at(r, col);
            if (f == 0) continue;
            const std::uint8_t* mrow = Gf256::mul_row(f);
            for (int j = 0; j <= s; ++j) aug.at(r, j) ^= mrow[aug.at(row, j)];
        }
        pivot_col_of_row[static_cast<std::size_t>(row)] = col;
        ++row;
    }

    // Consistency: rows below the pivot rows must have zero RHS.
    for (int r = row; r < kk; ++r) {
        if (aug.at(r, s) != 0) {
            return Error::undecodable("target element is not in the span of the given sources");
        }
    }

    ElementRepair repair;
    repair.target_position = target;
    for (int r = 0; r < row; ++r) {
        const int col = pivot_col_of_row[static_cast<std::size_t>(r)];
        const std::uint8_t c = aug.at(r, s);
        if (c != 0) repair.terms.push_back({sources[static_cast<std::size_t>(col)], c});
    }
    return repair;
}

Result<DecodePlan> ErasureCode::plan_decode(const std::vector<int>& available, const std::vector<int>& wanted) const {
    std::vector<bool> have(static_cast<std::size_t>(n()), false);
    for (int a : available) have[static_cast<std::size_t>(a)] = true;

    DecodePlan plan;
    for (int w : wanted) {
        if (have[static_cast<std::size_t>(w)]) continue;
        auto repair = solve_repair(w, available);
        if (!repair.ok()) {
            return Error::undecodable("position " + std::to_string(w) + " unrecoverable from available set");
        }
        plan.repairs.push_back(std::move(repair).take());
    }
    return plan;
}

void ErasureCode::apply_plan(const DecodePlan& plan, const std::vector<ByteSpan>& buffers,
                             ThreadPool* pool) {
    std::vector<ConstByteSpan> srcs;
    std::vector<std::uint8_t> coeffs;
    for (const auto& repair : plan.repairs) {
        // One fused single-destination pass per repair (the target never
        // appears among its own sources, so in-place repair is safe).
        srcs.clear();
        coeffs.clear();
        for (const auto& term : repair.terms) {
            srcs.push_back(buffers[static_cast<std::size_t>(term.source_position)]);
            coeffs.push_back(term.coeff);
        }
        const std::vector<ByteSpan> dst{buffers[static_cast<std::size_t>(repair.target_position)]};
        gf::encode_regions(srcs, dst, coeffs.data(), pool);
    }
}

}  // namespace ecfrm::codes
