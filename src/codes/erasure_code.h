// The candidate-code abstraction of the paper: a systematic linear erasure
// code whose stripe is ONE row of n elements (k data + n-k parity).
//
// Everything downstream (layouts, EC-FRM, planners, the store) talks to
// codes exclusively through this interface, so adding a new candidate code
// is a matter of producing its systematic generator matrix and, optionally,
// cheaper repair hints.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "matrix/matrix.h"

namespace ecfrm {
class ThreadPool;
}  // namespace ecfrm

namespace ecfrm::codes {

/// How one erased element is rebuilt: XOR of coeff * source over the listed
/// code positions (positions index the n elements of one stripe-row).
struct RepairTerm {
    int source_position;
    std::uint8_t coeff;
};

struct ElementRepair {
    int target_position;
    std::vector<RepairTerm> terms;
};

/// A full decode plan: one ElementRepair per wanted-but-missing position.
struct DecodePlan {
    std::vector<ElementRepair> repairs;
};

/// Hints the degraded-read planner uses to pick repair sources.
struct RepairSpec {
    /// True when ANY k surviving positions can rebuild the target (MDS).
    bool any_k = false;
    /// Minimal fixed repair set (e.g. the LRC local group). Empty when the
    /// code has no cheap structured repair for this position.
    std::vector<int> preferred;
};

/// Systematic linear erasure code over GF(2^8) with one-row stripes.
class ErasureCode {
  public:
    virtual ~ErasureCode() = default;

    /// Total elements per stripe-row.
    int n() const { return generator().rows(); }
    /// Data elements per stripe-row.
    int k() const { return generator().cols(); }
    /// Parity elements per stripe-row.
    int m() const { return n() - k(); }

    virtual std::string name() const = 0;

    /// Number of arbitrary concurrent node (disk) failures the code is
    /// guaranteed to survive. For sub-packetized codes a node failure
    /// erases all sub_packetization() elements of that node at once.
    virtual int fault_tolerance() const = 0;

    /// Sub-packetization w: how many stripe sub-rows (substripes) one
    /// code instance spreads each node over. Classic horizontal codes are
    /// w = 1 (element == node); piggybacked/elastic codes set w > 1 and
    /// their n()/k() then count ELEMENTS, not disks.
    virtual int sub_packetization() const { return 1; }

    /// Storage nodes (disk columns) of one code instance.
    int nodes() const { return n() / sub_packetization(); }
    int data_nodes() const { return k() / sub_packetization(); }
    int parity_nodes() const { return nodes() - data_nodes(); }

    /// Substripe-major position convention shared by every sub-packetized
    /// code (and trivially by w = 1 codes): data position p lives on node
    /// p % data_nodes() in substripe p / data_nodes(); parity position p
    /// lives on node data_nodes() + (p - k()) % parity_nodes() in
    /// substripe (p - k()) / parity_nodes(). Consecutive data positions
    /// therefore land on distinct nodes, which is what keeps the paper's
    /// ceil-shaped max-load arguments intact under sub-packetization.
    int node_of(int position) const;
    int substripe_of(int position) const;
    int position_of(int node, int substripe) const;

    /// Declared single-node repair download, in elements read per group
    /// (the code's theoretical bound; the conformance suite asserts the
    /// planner never exceeds it). Default: the union of the node's
    /// per-position preferred repair sets, or a generic k-survivor read
    /// when a position has no structured repair.
    virtual std::int64_t repair_elements_bound(int node) const;

    /// Systematic n x k generator: row i gives element i as a combination
    /// of the k data elements; rows 0..k-1 form the identity.
    virtual const matrix::Matrix& generator() const = 0;

    /// Repair hints for a single erased position (see RepairSpec).
    virtual RepairSpec repair_spec(int position) const;

    /// Compute the m parity buffers from the k data buffers in one fused
    /// multi-destination kernel pass (gf::encode_regions). All spans must
    /// have equal length; parity spans are overwritten. Large regions are
    /// chunked across `pool` when one is given.
    void encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity,
                ThreadPool* pool = nullptr) const;

    /// True when the k data elements are recoverable from `available`
    /// positions (rank test).
    bool decodable(const std::vector<int>& available) const;

    /// Solve for the repair coefficients of `target` over exactly the
    /// positions in `sources` (fails when the target row is outside the
    /// row span of the sources). Zero-coefficient terms are pruned.
    Result<ElementRepair> solve_repair(int target, const std::vector<int>& sources) const;

    /// Build a decode plan recovering every position in `wanted` from
    /// `available`. Positions already available get no repair entry.
    Result<DecodePlan> plan_decode(const std::vector<int>& available, const std::vector<int>& wanted) const;

    /// Execute a plan against element buffers (buffers[i] is position i's
    /// payload; repaired targets are overwritten in place). Each repair is
    /// one fused multi-source kernel pass, pool-chunked when `pool` is set.
    static void apply_plan(const DecodePlan& plan, const std::vector<ByteSpan>& buffers,
                           ThreadPool* pool = nullptr);
};

}  // namespace ecfrm::codes
