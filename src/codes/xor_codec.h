// XOR-schedule execution of GF(2^8) linear maps (the Jerasure "bitmatrix /
// schedule" technique, Cauchy-RS style): any out x in coefficient matrix
// over GF(2^8) compiles to a program of sub-packet copies and XORs. The
// data path then touches no multiplication tables at all — every byte
// moves through xor_region, which vectorises trivially.
//
// Buffers must be a multiple of 8 bytes (w = 8 sub-packets per element).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "gf/bitmatrix.h"
#include "matrix/matrix.h"

namespace ecfrm::codes {

class XorProgram {
  public:
    /// Compile the map: out_i = sum_j coeff(i, j) * in_j. With `optimize`,
    /// shared sub-packet pairs are hoisted into intermediates (greedy
    /// common-pair elimination), trading scratch space for fewer XORs.
    static XorProgram from_matrix(const matrix::Matrix& map, bool optimize = false);

    int inputs() const { return inputs_; }
    int outputs() const { return outputs_; }

    /// Number of XOR sub-packet operations per application — the classic
    /// schedule-cost metric (lower is faster).
    std::size_t xor_count() const { return schedule_.xor_count(); }

    /// Apply to element buffers. All spans must share one length that is a
    /// multiple of 8; `out` is overwritten. In-place aliasing of `in` and
    /// `out` spans is not allowed.
    Status apply(const std::vector<ConstByteSpan>& in, const std::vector<ByteSpan>& out) const;

  private:
    gf::XorSchedule schedule_;
    int inputs_ = 0;
    int outputs_ = 0;
};

class ErasureCode;

/// Pure-XOR encoder for a systematic code: compiles the parity block of
/// the generator once, then encodes stripes with XOR only.
///
/// Note on equivalence: the XOR path interprets each element buffer as 8
/// bit-sliced sub-packet lanes (the Jerasure Cauchy-RS convention), so its
/// parity BYTES differ from ErasureCode::encode's byte-symbol convention —
/// but the code is the same linear code, and any repair/decode compiled
/// through XorProgram from the same coefficient matrices round-trips
/// byte-exactly (verified in tests). Use one convention per store.
class XorCodec {
  public:
    explicit XorCodec(const ErasureCode& code, bool optimize = false);

    std::size_t xor_count() const { return program_.xor_count(); }

    /// Compute the parity buffers from the data buffers.
    Status encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity) const;

  private:
    XorProgram program_;
};

}  // namespace ecfrm::codes
