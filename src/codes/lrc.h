// Azure-style Local Reconstruction Code (k, l, m):
//   k data elements, split into l equal local groups of k/l;
//   l local parities (XOR of each group);
//   m global parities over all k data elements.
//
// Position convention within a stripe-row:
//   [0, k)        data
//   [k, k+l)      local parities (one per group, in group order)
//   [k+l, k+l+m)  global parities
//
// The global coefficients are found by bounded deterministic search and the
// resulting code is validated at construction time to tolerate ANY m+1
// concurrent erasures — the distance bound d = m + 2 for a
// distance-optimal LRC of this shape. Single-data-element repair touches
// only the k/l local-group peers plus the local parity.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codes/erasure_code.h"

namespace ecfrm::codes {

class LrcCode final : public ErasureCode {
  public:
    /// Factory; requires l | k, positive parameters, and a successful
    /// coefficient search (fails with Error::undecodable if no searched
    /// coefficient family reaches the distance bound).
    static Result<std::unique_ptr<LrcCode>> make(int k, int l, int m);

    std::string name() const override;
    int fault_tolerance() const override { return m_global_ + 1; }
    const matrix::Matrix& generator() const override { return generator_; }
    RepairSpec repair_spec(int position) const override;

    int local_groups() const { return l_; }
    int group_size() const { return k() / l_; }
    int global_parities() const { return m_global_; }

    /// Local group index of a data position (or of a local parity).
    int group_of(int position) const;

    /// Positions of group g's data elements plus its local parity.
    std::vector<int> local_set(int g) const;

    /// Fraction of erasure patterns of the given size that decode
    /// (exhaustive; used to report the maximally-recoverable behaviour
    /// beyond the guaranteed tolerance).
    double decodable_fraction(int erasures) const;

  private:
    LrcCode(matrix::Matrix generator, int l, int m)
        : generator_(std::move(generator)), l_(l), m_global_(m) {}

    matrix::Matrix generator_;
    int l_;
    int m_global_;
};

}  // namespace ecfrm::codes
