#include "codes/lrc.h"

#include <cassert>

#include "codes/validate.h"
#include "gf/gf256.h"
#include "matrix/matrix.h"

namespace ecfrm::codes {

using gf::Gf256;
using matrix::Matrix;

namespace {

Matrix build_generator(int k, int l, int m, unsigned offset) {
    const int n = k + l + m;
    const int group = k / l;
    Matrix gen(n, k);
    for (int i = 0; i < k; ++i) gen.at(i, i) = 1;
    for (int g = 0; g < l; ++g) {
        for (int j = g * group; j < (g + 1) * group; ++j) gen.at(k + g, j) = 1;
    }
    // Global parity j uses alpha_i^(j+1) with alpha_i = g^(i+1+offset):
    // a Vandermonde-like family; the offset walks distinct point sets.
    for (int j = 0; j < m; ++j) {
        for (int i = 0; i < k; ++i) {
            const std::uint8_t alpha = Gf256::exp(static_cast<unsigned>(i) + 1 + offset);
            gen.at(k + l + j, i) = Gf256::pow(alpha, static_cast<unsigned>(j) + 1);
        }
    }
    return gen;
}

}  // namespace

Result<std::unique_ptr<LrcCode>> LrcCode::make(int k, int l, int m) {
    if (k <= 0 || l <= 0 || m <= 0) return Error::invalid("LRC requires positive k, l, m");
    if (k % l != 0) return Error::invalid("LRC requires l | k");
    if (k + l + m > 256) return Error::invalid("LRC over GF(2^8) requires k + l + m <= 256");

    const int n = k + l + m;
    const int tolerance = m + 1;
    constexpr unsigned kMaxSearch = 64;
    for (unsigned offset = 0; offset < kMaxSearch; ++offset) {
        Matrix gen = build_generator(k, l, m, offset);
        const bool ok = for_each_subset(n, tolerance, [&](const std::vector<int>& erased) {
            return survives(gen, erased);
        });
        if (ok) return std::unique_ptr<LrcCode>(new LrcCode(std::move(gen), l, m));
    }
    return Error::undecodable("no searched LRC coefficient family reaches the distance bound");
}

std::string LrcCode::name() const {
    return "LRC(" + std::to_string(k()) + "," + std::to_string(l_) + "," + std::to_string(m_global_) + ")";
}

int LrcCode::group_of(int position) const {
    assert(position >= 0 && position < n());
    if (position < k()) return position / group_size();
    if (position < k() + l_) return position - k();
    return -1;  // global parity belongs to no local group
}

std::vector<int> LrcCode::local_set(int g) const {
    assert(g >= 0 && g < l_);
    std::vector<int> set;
    set.reserve(static_cast<std::size_t>(group_size()) + 1);
    for (int j = g * group_size(); j < (g + 1) * group_size(); ++j) set.push_back(j);
    set.push_back(k() + g);
    return set;
}

RepairSpec LrcCode::repair_spec(int position) const {
    RepairSpec spec;
    const int g = group_of(position);
    if (g >= 0) {
        // Data or local parity: repair from the rest of its local set.
        for (int p : local_set(g)) {
            if (p != position) spec.preferred.push_back(p);
        }
    } else {
        // Global parity: regenerate from all data elements.
        for (int j = 0; j < k(); ++j) spec.preferred.push_back(j);
    }
    return spec;
}

double LrcCode::decodable_fraction(int erasures) const {
    long total = 0;
    long good = 0;
    for_each_subset(n(), erasures, [&](const std::vector<int>& erased) {
        ++total;
        if (survives(generator(), erased)) ++good;
        return true;
    });
    return total == 0 ? 1.0 : static_cast<double>(good) / static_cast<double>(total);
}

}  // namespace ecfrm::codes
