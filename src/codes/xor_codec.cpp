#include "codes/xor_codec.h"

#include <cassert>

#include "codes/erasure_code.h"
#include "gf/region.h"

namespace ecfrm::codes {

namespace {
constexpr int kW = 8;  // sub-packets per element (GF(2^8))
}

XorProgram XorProgram::from_matrix(const matrix::Matrix& map, bool optimize) {
    XorProgram program;
    program.inputs_ = map.cols();
    program.outputs_ = map.rows();
    const gf::BitMatrix bits = gf::expand_bitmatrix(map);
    program.schedule_ = optimize ? gf::build_optimized_schedule(bits) : gf::build_schedule(bits);
    return program;
}

Status XorProgram::apply(const std::vector<ConstByteSpan>& in, const std::vector<ByteSpan>& out) const {
    if (static_cast<int>(in.size()) != inputs_ || static_cast<int>(out.size()) != outputs_) {
        return Error::invalid("XorProgram::apply: buffer count mismatch");
    }
    if (in.empty() || out.empty()) return Status::success();
    const std::size_t len = in[0].size();
    if (len % kW != 0) return Error::invalid("XorProgram::apply: length must be a multiple of 8");
    for (const auto& s : in) {
        if (s.size() != len) return Error::invalid("XorProgram::apply: ragged input buffers");
    }
    for (const auto& s : out) {
        if (s.size() != len) return Error::invalid("XorProgram::apply: ragged output buffers");
    }
    const std::size_t sub = len / kW;

    // Scratch for the optimizer's intermediates (empty when unoptimized).
    std::vector<std::vector<std::uint8_t>> scratch(schedule_.intermediates.size());

    auto src_sub = [&](int idx) -> ConstByteSpan {
        if (idx < schedule_.in_subpackets) {
            return in[static_cast<std::size_t>(idx / kW)].subspan(static_cast<std::size_t>(idx % kW) * sub,
                                                                  sub);
        }
        const auto& buf = scratch[static_cast<std::size_t>(idx - schedule_.in_subpackets)];
        return ConstByteSpan(buf.data(), buf.size());
    };
    auto out_sub = [&](int idx) -> ByteSpan {
        return out[static_cast<std::size_t>(idx / kW)].subspan(static_cast<std::size_t>(idx % kW) * sub, sub);
    };

    for (std::size_t j = 0; j < schedule_.intermediates.size(); ++j) {
        const auto [a, b] = schedule_.intermediates[j];
        scratch[j].resize(sub);
        ByteSpan dst(scratch[j].data(), sub);
        gf::copy_region(dst, src_sub(a));
        gf::xor_region(dst, src_sub(b));
    }
    for (const auto& op : schedule_.copies) gf::copy_region(out_sub(op.dst), src_sub(op.src));
    for (const auto& op : schedule_.xors) gf::xor_region(out_sub(op.dst), src_sub(op.src));
    return Status::success();
}

XorCodec::XorCodec(const ErasureCode& code, bool optimize) {
    // Parity block: rows k..n-1 of the systematic generator.
    std::vector<int> parity_rows;
    for (int r = code.k(); r < code.n(); ++r) parity_rows.push_back(r);
    program_ = XorProgram::from_matrix(code.generator().select_rows(parity_rows), optimize);
}

Status XorCodec::encode(const std::vector<ConstByteSpan>& data, const std::vector<ByteSpan>& parity) const {
    return program_.apply(data, parity);
}

}  // namespace ecfrm::codes
