// HTEC-style elastic transformation of RS (n, k, w): parameterized
// sub-packetization with repair-bandwidth-reducing pairing, after the
// elastic-transformation idea behind HashTag erasure codes.
//
// Geometry: w substripes over n = k + m nodes. Substripes are taken in
// PAIRS (0,1), (2,3), ...; each pair is an independent Hitchhiker-XOR
// instance (pair substripe a = even, b = odd; b-parity 0 clean, b-parity
// q >= 1 piggybacks XOR of pair-a data over group G_q). A trailing odd
// substripe stays plain RS. The pairing is ELASTIC: pair p assigns node j
// to the group of rotated index (j + p) mod k, so across pairs a node's
// repair cost is spread over differently-sized groups instead of always
// drawing the fat one.
//
// Single data-node repair downloads sum over pairs of (k + |G|) plus k
// for the trailing substripe — strictly under RS's w*k whenever m >= 3.
// HTEC(9,6,3) reads 15 vs RS's 18 per group. Any m node failures decode
// (each pair is node-MDS exactly like HHXOR, the trailing substripe is
// RS); verified exhaustively at construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codes/erasure_code.h"

namespace ecfrm::codes {

class HtecCode final : public ErasureCode {
  public:
    /// Factory; requires n > k >= 1, m = n - k >= 2, w >= 2, and
    /// n <= 256 for the Cauchy block.
    static Result<std::unique_ptr<HtecCode>> make(int n, int k, int w);

    std::string name() const override;
    int fault_tolerance() const override { return parity_nodes(); }
    int sub_packetization() const override { return w_; }
    const matrix::Matrix& generator() const override { return generator_; }
    RepairSpec repair_spec(int position) const override;

    /// Number of hitchhiker pairs (w / 2); substripe w-1 is the plain-RS
    /// trailing substripe when w is odd.
    int pairs() const { return w_ / 2; }

    /// Piggyback group (index q in [1, m)) of data node j within pair p.
    int piggyback_group(int pair, int data_node) const;

    /// Data nodes of piggyback group q within pair p.
    std::vector<int> group_members(int pair, int q) const;

  private:
    HtecCode(matrix::Matrix generator, int w) : generator_(std::move(generator)), w_(w) {}

    matrix::Matrix generator_;
    int w_;
};

}  // namespace ecfrm::codes
