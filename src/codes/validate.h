// Construction-time exhaustive validation helpers shared by the code
// constructors: every shipped code proves its declared fault tolerance by
// exhausting erasure patterns against the generator's rank before the
// instance escapes its factory.
#pragma once

#include <functional>
#include <vector>

#include "matrix/matrix.h"

namespace ecfrm::codes {

/// Enumerate all size-`count` subsets of [0, n), invoking fn(subset);
/// fn returns false to abort the walk (and the walk reports false).
inline bool for_each_subset(int n, int count,
                            const std::function<bool(const std::vector<int>&)>& fn) {
    std::vector<int> idx(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) idx[static_cast<std::size_t>(i)] = i;
    if (count == 0) return fn(idx);
    for (;;) {
        if (!fn(idx)) return false;
        int i = count - 1;
        while (i >= 0 && idx[static_cast<std::size_t>(i)] == n - count + i) --i;
        if (i < 0) return true;
        ++idx[static_cast<std::size_t>(i)];
        for (int j = i + 1; j < count; ++j) {
            idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
        }
    }
}

/// True when erasing the `erased` generator rows (element positions)
/// still leaves the data recoverable.
inline bool survives(const matrix::Matrix& gen, const std::vector<int>& erased) {
    std::vector<bool> gone(static_cast<std::size_t>(gen.rows()), false);
    for (int e : erased) gone[static_cast<std::size_t>(e)] = true;
    std::vector<int> alive;
    alive.reserve(static_cast<std::size_t>(gen.rows()));
    for (int i = 0; i < gen.rows(); ++i) {
        if (!gone[static_cast<std::size_t>(i)]) alive.push_back(i);
    }
    return gen.select_rows(alive).rank() == gen.cols();
}

}  // namespace ecfrm::codes
