#include "core/scheme.h"

#include <cassert>

#include "layout/sub_packetized.h"

namespace ecfrm::core {

namespace {

/// w = 1 codes get the layout directly over (n, k); sub-packetized codes
/// get it over the NODE counts, wrapped in the adapter that spreads each
/// node over w rows (see layout/sub_packetized.h).
std::unique_ptr<layout::Layout> layout_for(layout::LayoutKind kind, const codes::ErasureCode& code) {
    const int w = code.sub_packetization();
    if (w == 1) return layout::make_layout(kind, code.n(), code.k());
    return std::make_unique<layout::SubPacketizedLayout>(
        layout::make_layout(kind, code.nodes(), code.data_nodes()), w);
}

}  // namespace

Scheme::Scheme(std::shared_ptr<const codes::ErasureCode> code, layout::LayoutKind kind)
    : code_(std::move(code)), layout_(layout_for(kind, *code_)), kind_(kind) {
    assert(layout_ != nullptr);
}

std::string Scheme::name() const {
    switch (kind_) {
        case layout::LayoutKind::standard: return code_->name();
        case layout::LayoutKind::rotated: return "R-" + code_->name();
        case layout::LayoutKind::ecfrm: return "EC-FRM-" + code_->name();
    }
    return code_->name();
}

std::vector<Location> Scheme::group_locations(StripeId stripe, int group) const {
    std::vector<Location> locs;
    locs.reserve(static_cast<std::size_t>(code_->n()));
    for (int p = 0; p < code_->n(); ++p) {
        locs.push_back(layout_->locate({stripe, group, p}));
    }
    return locs;
}

StripeId Scheme::stripes_for(std::int64_t data_elements) const {
    const std::int64_t per = layout_->data_per_stripe();
    return (data_elements + per - 1) / per;
}

RowId Scheme::rows_for(StripeId stripes) const {
    return stripes * layout_->rows_per_stripe();
}

}  // namespace ecfrm::core
