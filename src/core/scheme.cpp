#include "core/scheme.h"

#include <cassert>

namespace ecfrm::core {

Scheme::Scheme(std::shared_ptr<const codes::ErasureCode> code, layout::LayoutKind kind)
    : code_(std::move(code)),
      layout_(layout::make_layout(kind, code_->n(), code_->k())),
      kind_(kind) {
    assert(layout_ != nullptr);
}

std::string Scheme::name() const {
    switch (kind_) {
        case layout::LayoutKind::standard: return code_->name();
        case layout::LayoutKind::rotated: return "R-" + code_->name();
        case layout::LayoutKind::ecfrm: return "EC-FRM-" + code_->name();
    }
    return code_->name();
}

std::vector<Location> Scheme::group_locations(StripeId stripe, int group) const {
    std::vector<Location> locs;
    locs.reserve(static_cast<std::size_t>(code_->n()));
    for (int p = 0; p < code_->n(); ++p) {
        locs.push_back(layout_->locate({stripe, group, p}));
    }
    return locs;
}

StripeId Scheme::stripes_for(std::int64_t data_elements) const {
    const std::int64_t per = layout_->data_per_stripe();
    return (data_elements + per - 1) / per;
}

RowId Scheme::rows_for(StripeId stripes) const {
    return stripes * layout_->rows_per_stripe();
}

}  // namespace ecfrm::core
